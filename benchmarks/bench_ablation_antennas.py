"""ABL-ANT — antenna directionality (ours).

The paper's routers are omnidirectional.  Expected shape: omni is best
(direction-independent power keeps PDP-vs-distance monotone); inward-
pointing sectors cost a little (bearing-dependent gain perturbs pairwise
orderings); mis-pointed (outward) sectors are the worst case.
"""

from repro.eval import ablation_antennas, format_stats_table

from conftest import run_once


def test_ablation_antennas(benchmark, save_result):
    out = run_once(benchmark, ablation_antennas, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    assert means["omni"] <= means["sector-inward"] + 0.15, means
    assert means["sector-inward"] < means["sector-outward"], means
    # Even mis-pointed sectors stay meter-scale: the relaxation absorbs
    # the flipped low-confidence judgements.
    assert means["sector-outward"] < 3.5, means

    save_result("ABL-ANT", format_stats_table(out))
