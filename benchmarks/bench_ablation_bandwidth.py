"""ABL-BW — channel bandwidth sweep (ours).

Sec. III-B credits "the 20 MHz bandwidth of [the] 802.11n system" for
resolving multipath.  Expected shape: narrow channels (5 MHz: 300 ns
taps, everything merges into one tap and the PDP degenerates towards
total power) perform worst; 20 MHz and up are comparable — the accuracy
is then limited by the partition granularity, not by tap resolution.
"""

from repro.eval import format_table
from repro.eval.experiments import ablation_bandwidth

from conftest import run_once


def test_ablation_bandwidth(benchmark, save_result):
    out = run_once(benchmark, ablation_bandwidth, "lab")

    bws = sorted(out)
    means = {bw: out[bw].mean for bw in bws}
    # The narrowest channel is the worst (or tied within noise).
    assert means[min(bws)] >= min(means.values()) - 0.05, means
    # 20 MHz is already in the best class; going wider does not unlock
    # much (partition granularity dominates).
    assert abs(means[20.0] - means[max(bws)]) < 0.5, means

    rows = [[bw, out[bw].mean, out[bw].p90, out[bw].slv] for bw in bws]
    save_result(
        "ABL-BW",
        format_table(
            ["bandwidth (MHz)", "mean err(m)", "p90(m)", "SLV"], rows
        ),
    )
