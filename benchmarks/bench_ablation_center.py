"""ABL-CTR — region-centre estimator ablation (ours).

The paper takes "the center point of the region" from CVX's interior-point
(log-barrier) solve.  This ablation compares the exact polygon centroid,
the Chebyshev centre, and the analytic centre.  Expected shape: all three
land in the same accuracy class (the choice of centre is not what makes
NomLoc work); the exact centroid is never much worse than the others.
"""

from repro.eval import ablation_center_methods, format_stats_table

from conftest import run_once


def test_ablation_center_methods(benchmark, save_result):
    out = run_once(benchmark, ablation_center_methods, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    assert set(means) == {"centroid", "chebyshev", "analytic"}
    # Same accuracy class: spread of means below a metre.
    assert max(means.values()) - min(means.values()) < 1.0, means
    # Everything stays meter-scale in the Lab.
    assert all(m < 3.0 for m in means.values()), means

    save_result("ABL-CTR", format_stats_table(out))
