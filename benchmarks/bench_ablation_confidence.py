"""ABL-CONF — choice of the confidence function f (ours).

Sec. IV-A: "there exists a wide variety of f function[s]" satisfying
``f(x) + f(1/x) = 1`` and ``f(1) = 1/2``.  Expected shape: the specific
choice barely matters — the relaxation consumes only the *relative*
weights of conflicting rows, and all valid f's are monotone in the PDP
ratio — so every variant lands in the same accuracy class as the paper's
Eq. 4.
"""

from repro.eval import ablation_confidence_functions, format_stats_table

from conftest import run_once


def test_ablation_confidence_functions(benchmark, save_result):
    out = run_once(benchmark, ablation_confidence_functions, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    assert set(means) == {"paper", "rational", "power2"}
    # Same accuracy class across all valid f's.
    assert max(means.values()) - min(means.values()) < 0.8, means
    assert all(m < 3.0 for m in means.values()), means

    save_result("ABL-CONF", format_stats_table(out))
