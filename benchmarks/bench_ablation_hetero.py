"""ABL-HETERO — device heterogeneity vs constraint formulation (ours).

Mixed hardware gives each AP a systematic receive-gain offset, corrupting
*cross-device* PDP comparisons; a nomadic AP's offset travels with it, so
*same-device* site-pair comparisons are immune.  Expected shape: the
generalized formulation (site pairs on, this repo's default) stays flat
as heterogeneity grows, while the paper-literal Eq. 13 (site-vs-static
only) degrades — an argument for the documented deviation that the
paper's own hardware (identical TL-WR941NDs) never surfaced.
"""

from repro.eval import format_table
from repro.eval.experiments import ablation_device_heterogeneity

from conftest import run_once


def test_ablation_device_heterogeneity(benchmark, save_result):
    out = run_once(benchmark, ablation_device_heterogeneity, "lab")

    sigmas = sorted(out)
    hi = max(sigmas)
    gen = {s: out[s]["generalized"].mean for s in sigmas}
    lit = {s: out[s]["paper-literal"].mean for s in sigmas}
    # Same-device pairs keep the generalized form flat under heterogeneity.
    assert gen[hi] <= gen[0.0] + 0.4, gen
    # At strong heterogeneity the generalized form beats paper-literal.
    assert gen[hi] <= lit[hi] + 0.1, (gen, lit)

    rows = [
        [s, lit[s], gen[s]]
        for s in sigmas
    ]
    save_result(
        "ABL-HETERO",
        format_table(
            ["offset sigma (dB)", "paper-literal mean(m)", "generalized mean(m)"],
            rows,
        ),
    )
