"""ABL-INTF — bursty co-channel interference and robust PDP estimation (ours).

Busy deployments collide with neighbouring networks.  Two findings:
(1) CSI's IFFT concentrates the coherent path into a single tap while
interference spreads across all of them, so moderate bursts are absorbed
for free (tested in ``tests/channel/test_interference.py``);
(2) overwhelming bursts (~ -10 dBm collisions) do inflate the paper's
mean-of-packets PDP, and a median-of-packets estimator recovers most of
the lost accuracy.  Expected shape: clean <= bursty/median < bursty/mean.
"""

from repro.eval import ablation_interference, format_stats_table

from conftest import run_once


def test_ablation_interference(benchmark, save_result):
    out = run_once(benchmark, ablation_interference, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    # Bursts hurt the mean-of-packets estimator...
    assert means["bursty/mean"] > means["clean/mean"], means
    # ...and the median claws most of it back.
    assert means["bursty/median"] < means["bursty/mean"], means
    assert means["bursty/median"] < means["clean/mean"] + 0.5, means

    save_result("ABL-INTF", format_stats_table(out))
