"""ABL-METRIC — proximity metric: PDP vs coarse RSS vs first tap (ours).

The paper's core motivation (Sec. I): fine-grained CSI beats "coarse
received signal strength".  Expected shape: the paper's max-tap PDP beats
RSSI (which arrives multipath-inflated, AGC-jittered, and dB-quantized).

A nuance this substrate makes visible: at 20 MHz the CIR tap is 50 ns
(~15 m of path), so nearly every direct path lands in tap 0 and the
first-tap estimator almost coincides with the max-tap PDP; where they
differ (deep NLOS, strongest energy in a later tap), the attenuated
first tap is still monotone in distance.  The paper prefers max-tap for
robustness ("the PDP is the highest among all the transmission paths");
both sit in the same accuracy class here.
"""

from repro.eval import format_stats_table
from repro.eval.experiments import ablation_proximity_metric

from conftest import run_once


def test_ablation_proximity_metric(benchmark, save_result):
    out = run_once(benchmark, ablation_proximity_metric, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    # The paper's claim: CSI-derived PDP beats coarse RSS.
    assert means["pdp"] < means["rss"], means
    # Max-tap and first-tap are the same accuracy class at 20 MHz.
    assert abs(means["pdp"] - means["first_tap"]) < 0.6, means

    save_result("ABL-METRIC", format_stats_table(out))
