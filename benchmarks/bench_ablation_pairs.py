"""ABL-PAIRS — nomadic site-pair constraints, paper-literal vs generalized.

Quantifies the documented deviation (DESIGN.md): the paper's Eq. 13 only
compares nomadic sites against static APs; this codebase additionally
compares a nomadic AP's sites against each other by default.  Expected
shape: the generalized form is at least as accurate, with the gap largest
in the Lobby (where the missing rows caused feasible-but-wrong regions).
"""

from repro.eval import ablation_nomadic_pairs, format_stats_table

from conftest import run_once


def test_ablation_nomadic_pairs(benchmark, save_result):
    out = run_once(benchmark, ablation_nomadic_pairs)

    for scen in ("lab", "lobby"):
        literal = out[scen]["paper-literal"]
        general = out[scen]["generalized"]
        # Generalized never loses by more than simulation noise.
        assert general.mean <= literal.mean + 0.4, (
            scen,
            general.mean,
            literal.mean,
        )
    # In the Lobby the site-pair rows matter most (tail control).
    assert (
        out["lobby"]["generalized"].p90
        <= out["lobby"]["paper-literal"].p90 + 0.3
    )

    text = []
    for scen in ("lab", "lobby"):
        text.append(f"--- {scen} ---\n" + format_stats_table(out[scen]))
    save_result("ABL-PAIRS", "\n\n".join(text))
