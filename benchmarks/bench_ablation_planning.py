"""ABL-PLAN — planned vs hand-picked nomadic sites (ours).

The geometric site planner of :mod:`repro.planning` chooses measurement
sites minimizing the partition's expected cell error (plus a blind-spot
term).  Expected shape: the planned sites match the hand-tuned built-in
set on *mean* error.  The proxy's known limit also shows: it assumes
perfect proximity judgements, so it cannot see that far, NLOS-y corners
produce unreliable PDP orderings — the hand-tuned set (chosen with
end-to-end feedback) keeps a thinner tail.  Closing that gap would need a
judgement-reliability model inside the objective; the bench documents the
gap instead of hiding it.
"""

from dataclasses import replace

from repro.core import NomLocSystem
from repro.environment import APSpec, get_scenario
from repro.eval import DEFAULT, format_table, run_campaign
from repro.planning import select_sites

from conftest import run_once


def _run():
    base = get_scenario("lobby")
    nomadic = base.nomadic_aps[0]

    plan = select_sites(base, len(nomadic.sites) - 1, grid_spacing_m=1.5)
    planned_sites = (nomadic.position,) + plan.sites
    planned_scenario = replace(
        base,
        aps=tuple(
            APSpec(ap.name, ap.position, nomadic=True, sites=planned_sites)
            if ap.name == nomadic.name
            else ap
            for ap in base.aps
        ),
    )

    results = {}
    for label, scenario in (("hand-picked", base), ("planned", planned_scenario)):
        system = NomLocSystem(scenario, DEFAULT.system_config())
        campaign = run_campaign(
            system, scenario.test_sites, DEFAULT.repetitions, DEFAULT.seed
        )
        results[label] = campaign.stats
    return results, plan


def test_ablation_planning(benchmark, save_result):
    results, plan = run_once(benchmark, _run)

    hand, planned = results["hand-picked"], results["planned"]
    # The planner matches manual placement on mean error...
    assert planned.mean <= hand.mean + 0.3, (planned.mean, hand.mean)
    # ...and its geometric objective predicted a large improvement.
    assert plan.improvement() > 0.3
    # The tail may be thicker (perfect-judgement proxy), but bounded.
    assert planned.p90 <= hand.p90 + 1.5

    rows = [
        [label, s.mean, s.p90, s.slv]
        for label, s in results.items()
    ]
    save_result(
        "ABL-PLAN",
        format_table(["site set", "mean err(m)", "p90(m)", "SLV"], rows)
        + f"\n\nplanned sites: {[s.as_tuple() for s in plan.sites]}"
        + f"\ngeometric mean-error prediction: "
        f"{plan.baseline_quality.mean_error_m:.2f} m -> "
        f"{plan.quality.mean_error_m:.2f} m "
        f"({plan.improvement() * 100:.0f}% better)",
    )
