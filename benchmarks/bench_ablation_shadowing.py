"""ABL-SHADOW — robustness to correlated shadow fading (ours).

Shadowing perturbs the PDP-vs-distance ordering NomLoc relies on.
Expected shape: near-flat degradation.  Two mechanisms protect the SP
method: (1) the object-side component of a correlated shadowing field is
common to every AP link of one query and cancels exactly in pairwise PDP
comparisons; (2) the AP-side residual flips judgements mostly when PDPs
are already close, i.e. at low confidence weight, so the relaxation LP
sheds them cheaply.  Measured: up to 6 dB of shadowing moves Lab mean
error by under 0.2 m — stronger robustness than a range-based method
could claim, since ranging consumes absolute power, not orderings.
"""

from repro.eval import ablation_shadowing, format_table

from conftest import run_once


def test_ablation_shadowing(benchmark, save_result):
    out = run_once(benchmark, ablation_shadowing, "lab")

    sigmas = sorted(out)
    means = {s: out[s].mean for s in sigmas}
    # Mild shadowing is nearly free.
    assert means[2.0] < means[0.0] + 0.6, means
    # Heavy shadowing degrades but does not break the metre class.
    assert means[max(sigmas)] < means[0.0] + 2.0, means
    # Roughly increasing trend.
    assert means[max(sigmas)] >= means[0.0] - 0.3, means

    rows = [[s, out[s].mean, out[s].p90, out[s].slv] for s in sigmas]
    save_result(
        "ABL-SHADOW",
        format_table(
            ["shadowing sigma (dB)", "mean err(m)", "p90(m)", "SLV"], rows
        ),
    )
