"""ABL-SITES — nomadic site-count sweep (ours).

Sec. IV-B3: "the further the nomadic AP moves, the more CSI measurements
will be collected ... resulting in finer granularity segmentation.  In
return, higher accuracy can be expected."  Expected shape: mean error
trends downward as S grows; a well-travelled nomadic AP beats the static
deployment (S=0).
"""

from repro.eval import ablation_site_count, format_table

from conftest import run_once


def test_ablation_site_count(benchmark, save_result):
    out = run_once(benchmark, ablation_site_count)

    counts = sorted(out)
    means = {s: out[s].mean for s in counts}
    # Mobility helps: the largest site set beats the static deployment.
    assert means[max(counts)] < means[0], means
    # The overall trend is downward (compare the halves' averages).
    lo = [means[s] for s in counts[: len(counts) // 2]]
    hi = [means[s] for s in counts[len(counts) // 2 :]]
    assert sum(hi) / len(hi) < sum(lo) / len(lo), means

    rows = [
        [s, out[s].mean, out[s].p90, out[s].slv, 3 + s * 3 if s else 6]
        for s in counts
    ]
    save_result(
        "ABL-SITES",
        format_table(
            ["S (sites)", "mean err(m)", "p90(m)", "SLV", "pairwise rows"],
            rows,
        ),
    )
