"""BASE-CMP — NomLoc vs conventional localization families (ours).

Quantifies the paper's Sec. III argument: NomLoc is calibration-free yet
competitive.  Expected shape: NomLoc beats the naive calibration-free
comparator (weighted centroid) and the static SP deployment; the
calibrated baselines (fingerprinting with a dense survey, fitted ranging)
are allowed to win on raw accuracy — they pay for it with the offline
survey/fit NomLoc avoids.
"""

from repro.eval import baseline_comparison, format_stats_table

from conftest import run_once


def test_baseline_comparison(benchmark, save_result):
    out = run_once(benchmark, baseline_comparison, "lab")

    means = {name: stats.mean for name, stats in out.items()}
    # NomLoc beats its calibration-free peers, including the SP ancestor
    # it generalizes (static sequence-based localization).
    assert means["nomloc"] < means["weighted-centroid"], means
    assert means["nomloc"] <= means["static-sp"] + 0.1, means
    assert means["nomloc"] <= means["sequence"] + 0.1, means
    # Everyone produces sane meter-scale estimates in the Lab.
    assert all(m < 8.0 for m in means.values()), means

    save_result(
        "BASE-CMP",
        format_stats_table(out)
        + "\n\nnote: trilateration and fingerprint are CALIBRATED baselines"
        " (offline model fit / survey); NomLoc, sequence, and"
        " weighted-centroid are calibration-free.",
    )
