"""CLUSTER — sharded/replicated serving: bit-exactness + fault drill.

Two claims of the ``repro.cluster`` subsystem, benchmarked:

* **No faults** — a :class:`repro.cluster.LocalizationCluster` of any
  shard/replica shape answers *bit-identically* to one sequential
  :class:`repro.serving.LocalizationService` (routing and replication
  choose *which* replica computes, never *what*).  Checked across two
  shard counts x two replica counts.
* **Fault drill** — with the key's primary replica crashed mid-campaign,
  failover keeps availability >= 99%, every non-fresh answer is flagged
  (``degraded`` + ``reason``), and the answers that replicas did serve
  remain bit-exact.

Throughput/latency per shape and the drill's availability are persisted
to ``benchmarks/results/BENCH_cluster.json`` (and ``CLUSTER.txt``).
"""

import time

import numpy as np

from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    LocalizationCluster,
    route_key,
)
from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.serving import LocalizationService

from conftest import run_once

QUERIES = 40
PACKETS = 6
SHAPES = [(1, 1), (1, 2), (2, 1), (2, 2)]  # (shards, replicas)


def _gather_queries():
    scenario = get_scenario("lab")
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([7, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


def _reference(scenario, anchor_sets):
    with LocalizationService(scenario.plan.boundary) as service:
        return service.batch(anchor_sets)


def _run_shape(scenario, anchor_sets, shards, replicas):
    config = ClusterConfig(num_shards=shards, replicas_per_shard=replicas)
    with LocalizationCluster(scenario.plan.boundary, config=config) as cluster:
        started = time.perf_counter()
        responses = cluster.batch(anchor_sets)
        elapsed = time.perf_counter() - started
        snap = cluster.metrics_snapshot()
    return {
        "responses": responses,
        "qps": len(anchor_sets) / elapsed,
        "p50_ms": snap["latency_p50_s"] * 1e3,
        "p95_ms": snap["latency_p95_s"] * 1e3,
        "availability": snap["availability"],
        "degraded": snap["degraded"],
    }


def _run_fault_drill(scenario, anchor_sets):
    """Crash the routed primary mid-campaign; measure what survives."""
    config = ClusterConfig(num_shards=1, replicas_per_shard=2)
    probe = LocalizationCluster(scenario.plan.boundary, config=config)
    _, order = probe.router.route(
        route_key(scenario.plan.boundary, probe.localizer_config)
    )
    probe.close()
    plan = FaultPlan.crash(0, order[0], after=len(anchor_sets) // 2)
    with LocalizationCluster(
        scenario.plan.boundary, config=config, fault_plan=plan
    ) as cluster:
        started = time.perf_counter()
        responses = cluster.batch(anchor_sets)
        elapsed = time.perf_counter() - started
        snap = cluster.metrics_snapshot()
    return {
        "responses": responses,
        "qps": len(anchor_sets) / elapsed,
        "p50_ms": snap["latency_p50_s"] * 1e3,
        "p95_ms": snap["latency_p95_s"] * 1e3,
        "availability": snap["availability"],
        "answered": snap["answered"],
        "routed": snap["routed"],
        "failovers": snap["failovers"],
        "degraded": snap["degraded"],
        "crashed_replica": order[0],
    }


def _cluster_campaign():
    scenario, anchor_sets = _gather_queries()
    reference = _reference(scenario, anchor_sets)
    shapes = {
        f"{shards}x{replicas}": _run_shape(
            scenario, anchor_sets, shards, replicas
        )
        for shards, replicas in SHAPES
    }
    drill = _run_fault_drill(scenario, anchor_sets)
    return reference, shapes, drill


def test_cluster_bit_exactness_and_fault_drill(
    benchmark, save_result, save_json
):
    reference, shapes, drill = run_once(benchmark, _cluster_campaign)

    rows = []
    for shape, r in shapes.items():
        # The tentpole invariant: no faults -> bit-identical to one
        # sequential service, whatever the fleet shape.
        assert r["degraded"] == 0, f"shape {shape} degraded without faults"
        assert [x.position for x in r["responses"]] == [
            x.position for x in reference
        ], f"shape {shape} diverged from the sequential reference"
        assert r["availability"] == 1.0
        rows.append(
            [
                shape,
                "-",
                round(r["qps"], 1),
                round(r["p50_ms"], 2),
                round(r["p95_ms"], 2),
                f"{r['availability']:.1%}",
            ]
        )

    # The drill's acceptance bar: >= 99% of queries answered by a
    # replica despite the crashed primary, nothing silently wrong.
    availability = drill["availability"]
    assert availability >= 0.99, (
        f"fault drill availability {availability:.1%} below 99%"
    )
    assert drill["failovers"] >= 1, "crash never triggered a failover"
    for resp, ref in zip(drill["responses"], reference):
        if resp.degraded:
            assert resp.reason, "degraded answer missing its reason flag"
        else:
            assert resp.position == ref.position
    rows.append(
        [
            "1x2",
            f"crash r{drill['crashed_replica']}@{QUERIES // 2}",
            round(drill["qps"], 1),
            round(drill["p50_ms"], 2),
            round(drill["p95_ms"], 2),
            f"{availability:.1%}",
        ]
    )

    table = format_table(
        ["shape", "fault", "qps", "p50(ms)", "p95(ms)", "availability"], rows
    )
    save_result("CLUSTER", table)
    save_json(
        "cluster",
        {
            "queries": QUERIES,
            "shapes": {
                shape: {
                    "qps": r["qps"],
                    "p50_ms": r["p50_ms"],
                    "p95_ms": r["p95_ms"],
                    "availability": r["availability"],
                    "bit_exact": True,
                }
                for shape, r in shapes.items()
            },
            "fault_drill": {
                "fault": "primary crash mid-campaign",
                "crashed_replica": drill["crashed_replica"],
                "after_query": QUERIES // 2,
                "qps": drill["qps"],
                "p50_ms": drill["p50_ms"],
                "p95_ms": drill["p95_ms"],
                "availability": drill["availability"],
                "answered": drill["answered"],
                "routed": drill["routed"],
                "failovers": drill["failovers"],
                "degraded_flagged": drill["degraded"],
            },
        },
    )
    print()
    print(table)
