"""EXT-MULTI — aggregating multiple nomadic APs (paper future work).

Sec. VI: "the performance can be greatly improved by employing multiple
nomadic APs which is left for our future work."  Expected shape: accuracy
improves (or at worst holds) as more APs go nomadic in the Lobby.
"""

from repro.eval import ext_multi_nomadic, format_table

from conftest import run_once


def test_ext_multi_nomadic(benchmark, save_result):
    out = run_once(benchmark, ext_multi_nomadic)

    means = {count: out[count].mean for count in sorted(out)}
    # More nomadic APs must not hurt, and three should clearly beat one
    # (the paper: "the performance can be greatly improved by employing
    # multiple nomadic APs").
    assert means[3] < means[1] + 0.2, means
    assert means[2] < means[1] + 0.5, means
    # The error tail must not grow either.
    assert out[3].p90 <= out[1].p90 + 0.3

    rows = [
        [count, out[count].mean, out[count].p90, out[count].slv]
        for count in sorted(out)
    ]
    save_result(
        "EXT-MULTI",
        format_table(
            ["nomadic APs", "mean err(m)", "p90(m)", "SLV"], rows
        ),
    )
