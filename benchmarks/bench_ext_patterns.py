"""EXT-PATTERN — movement-pattern impact (paper future work).

Sec. VI: "understand the impact of moving patterns of nomadic APs on the
overall performance."  Expected shape: patterns that cover all sites
(sweep, patrol, Markov) perform comparably; the hotspot pattern — which
dwells mostly at one site — covers fewer sites per walk and cannot be
better than the full-coverage sweeps.
"""

from repro.eval import ext_mobility_patterns, format_stats_table

from conftest import run_once


def test_ext_mobility_patterns(benchmark, save_result):
    out = run_once(benchmark, ext_mobility_patterns, "lobby")

    means = {name: stats.mean for name, stats in out.items()}
    coverage_patterns = ("sweep", "patrol")
    # Deterministic full-coverage walks are at least as good as the
    # dwell-heavy hotspot pattern.
    best_cover = min(means[p] for p in coverage_patterns)
    assert best_cover <= means["hotspot"] + 0.2, means
    # Everything stays in the meter-scale class.
    assert all(m < 7.0 for m in means.values()), means

    save_result("EXT-PATTERN", format_stats_table(out))
