"""FIG10 — impact of nomadic AP position error (paper Fig. 10).

Paper shape: accuracy degrades with the error range (ER), but the
degradation is negligible when ER is small — NomLoc's SP method "does not
highly depend on the accurate location of these APs".
"""

from repro.eval import fig10_position_error, format_cdf_table

from conftest import run_once


def _run_both():
    return (
        fig10_position_error("lab"),
        fig10_position_error("lobby"),
    )


def test_fig10_position_error(benchmark, save_result):
    lab, lobby = run_once(benchmark, _run_both)

    for res in (lab, lobby):
        # Small ER is nearly free.
        assert abs(res.degradation(1.0)) < 0.8, (
            f"{res.scenario}: ER=1 degradation {res.degradation(1.0):.2f} m"
        )
        # Large ER hurts more than small ER (allowing simulation noise).
        assert res.degradation(3.0) >= res.degradation(1.0) - 0.4
        # Even ER=3 m keeps the system in the same accuracy class: the
        # estimate never collapses to static-deployment-level errors.
        assert res.mean_at(3.0) < res.mean_at(0.0) + 2.0

    text = []
    for res in (lab, lobby):
        labelled = {f"ER={er:.0f}": cdf for er, cdf in sorted(res.cdfs.items())}
        text.append(
            f"--- {res.scenario} ---\n"
            + format_cdf_table(labelled, points=11)
            + "\nmeans: "
            + ", ".join(
                f"ER={er:.0f}: {cdf.mean:.2f} m"
                for er, cdf in sorted(res.cdfs.items())
            )
        )
    save_result("FIG10", "\n\n".join(text))
