"""FIG3 — channel response delay profile, LOS vs NLOS (paper Fig. 3).

Paper shape: with the LOS path blocked, the first tap collapses while
later (reflected) energy remains, so the NLOS profile's leading amplitude
is far below the LOS profile's.
"""


from repro.eval import fig3_delay_profiles, format_delay_profile

from conftest import run_once


def test_fig3_delay_profiles(benchmark, save_result):
    result = run_once(benchmark, fig3_delay_profiles)

    los, nlos = result.los_profile, result.nlos_profile

    # Shape: NLOS first tap is a small fraction of the LOS first tap.
    assert result.first_tap_ratio() < 0.7, (
        f"NLOS/LOS first-tap ratio {result.first_tap_ratio():.3f}; expected "
        "a collapsed direct path"
    )
    # Shape: the NLOS profile has relatively more late energy.
    def late_fraction(profile):
        power = profile.powers
        return float(power[2:].sum() / power.sum())

    assert late_fraction(nlos) > late_fraction(los)
    # Both profiles span 0-1.5us like the paper's axes.
    assert los.delays_s.max() <= 1.5e-6 + 1e-12

    save_result(
        "FIG3",
        "\n\n".join(
            [
                f"LOS link: {result.los_link[0].as_tuple()} -> "
                f"{result.los_link[1].as_tuple()}",
                format_delay_profile(los, "LOS delay profile"),
                f"NLOS link: {result.nlos_link[0].as_tuple()} -> "
                f"{result.nlos_link[1].as_tuple()}",
                format_delay_profile(nlos, "NLOS delay profile"),
                f"NLOS/LOS first-tap amplitude ratio: "
                f"{result.first_tap_ratio():.3f}",
            ]
        ),
    )
