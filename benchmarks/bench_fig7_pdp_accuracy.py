"""FIG7 — PDP-based proximity determination accuracy (paper Fig. 7).

Paper shape: per-site accuracy is high (most sites above ~85%), errors
concentrate at sites nearly equidistant from AP pairs, and the sparser
Lobby deployment outperforms the cluttered Lab.
"""


from repro.eval import fig7_pdp_accuracy, format_table

from conftest import run_once


def _run_both():
    return (
        fig7_pdp_accuracy("lab", rounds=10),
        fig7_pdp_accuracy("lobby", rounds=10),
    )


def test_fig7_pdp_accuracy(benchmark, save_result):
    lab, lobby = run_once(benchmark, _run_both)

    # Shape: well above the 50% coin-flip floor everywhere on average.
    assert lab.mean_accuracy > 0.72, f"lab mean {lab.mean_accuracy:.3f}"
    assert lobby.mean_accuracy > 0.8, f"lobby mean {lobby.mean_accuracy:.3f}"
    # Shape: "PDP-based proximity ... even outperforms the Lab scenario"
    # because the lobby deployment is sparser.
    assert lobby.mean_accuracy >= lab.mean_accuracy - 0.02
    # Shape: a solid majority of sites are highly accurate.
    assert lab.fraction_above(0.7) >= 0.6
    assert lobby.fraction_above(0.7) >= 0.7

    rows = []
    for name, res in (("lab", lab), ("lobby", lobby)):
        for idx, acc in enumerate(res.site_accuracies, start=1):
            rows.append([name, idx, acc])
    save_result(
        "FIG7",
        format_table(["scenario", "position index", "PDP accuracy"], rows)
        + f"\n\nlab mean = {lab.mean_accuracy:.3f}, "
        f"lobby mean = {lobby.mean_accuracy:.3f}",
    )
