"""FIG8 — spatial localizability variance, static vs nomadic (paper Fig. 8).

Paper shape: (1) NomLoc's SLV is below the static deployment's in both
scenarios; (2) the superiority is more evident in the Lobby, where the
static deployment has the larger SLV.
"""

from repro.eval import fig8_slv, format_table

from conftest import run_once


def test_fig8_slv(benchmark, save_result):
    result = run_once(benchmark, fig8_slv)

    for scen in ("lab", "lobby"):
        assert (
            result.slv[scen]["nomadic"] < result.slv[scen]["static"]
        ), f"{scen}: nomadic SLV must beat static"
    # The static deployment suffers more in the Lobby...
    assert result.slv["lobby"]["static"] > result.slv["lab"]["static"]
    # ...and the nomadic gain is correspondingly larger there.
    assert result.reduction("lobby") > result.reduction("lab")

    rows = []
    for scen in ("lab", "lobby"):
        for mode in ("static", "nomadic"):
            stats = result.stats[scen][mode]
            rows.append(
                [scen, mode, result.slv[scen][mode], stats.mean, stats.p90]
            )
    save_result(
        "FIG8",
        format_table(
            ["scenario", "deployment", "SLV", "mean err(m)", "p90(m)"], rows
        )
        + "\n\nSLV reduction: "
        + ", ".join(
            f"{s}={result.reduction(s) * 100:.0f}%" for s in ("lab", "lobby")
        ),
    )
