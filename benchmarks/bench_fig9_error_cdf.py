"""FIG9 — localization error CDF, static vs nomadic (paper Fig. 9).

Paper shape: (a) Lab — both deployments achieve mean accuracy below ~2 m,
with NomLoc clearly ahead; (b) Lobby — NomLoc yields meter-scale accuracy
while the static deployment degrades significantly.
"""

from repro.eval import fig9_error_cdf, format_cdf_table

from conftest import run_once


def _run_both():
    return fig9_error_cdf("lab"), fig9_error_cdf("lobby")


def test_fig9_error_cdf(benchmark, save_result):
    lab, lobby = run_once(benchmark, _run_both)

    # Lab (Fig. 9a): both under ~2.5 m mean, nomadic ahead.
    assert lab.nomadic_cdf.mean < lab.static_cdf.mean
    assert lab.nomadic_cdf.mean < 2.5
    assert lab.static_cdf.mean < 3.5
    assert lab.nomadic_cdf.percentile(90) <= lab.static_cdf.percentile(90)

    # Lobby (Fig. 9b): nomadic ahead on mean and on the tail.
    assert lobby.nomadic_cdf.mean < lobby.static_cdf.mean
    assert lobby.nomadic_cdf.percentile(90) < lobby.static_cdf.percentile(90)
    # The static deployment degrades much more in the open venue.
    assert lobby.static_cdf.mean > lab.static_cdf.mean

    text = []
    for res in (lab, lobby):
        text.append(
            f"--- {res.scenario} ---\n"
            + format_cdf_table(
                {"static": res.static_cdf, "nomadic": res.nomadic_cdf},
                points=11,
            )
            + f"\nmean: static={res.static_cdf.mean:.2f} m, "
            f"nomadic={res.nomadic_cdf.mean:.2f} m; "
            f"p90: static={res.static_cdf.percentile(90):.2f} m, "
            f"nomadic={res.nomadic_cdf.percentile(90):.2f} m"
        )
    save_result("FIG9", "\n\n".join(text))
