"""GATEWAY — the network edge: wire bit-exactness, concurrency, durability.

Three claims of the ``repro.gateway`` subsystem, benchmarked:

* **Wire bit-exactness** — estimates served over a real TCP socket
  (HTTP parse → protocol decode → thread-offloaded cluster solve →
  JSON encode) equal calling :class:`repro.serving.LocalizationService`
  in-process, float for float.
* **Concurrency** — a closed-loop load campaign over ≥ 64 concurrent
  keep-alive connections sustains the solver-bound throughput with
  bounded tail latency (sustained QPS, p50/p95 recorded).
* **Ingest durability** — a gateway subprocess is SIGKILLed mid-load;
  after a restart on the same WAL ledger, **every batch the clients
  had an acknowledgement for is answered** (zero acked-but-lost
  measurements), and the restarted gateway then drains cleanly on
  SIGTERM.

Sustained QPS, latency quantiles, and the kill-drill ledger accounting
are persisted to ``benchmarks/results/BENCH_gateway.json`` (and
``GATEWAY.txt``).
"""

import asyncio
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.gateway import (
    AsyncGatewayClient,
    GatewayConfig,
    GatewayServer,
    LoadGenConfig,
    MeasurementLedger,
    run_loadgen,
)
from repro.serving import LocalizationRequest, LocalizationService

from conftest import run_once

QUERIES = 8  # bit-exactness round trips
PACKETS = 4
CONNECTIONS = 64  # the acceptance floor for concurrent connections
LOAD_S = 3.0  # sustained-load campaign length
KILL_AFTER_S = 1.5  # SIGKILL lands this far into the durability campaign
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def _gather_queries():
    scenario = get_scenario("lab")
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([13, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


# ----------------------------------------------------------------------
# Phases A+B: in-process server, real sockets
# ----------------------------------------------------------------------

def _run_socket_phases(scenario, anchor_sets, db_path):
    """Bit-exactness round trips, then the 64-connection campaign."""
    with LocalizationService(scenario.plan.boundary) as direct:
        reference = [
            direct.locate_request(LocalizationRequest(a, query_id=f"q{i}"))
            for i, a in enumerate(anchor_sets)
        ]

    async def drive():
        config = GatewayConfig(port=0, db_path=str(db_path))
        async with GatewayServer(scenario.plan.boundary, config=config) as srv:
            async with AsyncGatewayClient(srv.host, srv.port) as client:
                wire = []
                for i, anchors in enumerate(anchor_sets):
                    ack = await client.submit_batch(
                        f"q{i}", anchors, object_id="bench", wait=True
                    )
                    wire.append(ack["estimate"])
            report = await run_loadgen(
                srv.host,
                srv.port,
                anchor_sets,
                LoadGenConfig(
                    connections=CONNECTIONS,
                    duration_s=LOAD_S,
                    mode="locate",
                ),
            )
            return wire, report

    wire, report = asyncio.run(drive())
    mismatches = sum(
        1
        for w, ref in zip(wire, reference)
        if (w["position"]["x"], w["position"]["y"])
        != (ref.position.x, ref.position.y)
    )
    return {
        "reference": reference,
        "wire": wire,
        "mismatches": mismatches,
        "load": report.summary(),
    }


# ----------------------------------------------------------------------
# Phase C: subprocess kill drill
# ----------------------------------------------------------------------

def _spawn_gateway(db_path):
    """Launch ``repro gateway --serve`` and wait for its bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "gateway", "lab", "--serve",
            "--port", "0", "--db", str(db_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60.0
    while True:
        line = proc.stdout.readline()
        if "listening on http://" in line:
            port = int(line.split("listening on http://", 1)[1]
                       .split()[0].rsplit(":", 1)[1])
            return proc, port
        if not line or time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"gateway never came up: {line!r}")


def _run_kill_drill(anchor_sets, db_path):
    """SIGKILL a loaded gateway; restart must answer every acked batch."""
    proc, port = _spawn_gateway(db_path)

    async def load_and_kill():
        campaign = asyncio.ensure_future(
            run_loadgen(
                "127.0.0.1",
                port,
                anchor_sets,
                LoadGenConfig(
                    connections=16,
                    duration_s=KILL_AFTER_S + 20.0,
                    mode="measurements",
                    batch_prefix="kill-drill",
                ),
            )
        )
        await asyncio.sleep(KILL_AFTER_S)
        proc.kill()  # SIGKILL: no drain, no checkpoint, no goodbye
        return await campaign  # connections die; acked work is recorded

    report = asyncio.run(load_and_kill())
    proc.wait(timeout=30)
    acked = list(report.acked_batch_ids)

    # The restart: same ledger, replay the backlog before serving.
    proc2, port2 = _spawn_gateway(db_path)
    try:

        async def audit():
            async with AsyncGatewayClient("127.0.0.1", port2) as client:
                lost = [
                    batch_id
                    for batch_id in acked
                    if (await client.get_estimate(batch_id))["status"]
                    != "answered"
                ]
                metrics = await client.metrics()
                return lost, metrics["gateway"]["replayed_on_start"]

        lost, replayed = asyncio.run(audit())
        proc2.send_signal(signal.SIGTERM)
        out, _ = proc2.communicate(timeout=60)
    finally:
        if proc2.poll() is None:
            proc2.kill()
    with MeasurementLedger(db_path) as ledger:
        counts = ledger.counts()
    return {
        "acked": len(acked),
        "completed_before_kill": report.completed,
        "lost": lost,
        "replayed_on_start": replayed,
        "ledger_counts": counts,
        "clean_drain": "gateway drained cleanly" in out,
        "exit_code": proc2.returncode,
    }


def _gateway_campaign(tmp_dir):
    scenario, anchor_sets = _gather_queries()
    socket_phases = _run_socket_phases(
        scenario, anchor_sets, tmp_dir / "bench_gateway.db"
    )
    drill = _run_kill_drill(anchor_sets, tmp_dir / "bench_kill.db")
    return socket_phases, drill


def test_gateway_wire_exactness_concurrency_durability(
    benchmark, save_result, save_json, tmp_path
):
    socket_phases, drill = run_once(benchmark, _gateway_campaign, tmp_path)

    # Phase A acceptance: the socket changes nothing about the answer.
    assert socket_phases["mismatches"] == 0, (
        f"{socket_phases['mismatches']} wire answers diverged from the "
        "in-process service"
    )

    # Phase B acceptance: the campaign genuinely ran 64-wide and the
    # closed loop sustained it without errors.
    load = socket_phases["load"]
    assert load["errors"] == 0
    assert load["completed"] >= CONNECTIONS, (
        "campaign too small to exercise the concurrency floor"
    )
    assert load["qps"] > 0

    # Phase C acceptance: zero acked-but-lost measurements, and the
    # restarted gateway drained cleanly on SIGTERM.
    assert drill["acked"] > 0, "kill drill acked nothing before the kill"
    assert not drill["lost"], (
        f"{len(drill['lost'])} acknowledged batches lost across the kill: "
        f"{drill['lost'][:5]}"
    )
    assert drill["ledger_counts"]["pending"] == 0
    assert drill["clean_drain"] and drill["exit_code"] == 0

    rows = [
        [
            "wire-exactness",
            f"{QUERIES} round trips",
            "-",
            "-",
            "-",
            f"{socket_phases['mismatches']} mismatches",
        ],
        [
            "sustained-load",
            f"{CONNECTIONS} conns x {LOAD_S:.0f}s",
            round(load["qps"], 1),
            round(load["latency_p50_ms"], 2),
            round(load["latency_p95_ms"], 2),
            f"{load['errors']} errors",
        ],
        [
            "kill-drill",
            f"SIGKILL@{KILL_AFTER_S:.1f}s",
            "-",
            "-",
            "-",
            f"{drill['acked']} acked, {len(drill['lost'])} lost, "
            f"{drill['replayed_on_start']} replayed",
        ],
    ]
    table = format_table(
        ["phase", "setup", "qps", "p50(ms)", "p95(ms)", "outcome"], rows
    )
    save_result("GATEWAY", table)
    save_json(
        "gateway",
        {
            "queries": QUERIES,
            "wire_bit_exact": socket_phases["mismatches"] == 0,
            "sustained_load": {
                "connections": CONNECTIONS,
                "duration_s": LOAD_S,
                **load,
            },
            "kill_drill": {
                "kill_after_s": KILL_AFTER_S,
                "acked": drill["acked"],
                "lost": len(drill["lost"]),
                "replayed_on_start": drill["replayed_on_start"],
                "ledger_counts": drill["ledger_counts"],
                "clean_drain": drill["clean_drain"],
            },
        },
    )
    print()
    print(table)
