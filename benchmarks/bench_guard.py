"""GUARD — link-quality gating: bit-exactness + accuracy under corruption.

Two claims of the ``repro.guard`` subsystem, benchmarked:

* **Zero faults** — a :class:`repro.guard.GuardedSystem` composed with an
  empty :class:`repro.guard.LinkFaultInjector` answers *bit-identically*
  to the plain :class:`repro.core.NomLocSystem` pipeline on every query
  (the gate never perturbs clean traffic).
* **Corruption drill** — with every link hit by an oscillator phase
  smear at 20% probability per query, the gating-ON arm's median error
  beats the gating-OFF arm.  The OFF arm trusts the smeared links'
  max-tap PDP, which a phase smear biases ~10 dB low; the ON arm
  detects the dispersed CIR energy and salvages each smeared link from
  its total energy, recalibrated against the clean links of the same
  query.  Both arms see byte-identical corrupted measurements (the
  injector is a pure function of seed, link name, and call index).

Median errors per arm and the zero-fault check are persisted to
``benchmarks/results/BENCH_guard.json`` (and ``GUARD.txt``).
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.guard import (
    GuardedSystem,
    InsufficientLinksError,
    LinkFaultInjector,
    LinkFaultPlan,
)

from conftest import run_once

PACKETS = 8
REPETITIONS = 5
CORRUPTION_RATE = 0.2
FAULT_SEED = 11


def _queries(scenario):
    """(truth, rng) pairs: every test site, REPETITIONS seeds each."""
    out = []
    for site_idx, site in enumerate(scenario.test_sites):
        for rep in range(REPETITIONS):
            out.append((site, np.random.SeedSequence([3, site_idx, rep])))
    return out


def _zero_fault_check(scenario, queries):
    """Gated-with-empty-plan vs plain pipeline, position for position."""
    plain = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    guarded = GuardedSystem(
        NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS)),
        injector=LinkFaultInjector(),
    )
    mismatches = 0
    for truth, seed in queries:
        reference = plain.locate(truth, np.random.default_rng(seed))
        gated = guarded.locate(truth, np.random.default_rng(seed))
        if (
            gated.position.x != reference.position.x
            or gated.position.y != reference.position.y
            or gated.confidence != 1.0
            or gated.degradation_reasons != ()
        ):
            mismatches += 1
    return {"queries": len(queries), "mismatches": mismatches}


def _corruption_arm(scenario, queries, gate):
    """One drill arm; both arms replay identical corrupted measurements."""
    xmin, ymin, xmax, ymax = scenario.plan.boundary.bounding_box()
    diag = float(np.hypot(xmax - xmin, ymax - ymin))
    guarded = GuardedSystem(
        NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS)),
        injector=LinkFaultInjector(
            LinkFaultPlan.phase_offset(CORRUPTION_RATE), seed=FAULT_SEED
        ),
        gate=gate,
    )
    errors = []
    unanswered = 0
    degraded = 0
    rejected = 0
    for truth, seed in queries:
        try:
            estimate, result = guarded.locate_with_result(
                truth, np.random.default_rng(seed)
            )
        except InsufficientLinksError:
            # Refusing to answer is scored as the worst possible answer,
            # so the gate cannot win by abstaining.
            unanswered += 1
            errors.append(diag)
            continue
        errors.append(float(estimate.error_to(truth)))
        degraded += len(result.degraded)
        rejected += len(result.rejected)
    return {
        "median_m": float(np.median(errors)),
        "mean_m": float(np.mean(errors)),
        "p90_m": float(np.percentile(errors, 90)),
        "unanswered": unanswered,
        "degraded_links": degraded,
        "rejected_links": rejected,
    }


def _guard_campaign():
    scenario = get_scenario("lab")
    queries = _queries(scenario)
    zero_fault = _zero_fault_check(scenario, queries)
    gating_on = _corruption_arm(scenario, queries, gate=True)
    gating_off = _corruption_arm(scenario, queries, gate=False)
    return zero_fault, gating_on, gating_off, len(queries)


def test_guard_bit_exactness_and_gating_wins(
    benchmark, save_result, save_json
):
    zero_fault, on, off, n_queries = run_once(benchmark, _guard_campaign)

    # Invariant (a): the gate never changes a bit of clean traffic.
    assert zero_fault["mismatches"] == 0, (
        f"{zero_fault['mismatches']}/{zero_fault['queries']} zero-fault "
        "queries diverged from the ungated pipeline"
    )

    # Invariant (b): under corruption, gating must pay for itself.
    assert on["median_m"] < off["median_m"], (
        f"gating-ON median {on['median_m']:.2f} m not better than "
        f"gating-OFF {off['median_m']:.2f} m at "
        f"{CORRUPTION_RATE:.0%} corruption"
    )
    # The gate must actually have gated something to claim the win.
    assert on["degraded_links"] > 0

    rows = [
        ["zero-fault", "-", "-", "-", f"0/{zero_fault['queries']} mismatch"],
        [
            "gating ON",
            round(on["median_m"], 2),
            round(on["mean_m"], 2),
            round(on["p90_m"], 2),
            f"{on['degraded_links']} links salvaged",
        ],
        [
            "gating OFF",
            round(off["median_m"], 2),
            round(off["mean_m"], 2),
            round(off["p90_m"], 2),
            "corrupted links trusted",
        ],
    ]
    table = format_table(
        ["arm", "median(m)", "mean(m)", "p90(m)", "notes"], rows
    )
    save_result("GUARD", table)
    save_json(
        "guard",
        {
            "queries": n_queries,
            "packets_per_link": PACKETS,
            "zero_fault": {
                "bit_exact": zero_fault["mismatches"] == 0,
                "queries": zero_fault["queries"],
            },
            "corruption_drill": {
                "fault": f"phase-offset rate {CORRUPTION_RATE}",
                "gating_on": on,
                "gating_off": off,
                "median_improvement_m": off["median_m"] - on["median_m"],
            },
        },
    )
    print()
    print(table)
