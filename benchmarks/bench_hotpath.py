"""HOTPATH — measurement fast path: vectorized vs scalar, parallel campaigns.

Three quality gates over the PR's performance work, enforced in CI's
benchmark smoke job:

* **synthesis speedup** — the vectorized ``CSISynthesizer.synthesize_batch``
  must beat the scalar reference loop by ``MIN_SYNTHESIS_SPEEDUP`` at the
  canonical 100 packets x 8 paths workload;
* **bit-exactness** — vectorized synthesis (CSI + RSSI), batched PDP
  extraction, and process-parallel campaigns must all reproduce their
  scalar/sequential references bit-for-bit;
* **ledger** — metrics are persisted both as the human table
  (``results/HOTPATH.txt``) and as machine-readable JSON
  (``results/BENCH_hotpath.json``).

The campaign parallel speedup is *reported*, not asserted: CI runners may
expose a single core, where process fan-out only pays overhead.
"""

import time

import numpy as np

from repro.channel import (
    SPEED_OF_LIGHT,
    CSISynthesizer,
    PathComponent,
    PathKind,
)
from repro.core import NomLocSystem, SystemConfig
from repro.core.pdp import estimate_pdp, estimate_pdp_batch
from repro.environment import get_scenario
from repro.eval import format_table, run_campaign

from conftest import run_once

PACKETS = 100
PATHS = 8
ROUNDS = 3
#: Vectorized synthesis must beat the scalar loop by this factor.
MIN_SYNTHESIS_SPEEDUP = 3.0

CAMPAIGN_SITES = 4
CAMPAIGN_REPETITIONS = 2
CAMPAIGN_PACKETS = 5
CAMPAIGN_WORKERS = 2
SEED = 42


def _make_paths(count: int = PATHS) -> tuple[PathComponent, ...]:
    """A deterministic direct-plus-reflections path set for one link."""
    lengths = [8.0 + 3.0 * i for i in range(count)]
    paths = [
        PathComponent(
            PathKind.DIRECT, lengths[0], lengths[0] / SPEED_OF_LIGHT, 0.0
        )
    ]
    for i in range(1, count):
        paths.append(
            PathComponent(
                PathKind.REFLECTED,
                lengths[i],
                lengths[i] / SPEED_OF_LIGHT,
                4.0 + 2.0 * i,
                bounces=1,
            )
        )
    return tuple(paths)


def _best_of(fn, rounds: int = ROUNDS):
    """Best-of-``rounds`` wall time (noise only ever slows a round down)."""
    elapsed = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - started)
    return elapsed, result


def _synthesis_comparison() -> dict:
    synthesizer = CSISynthesizer()
    paths = _make_paths()

    scalar_s, scalar_batch = _best_of(
        lambda: synthesizer.synthesize_batch_scalar(
            paths, PACKETS, np.random.default_rng(SEED)
        )
    )
    vector_s, vector_batch = _best_of(
        lambda: synthesizer.synthesize_batch(
            paths, PACKETS, np.random.default_rng(SEED)
        )
    )
    csi_identical = all(
        np.array_equal(s.csi, v.csi)
        for s, v in zip(scalar_batch, vector_batch)
    )
    rssi_identical = all(
        s.rssi_dbm == v.rssi_dbm
        for s, v in zip(scalar_batch, vector_batch)
    )
    return {
        "packets": PACKETS,
        "paths": PATHS,
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s,
        "csi_bit_identical": csi_identical,
        "rssi_bit_identical": rssi_identical,
        "measurements": vector_batch,
    }


def _pdp_comparison(measurements) -> dict:
    scalar_s, scalar_value = _best_of(lambda: estimate_pdp(measurements))
    batch_s, batch_value = _best_of(lambda: estimate_pdp_batch(measurements))
    return {
        "packets": len(measurements),
        "scalar_s": scalar_s,
        "batched_s": batch_s,
        "speedup": scalar_s / batch_s,
        "bit_identical": scalar_value == batch_value,
    }


def _campaign_comparison() -> dict:
    scenario = get_scenario("lab")
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=CAMPAIGN_PACKETS)
    )
    sites = scenario.test_sites[:CAMPAIGN_SITES]

    sequential_s, sequential = _best_of(
        lambda: run_campaign(
            system, sites, CAMPAIGN_REPETITIONS, SEED, "hotpath"
        ),
        rounds=2,
    )
    parallel_s, parallel = _best_of(
        lambda: run_campaign(
            system,
            sites,
            CAMPAIGN_REPETITIONS,
            SEED,
            "hotpath",
            workers=CAMPAIGN_WORKERS,
        ),
        rounds=2,
    )
    return {
        "sites": len(sites),
        "repetitions": CAMPAIGN_REPETITIONS,
        "workers": CAMPAIGN_WORKERS,
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s,
        "bit_identical": sequential == parallel,
    }


def _hotpath_suite() -> dict:
    synthesis = _synthesis_comparison()
    pdp = _pdp_comparison(synthesis.pop("measurements"))
    campaign = _campaign_comparison()
    return {"synthesis": synthesis, "pdp": pdp, "campaign": campaign}


def test_hotpath(benchmark, save_result, save_json):
    r = run_once(benchmark, _hotpath_suite)
    synthesis, pdp, campaign = r["synthesis"], r["pdp"], r["campaign"]

    # Gate 1: the fast path computes the same floats, everywhere.
    assert synthesis["csi_bit_identical"], (
        "vectorized synthesize_batch diverged from the scalar reference CSI"
    )
    assert synthesis["rssi_bit_identical"], (
        "vectorized RSSI reporting diverged from the scalar reference"
    )
    assert pdp["bit_identical"], (
        "batched PDP estimation diverged from the scalar reference"
    )
    assert campaign["bit_identical"], (
        "process-parallel campaign diverged from the sequential reference"
    )

    # Gate 2: vectorization actually pays at the canonical workload.
    assert synthesis["speedup"] >= MIN_SYNTHESIS_SPEEDUP, (
        f"vectorized synthesis only {synthesis['speedup']:.2f}x faster "
        f"than scalar (floor {MIN_SYNTHESIS_SPEEDUP:.1f}x): "
        f"{synthesis['vectorized_s'] * 1e3:.2f} ms vs "
        f"{synthesis['scalar_s'] * 1e3:.2f} ms"
    )

    rows = [
        [
            "csi.synthesize",
            f"{PACKETS}p x {PATHS}paths",
            round(synthesis["scalar_s"] * 1e3, 3),
            round(synthesis["vectorized_s"] * 1e3, 3),
            round(synthesis["speedup"], 2),
            "yes",
        ],
        [
            "pdp.estimate",
            f"{pdp['packets']} packets",
            round(pdp["scalar_s"] * 1e3, 3),
            round(pdp["batched_s"] * 1e3, 3),
            round(pdp["speedup"], 2),
            "yes",
        ],
        [
            "eval.campaign",
            f"{campaign['sites']}s x {campaign['repetitions']}r, "
            f"{campaign['workers']}w",
            round(campaign["sequential_s"] * 1e3, 1),
            round(campaign["parallel_s"] * 1e3, 1),
            round(campaign["speedup"], 2),
            "yes",
        ],
    ]
    table = format_table(
        ["stage", "workload", "ref(ms)", "fast(ms)", "speedup", "bit-identical"],
        rows,
    )
    save_result("HOTPATH", table)
    save_json("hotpath", r)
    print()
    print(table)
