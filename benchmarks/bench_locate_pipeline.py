"""PIPELINE — the batched locate pipeline: stage split + speedup floor.

PR 8 vectorized the non-LP half of the query pipeline (batched constraint
assembly, stacked relaxation/centre LPs with a crash-basis Phase-I start,
winner-only lazy geometry).  This bench pins the win three ways:

* **speedup floor** — the serving layer's ``cached-batched`` mode
  (``max_workers=0, lp_batch=QUERIES``: exactly the batched pipeline, no
  worker processes) must sustain **>= 1.5x** the QPS the PR-7 ledger
  ``results/BENCH_serving_throughput.json`` recorded on the identical
  workload (frozen below as :data:`PR7_BATCHED_QPS` — the live ledger
  file is rewritten by every bench run, so the floor pins the numbers
  this PR was accepted against);
* **bit-exactness** — ``locate_batch`` answers bit-identically to the
  scalar ``locate`` per query, for both the default CENTROID centring and
  the LP-heavy CHEBYSHEV method (the stacked Chebyshev path);
* **stage split** — an untimed instrumented pass records where batch
  wall-time goes (constraint assembly / stacked LPs / geometry / merge),
  so future regressions name their stage instead of just moving a total.

Results persist to ``results/PIPELINE.txt`` and the machine-readable
ledger ``results/BENCH_locate_pipeline.json`` that the CI regression gate
(``benchmarks/check_regression.py``) diffs against: ``qps`` floors,
``p50`` ceilings, and the ``bit_exact`` flags must never flip false.
"""

import time

import numpy as np

from repro.core import (
    LocalizerConfig,
    NomLocLocalizer,
    NomLocSystem,
    SystemConfig,
)
from repro.core.center import CenterMethod
from repro.environment import get_scenario
from repro.eval import format_table
from repro.obs import capture
from repro.serving import LocalizationService, ServingConfig

from conftest import run_once

QUERIES = 64
PACKETS = 6
REPS = 3
SCENARIOS = ("lab", "lobby")
SPEEDUP_FLOOR = 1.5

#: ``cached-batched`` QPS from the committed PR-7 serving ledger
#: (``results/BENCH_serving_throughput.json`` as of the commit before the
#: vectorized pipeline landed).  Frozen here because the live file is
#: overwritten whenever the serving bench re-runs.
PR7_BATCHED_QPS = {"lab": 1213.7, "lobby": 630.9}
CENTER_METHODS = (CenterMethod.CENTROID, CenterMethod.CHEBYSHEV)
STAGES = (
    "constraints.build_batch",
    "lp.solve_batch",
    "geometry.batch",
    "merge",
)


def _gather_queries(scenario_name: str):
    """The exact workload of bench_serving_throughput (same seeds)."""
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([7, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


def _time_batched_serving(scenario, anchor_sets):
    """Best-of-REPS QPS of the warm cached-batched serving mode."""
    config = ServingConfig(max_workers=0, lp_batch=QUERIES)
    svc = LocalizationService(scenario.plan.boundary, config=config)
    try:
        svc.batch(anchor_sets[:2])  # warm topology + bisector caches
        best = float("inf")
        for _ in range(REPS):
            started = time.perf_counter()
            responses = svc.batch(anchor_sets)
            best = min(best, time.perf_counter() - started)
        snap = svc.metrics_snapshot()
        return {
            "responses": responses,
            "qps": len(anchor_sets) / best,
            "p50_ms": snap["latency_p50_s"] * 1e3,
        }
    finally:
        svc.close()


def _bit_exact(scenario, anchor_sets, method):
    """locate_batch vs scalar locate, winner regions included."""
    localizer = NomLocLocalizer(
        scenario.plan.boundary, LocalizerConfig(center_method=method)
    ).warm()
    batched = localizer.locate_batch(list(anchor_sets))
    for anchors, est in zip(anchor_sets, batched):
        scalar = localizer.locate(anchors)
        if (
            scalar.position != est.position
            or scalar.relaxation_cost != est.relaxation_cost
            or scalar.num_constraints != est.num_constraints
        ):
            return False
        if (scalar.region is None) != (est.region is None):
            return False
        if scalar.region is not None and [
            (p.x, p.y) for p in scalar.region.vertices
        ] != [(p.x, p.y) for p in est.region.vertices]:
            return False
    return True


def _stage_split_ms(scenario, anchor_sets):
    """Per-stage wall time of one instrumented locate_batch pass."""
    localizer = NomLocLocalizer(scenario.plan.boundary).warm()
    localizer.locate_batch(list(anchor_sets[:2]))  # warm, untraced
    with capture() as tracer:
        localizer.locate_batch(list(anchor_sets))
    totals: dict[str, float] = {}
    for span in tracer.finished():
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
    return {name: totals.get(name, 0.0) * 1e3 for name in STAGES}


def _pipeline_comparison():
    results = {}
    for scenario_name in SCENARIOS:
        scenario, anchor_sets = _gather_queries(scenario_name)
        timing = _time_batched_serving(scenario, anchor_sets)
        results[scenario_name] = {
            "qps": timing["qps"],
            "p50_ms": timing["p50_ms"],
            "responses": timing["responses"],
            "stage_ms": _stage_split_ms(scenario, anchor_sets),
            "bit_exact": {
                method.name.lower(): _bit_exact(scenario, anchor_sets, method)
                for method in CENTER_METHODS
            },
        }
    return results


def test_locate_pipeline(benchmark, save_result, save_json):
    results = run_once(benchmark, _pipeline_comparison)

    rows = []
    for scenario_name, r in results.items():
        # Every centring method answers bit-identically to the scalar path.
        for method, ok in r["bit_exact"].items():
            assert ok, f"{scenario_name}/{method}: batch diverged from scalar"
        # The vectorized pipeline must beat the PR-7 batched serving path
        # by the floor, on the identical workload and serving config.
        base_qps = PR7_BATCHED_QPS[scenario_name]
        speedup = r["qps"] / base_qps
        assert speedup >= SPEEDUP_FLOOR, (
            f"{scenario_name}: batched pipeline at {r['qps']:.1f} q/s is "
            f"only {speedup:.2f}x the PR-7 baseline {base_qps:.1f} q/s "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
        stage = r["stage_ms"]
        rows.append(
            [
                scenario_name,
                round(r["qps"], 1),
                round(r["p50_ms"], 2),
                round(speedup, 2),
                round(stage["constraints.build_batch"], 2),
                round(stage["lp.solve_batch"], 2),
                round(stage["geometry.batch"], 2),
                round(stage["merge"], 2),
            ]
        )

    table = format_table(
        [
            "scenario",
            "qps",
            "p50(ms)",
            "vs-pr7",
            "assemble(ms)",
            "lp(ms)",
            "geometry(ms)",
            "merge(ms)",
        ],
        rows,
    )
    save_result("PIPELINE", table)
    save_json(
        "locate_pipeline",
        {
            scenario_name: {
                "qps": r["qps"],
                "p50_ms": r["p50_ms"],
                "speedup_vs_pr7": r["qps"] / PR7_BATCHED_QPS[scenario_name],
                "bit_exact": r["bit_exact"],
                "stage_ms": {
                    name.replace(".", "_"): ms
                    for name, ms in r["stage_ms"].items()
                },
            }
            for scenario_name, r in results.items()
        },
    )
    print()
    print(table)
