"""Micro-benchmarks of the substrates (ours).

Times the hot paths that bound experiment throughput: multipath tracing,
CSI synthesis, PDP extraction, the relaxation LP, and a full localization
query.  These use pytest-benchmark's statistical timing (many rounds),
unlike the one-shot figure benches.
"""

import numpy as np
import pytest

from repro.channel import CSISynthesizer, LinkSimulator, delay_profile, trace_paths
from repro.core import (
    Anchor,
    ConstraintSystem,
    NomLocSystem,
    SystemConfig,
    boundary_constraints,
    pairwise_constraints,
    solve_relaxation,
)
from repro.environment import get_scenario
from repro.geometry import Point, Polygon
from repro.optimize import solve_lp


@pytest.fixture(scope="module")
def lab():
    return get_scenario("lab")


@pytest.fixture(scope="module")
def lab_system(lab):
    system = NomLocSystem(lab, SystemConfig(packets_per_link=15))
    # Warm the trace cache so the locate benchmark measures steady state.
    system.locate(lab.test_sites[0], np.random.default_rng(0))
    return system


def test_trace_paths_lab_link(benchmark, lab):
    tx, rx = lab.test_sites[0], lab.aps[1].position
    paths = benchmark(trace_paths, lab.plan, tx, rx)
    assert len(paths) > 5


def test_csi_synthesis_per_packet(benchmark, lab):
    sim = LinkSimulator(lab.plan)
    paths = sim.paths(lab.test_sites[0], lab.aps[1].position)
    synth = CSISynthesizer()
    rng = np.random.default_rng(0)
    m = benchmark(synth.synthesize, paths, rng)
    assert m.csi.shape == (56,)


def test_pdp_extraction(benchmark, lab):
    sim = LinkSimulator(lab.plan)
    rng = np.random.default_rng(0)
    m = sim.measure(lab.test_sites[0], lab.aps[1].position, rng)
    profile = benchmark(delay_profile, m)
    assert profile.max_power() > 0


def test_relaxation_lp(benchmark):
    """A representative 19-row relaxation LP (7 anchors + boundary)."""
    rng = np.random.default_rng(0)
    area = Polygon.rectangle(0, 0, 12, 8)
    anchors = [
        Anchor(f"A{i}", Point(*rng.uniform((0.5, 0.5), (11.5, 7.5))), float(pdp))
        for i, pdp in enumerate(rng.uniform(1e-6, 1e-4, 7))
    ]
    system = ConstraintSystem(
        tuple(pairwise_constraints(anchors, include_nomadic_pairs=True))
        + tuple(boundary_constraints(area))
    )
    result = benchmark(solve_relaxation, system)
    assert result.slacks.shape == (len(system),)


def test_solve_lp_small(benchmark):
    """Raw simplex throughput on a small inequality-form LP."""
    rng = np.random.default_rng(1)
    a = rng.uniform(-1, 1, size=(20, 4))
    x0 = rng.uniform(-1, 1, 4)
    b = a @ x0 + rng.uniform(0.1, 1.0, 20)
    c = rng.uniform(-1, 1, 4)
    result = benchmark(solve_lp, c, a, b)
    assert result.ok


def test_full_locate_query(benchmark, lab, lab_system):
    rng = np.random.default_rng(3)
    est = benchmark(lab_system.locate, lab.test_sites[2], rng)
    assert lab.plan.contains(est.position)


def test_localizer_only(benchmark, lab, lab_system):
    """SP stage alone (anchors pre-gathered)."""
    anchors = lab_system.gather_anchors(
        lab.test_sites[1], np.random.default_rng(4)
    )
    est = benchmark(lab_system.locate_from_anchors, anchors)
    assert lab.plan.contains(est.position)
