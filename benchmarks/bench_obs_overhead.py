"""OBS — tracing overhead guard: instrumentation must stay ~free.

Two quality gates over the :mod:`repro.obs` instrumentation switch,
enforced in CI's benchmark smoke job:

* **disabled cost** — with no tracer installed, ``span()`` returns a
  shared no-op; a call must stay deeply sub-microsecond so always-on
  instrumentation in the hot path is acceptable;
* **enabled overhead** — with tracing on, the serving hot path
  (pre-gathered anchors through ``LocalizationService.batch``) must run
  within ``MAX_ENABLED_OVERHEAD`` of the untraced time, and answer
  bit-identically.

Timings are best-of-``ROUNDS``: scheduler noise produces slow outliers,
never fast ones, so the minimum is the honest figure.
"""

import time

import numpy as np

from repro import obs
from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.serving import LocalizationService

from conftest import run_once

QUERIES = 24
PACKETS = 6
ROUNDS = 3
#: Tracing-enabled slowdown budget on the serving hot path (10%).
MAX_ENABLED_OVERHEAD = 0.10
#: Per-call budget for the disabled ``span()`` no-op path, in seconds.
MAX_DISABLED_SPAN_S = 2e-6
DISABLED_CALLS = 200_000


def _gather_queries(scenario_name="lab"):
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([11, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


def _time_batch(service, anchor_sets):
    elapsed = float("inf")
    responses = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        responses = service.batch(anchor_sets)
        elapsed = min(elapsed, time.perf_counter() - started)
    return elapsed, responses


def _disabled_span_cost():
    """Mean seconds per ``span()``+``add_counter()`` call while disabled."""
    assert not obs.is_enabled()
    started = time.perf_counter()
    for _ in range(DISABLED_CALLS):
        with obs.span("bench.noop"):
            obs.add_counter("bench.counter")
    return (time.perf_counter() - started) / DISABLED_CALLS


def _enabled_vs_disabled():
    scenario, anchor_sets = _gather_queries()
    obs.disable()
    with LocalizationService(scenario.plan.boundary) as service:
        service.batch(anchor_sets[:2])  # warm topology/bisector caches
        off_s, off_responses = _time_batch(service, anchor_sets)
        tracer = obs.enable()
        try:
            on_s, on_responses = _time_batch(service, anchor_sets)
        finally:
            obs.disable()
    return {
        "off_s": off_s,
        "on_s": on_s,
        "off_positions": [r.position for r in off_responses],
        "on_positions": [r.position for r in on_responses],
        "spans": len(tracer.finished()),
    }


def _overhead_suite():
    return {
        "noop_span_s": _disabled_span_cost(),
        **_enabled_vs_disabled(),
    }


def test_tracing_overhead(benchmark, save_result, save_json):
    r = run_once(benchmark, _overhead_suite)

    # Gate 1: the disabled path is a shared no-op — sub-microsecond.
    assert r["noop_span_s"] < MAX_DISABLED_SPAN_S, (
        f"disabled span() costs {r['noop_span_s'] * 1e9:.0f} ns/call "
        f"(budget {MAX_DISABLED_SPAN_S * 1e9:.0f} ns)"
    )

    # Gate 2: tracing never changes answers — bit-identical positions.
    assert r["on_positions"] == r["off_positions"], (
        "tracing-enabled serving diverged from the untraced run"
    )

    # Gate 3: the serving hot path absorbs tracing within budget.
    overhead = r["on_s"] / r["off_s"] - 1.0
    assert overhead <= MAX_ENABLED_OVERHEAD, (
        f"tracing-enabled batch {overhead:.1%} slower than untraced "
        f"(budget {MAX_ENABLED_OVERHEAD:.0%}): "
        f"{r['on_s'] * 1e3:.1f} ms vs {r['off_s'] * 1e3:.1f} ms"
    )

    table = format_table(
        ["metric", "value"],
        [
            ["noop span cost (ns/call)", round(r["noop_span_s"] * 1e9, 1)],
            ["untraced batch (ms)", round(r["off_s"] * 1e3, 2)],
            ["traced batch (ms)", round(r["on_s"] * 1e3, 2)],
            ["overhead", f"{overhead:+.1%}"],
            ["spans captured", r["spans"]],
            ["bit-identical", "yes"],
        ],
    )
    save_result("OBS", table)
    save_json(
        "obs_overhead",
        {
            "noop_span_ns": r["noop_span_s"] * 1e9,
            "untraced_batch_s": r["off_s"],
            "traced_batch_s": r["on_s"],
            "overhead": overhead,
            "spans_captured": r["spans"],
            "bit_identical": True,
        },
    )
    print()
    print(table)
