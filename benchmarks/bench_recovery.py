"""RECOVERY — durable tracking: SIGKILL drill + steady-state overhead.

Two claims of ``repro.sessions.durable``, benchmarked end to end:

* **Kill drill** — a ``repro track --durable`` process SIGKILLed
  mid-stream loses no confirmed input: a ``--resume`` run recovers from
  the latest snapshot plus journal-tail replay (each replayed entry
  verified against its journaled digest-chain head inside ``recover``),
  re-applies the unflushed group-commit tail from the deterministic fix
  stream, and finishes with an event log **byte-identical** to a run
  that never crashed — zero lost events, zero duplicates, and the
  recovered log chains onto the pre-crash prefix.
* **Overhead** — journaling every fix with group-commit fsync batching
  costs at most ``MAX_OVERHEAD`` (15%) of in-memory tracking
  throughput, so durability is an always-on-able default rather than a
  debugging mode.

Results are persisted to ``benchmarks/results/BENCH_recovery.json``
(and ``RECOVERY.txt``); the bit flag and both qps floors are gated by
``check_regression.py``.
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import numpy as np

import repro
from repro.environment import get_scenario
from repro.eval import format_table
from repro.geometry import Point
from repro.sessions import SessionConfig, SessionManager, SessionStore, ZoneMap

from conftest import run_once

SEED = 7

# -- kill drill (subprocess) -------------------------------------------
DRILL_STEPS = 8
DRILL_OBJECTS = 3
DRILL_KILL_AFTER = 13
DRILL_GROUP_COMMIT = 4
DRILL_CHECKPOINT = 10

# -- overhead arm (in-process) -----------------------------------------
OVH_OBJECTS = 400
OVH_TICKS = 15
OVH_GROUP_COMMIT = 1024
OVH_CHECKPOINT = 4000
OVH_REPEATS = 5
#: Acceptance bound: durable tracking within 15% of in-memory.
MAX_OVERHEAD = 0.15

_DIGEST_RE = re.compile(r"event log digest ([0-9a-f]{64})")
_FIXES_RE = re.compile(r"\((\d+) fixes\)")


# ----------------------------------------------------------------------
# Kill drill: repro track --durable --kill-after / --resume
# ----------------------------------------------------------------------

def _track(tmp, extra):
    """Run one ``repro track`` subprocess; returns CompletedProcess."""
    src = pathlib.Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "track",
        "lab",
        "--packets",
        "3",
        "--steps",
        str(DRILL_STEPS),
        "--objects",
        str(DRILL_OBJECTS),
        "--seed",
        str(SEED),
    ] + extra
    return subprocess.run(
        cmd, cwd=tmp, env=env, capture_output=True, text=True, timeout=300
    )


def _digest_of(proc):
    match = _DIGEST_RE.search(proc.stdout)
    assert match, f"no digest in output:\n{proc.stdout}\n{proc.stderr}"
    return match.group(1)


def _kill_drill(tmp):
    db = str(pathlib.Path(tmp) / "drill.db")
    durable = [
        "--durable",
        "--db",
        db,
        "--group-commit",
        str(DRILL_GROUP_COMMIT),
        "--checkpoint-every",
        str(DRILL_CHECKPOINT),
    ]
    baseline = _track(tmp, [])
    assert baseline.returncode == 0, baseline.stderr

    killed = _track(tmp, durable + ["--kill-after", str(DRILL_KILL_AFTER)])
    # The process must actually die by SIGKILL, not exit cleanly.
    assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
        f"expected SIGKILL death, got rc={killed.returncode}:\n"
        f"{killed.stdout}\n{killed.stderr}"
    )

    resumed = _track(tmp, durable + ["--resume"])
    assert resumed.returncode == 0, resumed.stderr
    assert "recovered from" in resumed.stdout, resumed.stdout
    fixes_match = _FIXES_RE.search(resumed.stdout)
    assert fixes_match, resumed.stdout
    return {
        "kill_after_fixes": DRILL_KILL_AFTER,
        "total_fixes": DRILL_STEPS * DRILL_OBJECTS,
        "group_commit": DRILL_GROUP_COMMIT,
        "checkpoint_every": DRILL_CHECKPOINT,
        "journaled_fixes_after_resume": int(fixes_match.group(1)),
        "baseline_digest": _digest_of(baseline),
        "resumed_digest": _digest_of(resumed),
        "recovered_bit_identical": _digest_of(resumed) == _digest_of(baseline),
    }


# ----------------------------------------------------------------------
# Overhead arm: in-memory vs durable fleet throughput
# ----------------------------------------------------------------------

def _overhead_fixes(boundary):
    rng = np.random.default_rng(np.random.SeedSequence([SEED, 2]))
    xmin, ymin, xmax, ymax = boundary.bounding_box()
    lo = np.array([xmin + 0.5, ymin + 0.5])
    hi = np.array([xmax - 0.5, ymax - 0.5])
    fixes = rng.uniform(lo, hi, size=(OVH_TICKS, OVH_OBJECTS, 2))
    confidence = rng.uniform(0.3, 1.0, size=(OVH_TICKS, OVH_OBJECTS))
    return fixes, confidence


def _overhead_run(zones, fixes, confidence, store):
    manager = SessionManager(
        zones,
        SessionConfig(idle_timeout_s=10.0 * OVH_TICKS),
        store=store,
        checkpoint_every=OVH_CHECKPOINT,
    )
    object_ids = [f"obj-{i:04d}" for i in range(OVH_OBJECTS)]
    start = time.perf_counter()
    for tick in range(OVH_TICKS):
        t_s = float(tick)
        tick_fixes = fixes[tick]
        tick_conf = confidence[tick]
        for i, object_id in enumerate(object_ids):
            manager.observe(
                object_id,
                t_s,
                Point(float(tick_fixes[i, 0]), float(tick_fixes[i, 1])),
                confidence=float(tick_conf[i]),
            )
    manager.sync()
    elapsed = time.perf_counter() - start
    return manager, elapsed


def _overhead_arm(tmp):
    """Paired plain/durable runs; the min paired delta is the cost.

    Disk stalls and scheduler jitter only ever *add* time, so over
    several back-to-back pairs the smallest (durable - plain) gap is
    the honest steady-state journaling cost — a single slow run in
    either arm cannot fake the comparison in either direction.
    """
    boundary = get_scenario("lab").plan.boundary
    zones = ZoneMap.grid(boundary, 4, 5)
    fixes, confidence = _overhead_fixes(boundary)
    updates = OVH_TICKS * OVH_OBJECTS

    _overhead_run(zones, fixes, confidence, None)  # warmup
    plain_s, deltas = [], []
    digests = set()
    for rep in range(OVH_REPEATS):
        plain_manager, plain = _overhead_run(zones, fixes, confidence, None)
        db = pathlib.Path(tmp) / f"overhead-{rep}.db"
        store = SessionStore(db, group_commit=OVH_GROUP_COMMIT)
        manager, durable = _overhead_run(zones, fixes, confidence, store)
        store.close()
        plain_s.append(plain)
        deltas.append(durable - plain)
        digests.add(plain_manager.event_log.digest())
        digests.add(manager.event_log.digest())
    base_s = min(plain_s)
    delta_s = max(0.0, min(deltas))
    overhead = delta_s / base_s
    return {
        "objects": OVH_OBJECTS,
        "updates": updates,
        "group_commit": OVH_GROUP_COMMIT,
        "plain_updates_qps": round(updates / base_s, 1),
        "durable_updates_qps": round(updates / (base_s + delta_s), 1),
        "overhead_frac": round(overhead, 4),
        "journaling_bit_identical": len(digests) == 1,
    }


def _recovery_campaign(tmp):
    return _kill_drill(tmp), _overhead_arm(tmp)


def test_recovery_drill_and_overhead(
    benchmark, save_result, save_json, tmp_path
):
    drill, overhead = run_once(benchmark, _recovery_campaign, str(tmp_path))

    # Invariant (a): the resumed run is the uninterrupted run, byte for
    # byte — nothing confirmed was lost, nothing was applied twice.
    assert drill["recovered_bit_identical"], (
        f"resumed digest {drill['resumed_digest'][:16]} != baseline "
        f"{drill['baseline_digest'][:16]}"
    )
    assert drill["journaled_fixes_after_resume"] == drill["total_fixes"], (
        "resume did not complete the journal: "
        f"{drill['journaled_fixes_after_resume']} != {drill['total_fixes']}"
    )

    # Invariant (b): durability stays within the overhead budget, and
    # journaling never perturbs the event stream.
    assert overhead["journaling_bit_identical"], (
        "durable and in-memory runs produced different event logs"
    )
    assert overhead["overhead_frac"] <= MAX_OVERHEAD, (
        f"durable overhead {overhead['overhead_frac']:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} budget "
        f"({overhead['durable_updates_qps']:.0f}/s vs "
        f"{overhead['plain_updates_qps']:.0f}/s)"
    )

    rows = [
        [
            "kill drill",
            f"{drill['kill_after_fixes']}/{drill['total_fixes']} fixes",
            f"group-commit {drill['group_commit']}",
            "resume byte-identical to uninterrupted run",
        ],
        [
            "overhead",
            f"{overhead['updates']} updates",
            f"group-commit {overhead['group_commit']}",
            f"{overhead['overhead_frac']:.1%} vs in-memory "
            f"(budget {MAX_OVERHEAD:.0%})",
        ],
    ]
    table = format_table(["arm", "scale", "durability", "result"], rows)
    save_result("RECOVERY", table)
    save_json("recovery", {"kill_drill": drill, "overhead": overhead})
    print()
    print(table)
