"""SCALE — localization cost vs anchor count (paper Sec. IV-B4).

"the LP problem can be solved using interior-point method within weakly
polynomial time.  Therefore, the scalability of the proposed NomLoc
system is very high."  This bench times the full SP stage (constraint
construction + relaxation LP + region centring) as the anchor count grows
— e.g. many nomadic sites or many nomadic APs.  Expected shape: smooth
polynomial growth, milliseconds even at 32 anchors.
"""

import numpy as np
import pytest

from repro.core import Anchor, NomLocLocalizer
from repro.geometry import Point, Polygon

AREA = Polygon.rectangle(0, 0, 30, 20)


def synthetic_anchors(count: int, seed: int = 0) -> list[Anchor]:
    rng = np.random.default_rng(seed)
    obj = Point(12.0, 8.0)
    anchors = []
    for i in range(count):
        pos = Point(float(rng.uniform(1, 29)), float(rng.uniform(1, 19)))
        pdp = 1.0 / (0.1 + obj.distance_to(pos)) ** 2
        pdp *= float(rng.lognormal(0.0, 0.2))  # measurement noise
        anchors.append(Anchor(f"A{i}", pos, pdp, nomadic=i >= 4))
    return anchors


@pytest.mark.parametrize("count", [4, 8, 16, 32])
def test_locate_scales_with_anchor_count(benchmark, count):
    localizer = NomLocLocalizer(AREA)
    anchors = synthetic_anchors(count)
    estimate = benchmark(localizer.locate, anchors)
    assert AREA.contains(estimate.position)
    # C(n,2) pairwise rows + 4 boundary rows.
    assert estimate.num_constraints == count * (count - 1) // 2 + 4


def test_scalability_is_polynomial(benchmark, save_result=None):
    """One-shot wall-clock curve for the results file."""
    import time

    from repro.eval import format_table

    rows = []
    for count in (4, 8, 16, 32, 48):
        localizer = NomLocLocalizer(AREA)
        anchors = synthetic_anchors(count)
        start = time.perf_counter()
        runs = 5
        for _ in range(runs):
            localizer.locate(anchors)
        elapsed_ms = (time.perf_counter() - start) / runs * 1e3
        rows.append([count, count * (count - 1) // 2 + 4, round(elapsed_ms, 2)])

    def run():
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    # Polynomial, not explosive: 48 anchors (1132 constraint rows) stays
    # well under a second per query.
    assert rows[-1][2] < 1000.0, rows
    table = format_table(["anchors", "LP rows", "ms/query"], rows)
    results_dir = __import__("pathlib").Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "SCALE.txt").write_text(table + "\n")
