"""SERVE — serving-layer throughput: sequential vs pooled vs cached (ours).

Measures queries/sec and p50/p95 latency of the
:class:`repro.serving.LocalizationService` over pre-gathered anchor sets
(measurement excluded — a server receives anchors, it doesn't simulate
radios) in three configurations per scenario:

* ``cold-sequential`` — caches off, no workers: every query rebuilds the
  convex decomposition and boundary rows, the pre-serving baseline;
* ``cached-sequential`` — topology + bisector caches on, warm;
* ``cached-pooled`` — caches on plus a worker pool.

Expected shape: the cached paths beat cold-sequential (the topology
prefix dominates small-query solve time), and all three return
bit-identical positions.  Results are persisted to
``benchmarks/results/SERVE.txt``.
"""

import time

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.serving import LocalizationService, ServingConfig

from conftest import run_once

QUERIES = 40
PACKETS = 6
WORKERS = 4

MODES = {
    "cold-sequential": ServingConfig(
        max_workers=0, cache_topologies=False, cache_bisectors=False
    ),
    "cached-sequential": ServingConfig(max_workers=0),
    "cached-pooled": ServingConfig(max_workers=WORKERS),
}


def _gather_queries(scenario_name: str):
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([7, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


def _run_mode(scenario, anchor_sets, config):
    with LocalizationService(scenario.plan.boundary, config=config) as svc:
        if config.cache_topologies:
            svc.batch(anchor_sets[:2])  # warm the caches out-of-band
        # Best-of-two timed batches: scheduler noise shows up as a slow
        # outlier, never a fast one, so the max q/s is the honest figure.
        elapsed = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            responses = svc.batch(anchor_sets)
            elapsed = min(elapsed, time.perf_counter() - started)
        snap = svc.metrics_snapshot()
    return {
        "responses": responses,
        "qps": len(anchor_sets) / elapsed,
        "p50_ms": snap["latency_p50_s"] * 1e3,
        "p95_ms": snap["latency_p95_s"] * 1e3,
        "degraded": snap["degraded"],
    }


def _serving_comparison():
    results = {}
    for scenario_name in ("lab", "lobby"):
        scenario, anchor_sets = _gather_queries(scenario_name)
        results[scenario_name] = {
            mode: _run_mode(scenario, anchor_sets, config)
            for mode, config in MODES.items()
        }
    return results


def test_serving_throughput(benchmark, save_result, save_json):
    results = run_once(benchmark, _serving_comparison)

    rows = []
    for scenario_name, by_mode in results.items():
        cold = by_mode["cold-sequential"]
        for mode, r in by_mode.items():
            # Serving must never silently degrade under benign load.
            assert r["degraded"] == 0, f"{scenario_name}/{mode} degraded"
            # All modes answer bit-identically.
            assert [x.position for x in r["responses"]] == [
                x.position for x in cold["responses"]
            ], f"{scenario_name}/{mode} diverged from cold-sequential"
            rows.append(
                [
                    scenario_name,
                    mode,
                    round(r["qps"], 1),
                    round(r["p50_ms"], 2),
                    round(r["p95_ms"], 2),
                    round(r["qps"] / cold["qps"], 2),
                ]
            )
        # The acceptance bar: a measurable speedup over the cold path
        # from the cache hit or the pool.
        best = max(
            by_mode["cached-sequential"]["qps"],
            by_mode["cached-pooled"]["qps"],
        )
        assert best > cold["qps"], (
            f"{scenario_name}: no serving speedup "
            f"(cold {cold['qps']:.1f} q/s, best {best:.1f} q/s)"
        )

    table = format_table(
        ["scenario", "mode", "qps", "p50(ms)", "p95(ms)", "speedup"], rows
    )
    save_result("SERVE", table)
    save_json(
        "serving_throughput",
        {
            scenario_name: {
                mode: {
                    "qps": r["qps"],
                    "p50_ms": r["p50_ms"],
                    "p95_ms": r["p95_ms"],
                    "degraded": r["degraded"],
                }
                for mode, r in by_mode.items()
            }
            for scenario_name, by_mode in results.items()
        },
    )
    print()
    print(table)
