"""SERVE — serving-layer throughput: sequential vs pooled/batched/process.

Measures queries/sec and p50/p95 latency of the
:class:`repro.serving.LocalizationService` over pre-gathered anchor sets
(measurement excluded — a server receives anchors, it doesn't simulate
radios) in five configurations per scenario:

* ``cold-sequential`` — caches off, no workers: every query rebuilds the
  convex decomposition and boundary rows, the pre-serving baseline;
* ``cached-sequential`` — topology + bisector caches on, warm; the
  bit-exactness and speedup reference for the parallel modes;
* ``cached-pooled`` — caches on plus a thread pool (GIL-bound: included
  as the documented anti-pattern the process/batched modes replace);
* ``cached-batched`` — caches on, micro-batched stacked-LP solves
  (``lp_batch``): many queries advance per NumPy pass instead of one per
  Python pivot loop — the single-core way past the GIL ceiling;
* ``cached-processes`` — caches on, process workers solving micro-batch
  chunks with the warmed topology state fork-inherited — the multi-core
  way past it.

Acceptance bar: the best parallel mode (batched or processes) sustains
**>= 3x** the cached-sequential QPS, and every mode returns bit-identical
positions.  Timing is best-of-``REPS`` per mode with the modes
interleaved across repetitions, so a noisy-neighbour burst hurts every
mode equally instead of whichever one it landed on.  Results are
persisted to ``benchmarks/results/SERVE.txt`` and the machine-readable
ledger ``benchmarks/results/BENCH_serving_throughput.json`` that the CI
regression gate (``benchmarks/check_regression.py``) diffs against.
"""

import os
import time

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.serving import LocalizationService, ServingConfig

from conftest import run_once

QUERIES = 64
PACKETS = 6
REPS = 3
THREAD_WORKERS = 4
PROC_WORKERS = max(1, min(4, os.cpu_count() or 1))

MODES = {
    "cold-sequential": ServingConfig(
        max_workers=0, cache_topologies=False, cache_bisectors=False
    ),
    "cached-sequential": ServingConfig(max_workers=0),
    "cached-pooled": ServingConfig(max_workers=THREAD_WORKERS),
    "cached-batched": ServingConfig(max_workers=0, lp_batch=QUERIES),
    "cached-processes": ServingConfig(
        max_workers=PROC_WORKERS,
        worker_mode="process",
        lp_batch=max(2, QUERIES // (2 * PROC_WORKERS)),
    ),
}

#: Modes allowed to claim the >= 3x bar against cached-sequential.
PARALLEL_MODES = ("cached-batched", "cached-processes")
SPEEDUP_FLOOR = 3.0


def _gather_queries(scenario_name: str):
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=PACKETS))
    sets = []
    for i in range(QUERIES):
        site = scenario.test_sites[i % len(scenario.test_sites)]
        rng = np.random.default_rng(np.random.SeedSequence([7, i]))
        sets.append(tuple(system.gather_anchors(site, rng)))
    return scenario, sets


def _run_modes(scenario, anchor_sets):
    """Every mode over the same queries, interleaved best-of-``REPS``.

    One long-lived service per mode (that is what's being measured — a
    serving process, warm), with the timed repetitions round-robined
    across modes so scheduler noise is spread evenly.
    """
    services = {}
    elapsed = {}
    try:
        for mode, config in MODES.items():
            svc = LocalizationService(scenario.plan.boundary, config=config)
            services[mode] = svc
            if config.cache_topologies:
                svc.batch(anchor_sets[:2])  # warm the caches out-of-band
            elapsed[mode] = float("inf")
        responses = {}
        for _ in range(REPS):
            for mode, svc in services.items():
                started = time.perf_counter()
                responses[mode] = svc.batch(anchor_sets)
                elapsed[mode] = min(
                    elapsed[mode], time.perf_counter() - started
                )
        out = {}
        for mode, svc in services.items():
            snap = svc.metrics_snapshot()
            out[mode] = {
                "responses": responses[mode],
                "qps": len(anchor_sets) / elapsed[mode],
                "p50_ms": snap["latency_p50_s"] * 1e3,
                "p95_ms": snap["latency_p95_s"] * 1e3,
                "degraded": snap["degraded"],
            }
        return out
    finally:
        for svc in services.values():
            svc.close()


def _serving_comparison():
    results = {}
    for scenario_name in ("lab", "lobby"):
        scenario, anchor_sets = _gather_queries(scenario_name)
        results[scenario_name] = _run_modes(scenario, anchor_sets)
    return results


def test_serving_throughput(benchmark, save_result, save_json):
    results = run_once(benchmark, _serving_comparison)

    rows = []
    for scenario_name, by_mode in results.items():
        cold = by_mode["cold-sequential"]
        seq = by_mode["cached-sequential"]
        for mode, r in by_mode.items():
            # Serving must never silently degrade under benign load.
            assert r["degraded"] == 0, f"{scenario_name}/{mode} degraded"
            # All modes answer bit-identically.
            assert [x.position for x in r["responses"]] == [
                x.position for x in cold["responses"]
            ], f"{scenario_name}/{mode} diverged from cold-sequential"
            rows.append(
                [
                    scenario_name,
                    mode,
                    round(r["qps"], 1),
                    round(r["p50_ms"], 2),
                    round(r["p95_ms"], 2),
                    round(r["qps"] / seq["qps"], 2),
                ]
            )
        # The acceptance bar: at least one GIL-free mode clears 3x the
        # warm sequential path (batched on one core, processes on many).
        best = max(by_mode[m]["qps"] for m in PARALLEL_MODES)
        assert best >= SPEEDUP_FLOOR * seq["qps"], (
            f"{scenario_name}: parallel serving below {SPEEDUP_FLOOR}x "
            f"(sequential {seq['qps']:.1f} q/s, best parallel "
            f"{best:.1f} q/s = {best / seq['qps']:.2f}x)"
        )

    table = format_table(
        ["scenario", "mode", "qps", "p50(ms)", "p95(ms)", "vs-seq"], rows
    )
    save_result("SERVE", table)
    save_json(
        "serving_throughput",
        {
            scenario_name: {
                mode: {
                    "qps": r["qps"],
                    "p50_ms": r["p50_ms"],
                    "p95_ms": r["p95_ms"],
                    "degraded": r["degraded"],
                }
                for mode, r in by_mode.items()
            }
            for scenario_name, by_mode in results.items()
        },
    )
    print()
    print(table)
