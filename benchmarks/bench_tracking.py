"""TRACKING — streaming sessions: fleet scale, determinism, confidence.

Three claims of the ``repro.sessions`` subsystem, benchmarked:

* **Fleet scale** — a single :class:`repro.sessions.SessionManager`
  sustains >= 1000 concurrent tracked objects fed synthetic fix streams,
  and its update throughput stays above a conservative floor.  Two
  identical runs must produce byte-identical event logs (the zone FSMs
  and geofence rules are pure functions of the fix stream).
* **Worker-mode determinism** — a seeded multi-object walk served
  through a real :class:`repro.serving.LocalizationService` produces a
  byte-identical session event log whether the service runs thread or
  process workers: the serving layer's bit-exactness contract carries
  through the whole tracking stack.
* **Confidence pays** — with 20% of fixes replaced by far-off
  zero-confidence positions (guard-flagged corruption), the
  confidence-modulated arm's median track error beats the
  confidence-blind arm on the *same* fix stream.

Results are persisted to ``benchmarks/results/BENCH_tracking.json``
(and ``TRACKING.txt``); the qps floor and both bit flags are gated by
``check_regression.py``.
"""

import time

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import format_table
from repro.geometry import Point
from repro.serving import LocalizationService, ServingConfig
from repro.sessions import SessionConfig, SessionManager, ZoneMap
from repro.tracking import random_trajectory

from conftest import run_once

SEED = 5
PACKETS = 4
FLEET_OBJECTS = 1200
FLEET_TICKS = 20
FLEET_ZONE_GRID = (4, 5)
#: Conservative floor: the session layer must not become the bottleneck
#: of a serving stack whose solve path tops out far below this.
MIN_UPDATES_QPS = 2000.0
SERVICE_OBJECTS = 4
SERVICE_TICKS = 10
SERVICE_ZONE_GRID = (2, 3)
CORRUPTION_RATE = 0.2


# ----------------------------------------------------------------------
# Fleet-scale arm: synthetic fix streams, >= 1000 concurrent objects
# ----------------------------------------------------------------------

def _fleet_fixes(boundary):
    """Seeded bouncing walks for the whole fleet, precomputed.

    Returns ``(fixes[tick, obj, 2], confidence[tick, obj])`` so the
    timed section measures the session layer alone.
    """
    rng = np.random.default_rng(np.random.SeedSequence([SEED, 1]))
    xmin, ymin, xmax, ymax = boundary.bounding_box()
    lo = np.array([xmin + 0.5, ymin + 0.5])
    hi = np.array([xmax - 0.5, ymax - 0.5])
    pos = rng.uniform(lo, hi, size=(FLEET_OBJECTS, 2))
    vel = rng.uniform(-1.0, 1.0, size=(FLEET_OBJECTS, 2))
    fixes = np.empty((FLEET_TICKS, FLEET_OBJECTS, 2))
    for tick in range(FLEET_TICKS):
        fixes[tick] = pos
        pos = pos + vel
        for dim in range(2):
            over = pos[:, dim] > hi[dim]
            under = pos[:, dim] < lo[dim]
            pos[over, dim] = 2 * hi[dim] - pos[over, dim]
            pos[under, dim] = 2 * lo[dim] - pos[under, dim]
            vel[over | under, dim] *= -1.0
    confidence = rng.uniform(0.3, 1.0, size=(FLEET_TICKS, FLEET_OBJECTS))
    return fixes, confidence


def _fleet_run(zones, fixes, confidence):
    """Feed the precomputed fleet once; returns (manager, elapsed_s)."""
    manager = SessionManager(
        zones, SessionConfig(idle_timeout_s=10.0 * FLEET_TICKS)
    )
    object_ids = [f"obj-{i:04d}" for i in range(FLEET_OBJECTS)]
    start = time.perf_counter()
    for tick in range(FLEET_TICKS):
        t_s = float(tick)
        tick_fixes = fixes[tick]
        tick_conf = confidence[tick]
        for i, object_id in enumerate(object_ids):
            manager.observe(
                object_id,
                t_s,
                Point(float(tick_fixes[i, 0]), float(tick_fixes[i, 1])),
                confidence=float(tick_conf[i]),
            )
    elapsed = time.perf_counter() - start
    return manager, elapsed


def _fleet_arm():
    boundary = get_scenario("lab").plan.boundary
    zones = ZoneMap.grid(boundary, *FLEET_ZONE_GRID)
    fixes, confidence = _fleet_fixes(boundary)
    manager, elapsed = _fleet_run(zones, fixes, confidence)
    repeat, _ = _fleet_run(zones, fixes, confidence)
    updates = manager.updates_total
    return {
        "objects": FLEET_OBJECTS,
        "ticks": FLEET_TICKS,
        "concurrent_sessions": len(manager),
        "updates": updates,
        "elapsed_s": round(elapsed, 4),
        "updates_qps": round(updates / elapsed, 1),
        "events": manager.event_log.counts(),
        "repeat_bit_identical": (
            manager.event_log.digest() == repeat.event_log.digest()
        ),
        "event_log_digest": manager.event_log.digest(),
    }


# ----------------------------------------------------------------------
# Service-driven arms: worker-mode determinism + confidence payoff
# ----------------------------------------------------------------------

def _service_fix_stream(worker_mode):
    """Seeded walk served through a real service; per-tick fix rows.

    Returns ``[[(object_id, fix, confidence, truth), ...] per tick]``.
    """
    scenario = get_scenario("lab")
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=PACKETS)
    )
    trajectories = [
        random_trajectory(
            scenario.plan,
            np.random.default_rng(np.random.SeedSequence([SEED, 1000 + i])),
            num_waypoints=4,
        )
        for i in range(SERVICE_OBJECTS)
    ]
    service = LocalizationService(
        scenario.plan.boundary,
        config=ServingConfig(
            max_workers=2, worker_mode=worker_mode, lp_batch=3
        ),
    )
    ticks = []
    try:
        for tick in range(SERVICE_TICKS):
            truths = []
            batch = []
            for i, traj in enumerate(trajectories):
                truth = traj.positions[min(tick, len(traj) - 1)]
                truths.append(truth)
                rng = np.random.default_rng(
                    np.random.SeedSequence([SEED, tick, i])
                )
                batch.append(tuple(system.gather_anchors(truth, rng)))
            responses = service.batch(batch)
            ticks.append(
                [
                    (f"obj-{i}", resp.position, resp.confidence, truths[i])
                    for i, resp in enumerate(responses)
                ]
            )
    finally:
        service.close()
    return ticks


def _session_replay(fix_ticks, modulate=True, corrupt=0.0):
    """Feed one fix stream into a fresh manager; (digest, errors)."""
    boundary = get_scenario("lab").plan.boundary
    zones = ZoneMap.grid(boundary, *SERVICE_ZONE_GRID)
    manager = SessionManager(
        zones, SessionConfig(modulate_noise=modulate)
    )
    errors = []
    for tick, rows in enumerate(fix_ticks):
        for i, (object_id, fix, conf, truth) in enumerate(rows):
            crng = np.random.default_rng(
                np.random.SeedSequence([SEED, 77, tick, i])
            )
            if corrupt and crng.random() < corrupt:
                angle = crng.random() * 2.0 * np.pi
                fix = Point(
                    fix.x + 6.0 * np.cos(angle),
                    fix.y + 6.0 * np.sin(angle),
                )
                conf = 0.0
            update, _ = manager.observe(
                object_id, float(tick), fix, confidence=conf
            )
            errors.append(update.position.distance_to(truth))
    return manager.event_log.digest(), errors


def _median(values):
    return float(np.median(values))


def _tracking_campaign():
    fleet = _fleet_arm()
    thread_fixes = _service_fix_stream("thread")
    process_fixes = _service_fix_stream("process")
    thread_digest, _ = _session_replay(thread_fixes)
    process_digest, _ = _session_replay(process_fixes)
    _, modulated_errors = _session_replay(
        thread_fixes, modulate=True, corrupt=CORRUPTION_RATE
    )
    _, blind_errors = _session_replay(
        thread_fixes, modulate=False, corrupt=CORRUPTION_RATE
    )
    worker_modes = {
        "event_log_bit_identical": thread_digest == process_digest,
        "thread_digest": thread_digest,
        "process_digest": process_digest,
    }
    confidence = {
        "corruption_rate": CORRUPTION_RATE,
        "modulated_median_m": round(_median(modulated_errors), 3),
        "blind_median_m": round(_median(blind_errors), 3),
        "improvement_m": round(
            _median(blind_errors) - _median(modulated_errors), 3
        ),
    }
    return fleet, worker_modes, confidence


def test_tracking_scale_determinism_confidence(
    benchmark, save_result, save_json
):
    fleet, worker_modes, confidence = run_once(benchmark, _tracking_campaign)

    # Invariant (a): fleet scale with a deterministic event log.
    assert fleet["concurrent_sessions"] >= 1000, (
        f"only {fleet['concurrent_sessions']} concurrent sessions"
    )
    assert fleet["repeat_bit_identical"], (
        "identical fleet runs produced different event logs"
    )
    assert fleet["updates_qps"] >= MIN_UPDATES_QPS, (
        f"session layer too slow: {fleet['updates_qps']:.0f} updates/s "
        f"< floor {MIN_UPDATES_QPS:.0f}"
    )

    # Invariant (b): worker mode never leaks into the event log.
    assert worker_modes["event_log_bit_identical"], (
        "thread vs process serving workers diverged: "
        f"{worker_modes['thread_digest'][:16]} != "
        f"{worker_modes['process_digest'][:16]}"
    )

    # Invariant (c): confidence modulation pays under corruption.
    assert confidence["modulated_median_m"] < confidence["blind_median_m"], (
        f"modulated median {confidence['modulated_median_m']} m not "
        f"better than blind {confidence['blind_median_m']} m at "
        f"{CORRUPTION_RATE:.0%} corruption"
    )

    rows = [
        [
            "fleet",
            fleet["concurrent_sessions"],
            fleet["updates"],
            f"{fleet['updates_qps']:.0f}/s",
            "repeat bit-identical",
        ],
        [
            "worker modes",
            SERVICE_OBJECTS,
            SERVICE_OBJECTS * SERVICE_TICKS,
            "-",
            "thread == process (byte-identical log)",
        ],
        [
            "confidence",
            SERVICE_OBJECTS,
            SERVICE_OBJECTS * SERVICE_TICKS,
            "-",
            f"median {confidence['modulated_median_m']:.2f} m vs "
            f"{confidence['blind_median_m']:.2f} m blind "
            f"at {CORRUPTION_RATE:.0%} corruption",
        ],
    ]
    table = format_table(
        ["arm", "objects", "updates", "throughput", "notes"], rows
    )
    save_result("TRACKING", table)
    save_json(
        "tracking",
        {
            "fleet": fleet,
            "worker_modes": worker_modes,
            "confidence_drill": confidence,
        },
    )
    print()
    print(table)
