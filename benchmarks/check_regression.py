#!/usr/bin/env python
"""CI bench-regression gate: diff fresh ``BENCH_*.json`` against baselines.

The bench suite writes machine-readable ledgers to
``benchmarks/results/BENCH_<id>.json`` (see ``conftest.write_bench_json``),
and those files are committed — they *are* the performance baseline.  A CI
run re-executes the benches (overwriting the working tree copies) and then
runs this script, which compares every fresh ledger against the committed
one and fails the job when:

* a throughput metric (``qps``-keyed leaf) dropped more than
  ``--threshold`` (default 20%);
* a median-latency metric (``p50``-keyed leaf) rose more than
  ``--threshold``, beyond an absolute ``--p50-grace-ms`` slack that keeps
  micro-latencies (a 2 ms p50 jittering to 2.5 ms) from flaking the gate;
* a bit-exactness flag (``bit_exact`` / ``bit_identical`` style boolean
  leaf) that was true in the baseline is false in the fresh run — this is
  never tolerated, at any threshold.

Baselines come from ``git show <ref>:<path>`` by default (``--baseline-ref
HEAD``: the committed ledger of the checked-out commit) or from a plain
directory (``--baseline-dir``) when diffing two run outputs.  Metrics
present only on one side are reported but never fail the gate — new
benches and retired modes must not require lockstep commits.

Exit codes: 0 pass, 1 regression found, 2 no comparable baselines.

Usage::

    python benchmarks/check_regression.py                 # gate vs HEAD
    python benchmarks/check_regression.py --threshold 0.3
    python benchmarks/check_regression.py --baseline-dir /tmp/prev-results
    python benchmarks/check_regression.py --markdown summary.md
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Substrings classifying a numeric leaf key. Throughput is
#: higher-is-better, median latency lower-is-better; everything else is
#: informational and never gated (p95/p99 tails are too noisy to gate).
_THROUGHPUT_MARKERS = ("qps",)
_LATENCY_MARKERS = ("p50",)
_BIT_MARKERS = ("bit_exact", "bit_identical")


def walk_leaves(node, prefix=""):
    """Yield ``(dotted.path, value)`` for every scalar leaf of a ledger."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from walk_leaves(node[key], f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, (list, tuple)):
        for i, item in enumerate(node):
            yield from walk_leaves(item, f"{prefix}[{i}]")
    else:
        yield prefix, node


def classify(path: str) -> str | None:
    """``"qps"``, ``"p50"``, ``"bit"`` or None for an ungated leaf."""
    leaf = path.rsplit(".", 1)[-1].lower()
    if any(m in leaf for m in _BIT_MARKERS):
        return "bit"
    if any(m in leaf for m in _THROUGHPUT_MARKERS):
        return "qps"
    if any(m in leaf for m in _LATENCY_MARKERS):
        return "p50"
    return None


def load_baseline_git(ref: str, fresh_path: pathlib.Path) -> dict | None:
    """The committed ledger at ``ref`` for one fresh results file."""
    top = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
        cwd=fresh_path.parent,
    ).stdout.strip()
    rel = fresh_path.resolve().relative_to(pathlib.Path(top))
    shown = subprocess.run(
        ["git", "show", f"{ref}:{rel.as_posix()}"],
        capture_output=True,
        text=True,
        cwd=top,
    )
    if shown.returncode != 0:  # new bench: no baseline yet
        return None
    return json.loads(shown.stdout)


def compare(
    bench_id: str,
    baseline: dict,
    fresh: dict,
    threshold: float,
    p50_grace_ms: float,
):
    """``(violations, notes, rows)`` for one ledger pair."""
    base_leaves = dict(walk_leaves(baseline.get("results", {})))
    fresh_leaves = dict(walk_leaves(fresh.get("results", {})))
    violations, notes, rows = [], [], []
    for path in sorted(base_leaves.keys() | fresh_leaves.keys()):
        kind = classify(path)
        if kind is None:
            continue
        if path not in fresh_leaves:
            notes.append(f"{bench_id}: {path} gone from fresh run (ungated)")
            continue
        if path not in base_leaves:
            notes.append(f"{bench_id}: {path} has no baseline yet (ungated)")
            continue
        base, new = base_leaves[path], fresh_leaves[path]
        if kind == "bit":
            rows.append((bench_id, path, base, new, "ok" if new else "FAIL"))
            if base and not new:
                violations.append(
                    f"{bench_id}: {path} lost bit-exactness "
                    f"(baseline {base!r} -> fresh {new!r})"
                )
            continue
        if not isinstance(base, (int, float)) or not isinstance(
            new, (int, float)
        ):
            continue
        if kind == "qps":
            floor = base * (1.0 - threshold)
            verdict = "ok" if new >= floor else "FAIL"
            if verdict == "FAIL":
                violations.append(
                    f"{bench_id}: {path} dropped "
                    f"{(1 - new / base) * 100:.1f}% "
                    f"({base:.1f} -> {new:.1f}, floor {floor:.1f})"
                )
        else:  # p50: lower is better, with absolute grace for micro-latencies
            ceiling = base * (1.0 + threshold) + p50_grace_ms
            verdict = "ok" if new <= ceiling else "FAIL"
            if verdict == "FAIL":
                violations.append(
                    f"{bench_id}: {path} rose "
                    f"{(new / base - 1) * 100:.1f}% "
                    f"({base:.2f} -> {new:.2f}, ceiling {ceiling:.2f})"
                )
        rows.append((bench_id, path, round(base, 3), round(new, 3), verdict))
    return violations, notes, rows


def render_markdown(rows, violations, notes, threshold) -> str:
    """A summary table for CI artifacts / job summaries."""
    lines = [
        "# Bench regression report",
        "",
        f"Gate: qps -{threshold:.0%} / p50 +{threshold:.0%}; "
        "bit-exactness must hold.",
        "",
        "| bench | metric | baseline | fresh | verdict |",
        "|---|---|---:|---:|---|",
    ]
    for bench_id, path, base, new, verdict in rows:
        mark = "✅" if verdict == "ok" else "❌"
        lines.append(f"| {bench_id} | `{path}` | {base} | {new} | {mark} |")
    if violations:
        lines += ["", "## Regressions", ""]
        lines += [f"- {v}" for v in violations]
    if notes:
        lines += ["", "## Notes", ""]
        lines += [f"- {n}" for n in notes]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when a fresh bench ledger regresses vs baseline."
    )
    parser.add_argument(
        "bench_ids",
        nargs="*",
        help="ledger ids to gate (default: every BENCH_*.json present)",
    )
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref providing the committed baselines (default HEAD)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=None,
        help="read baselines from this directory instead of git",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--p50-grace-ms",
        type=float,
        default=1.0,
        help="absolute p50 slack in ms on top of the threshold",
    )
    parser.add_argument(
        "--markdown",
        type=pathlib.Path,
        default=None,
        help="also write a markdown summary to this path",
    )
    args = parser.parse_args(argv)

    fresh_paths = sorted(args.results_dir.glob("BENCH_*.json"))
    if args.bench_ids:
        wanted = {f"BENCH_{b}.json" for b in args.bench_ids}
        fresh_paths = [p for p in fresh_paths if p.name in wanted]
        missing = wanted - {p.name for p in fresh_paths}
        if missing:
            print(f"error: no fresh ledger for {sorted(missing)}")
            return 2

    all_violations, all_notes, all_rows = [], [], []
    compared = 0
    for fresh_path in fresh_paths:
        fresh = json.loads(fresh_path.read_text())
        if args.baseline_dir is not None:
            base_path = args.baseline_dir / fresh_path.name
            baseline = (
                json.loads(base_path.read_text())
                if base_path.exists()
                else None
            )
        else:
            baseline = load_baseline_git(args.baseline_ref, fresh_path)
        bench_id = fresh.get("bench_id", fresh_path.stem)
        if baseline is None:
            all_notes.append(f"{bench_id}: no baseline (new bench, ungated)")
            continue
        compared += 1
        violations, notes, rows = compare(
            bench_id, baseline, fresh, args.threshold, args.p50_grace_ms
        )
        all_violations += violations
        all_notes += notes
        all_rows += rows

    for row in all_rows:
        print("{:<22} {:<55} base={:<12} fresh={:<12} {}".format(*row))
    for note in all_notes:
        print(f"note: {note}")
    if args.markdown is not None:
        args.markdown.write_text(
            render_markdown(all_rows, all_violations, all_notes, args.threshold)
        )
        print(f"markdown summary -> {args.markdown}")

    if not compared:
        print("error: no ledgers with baselines to compare")
        return 2
    if all_violations:
        print(f"\nREGRESSIONS ({len(all_violations)}):")
        for violation in all_violations:
            print(f"  {violation}")
        return 1
    gated = sum(1 for r in all_rows if r[4] == "ok")
    print(f"\nOK: {gated} gated metrics across {compared} ledgers, no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
