"""Shared helpers for the benchmark harness.

Each ``bench_*`` module reproduces one figure/table of the paper (see
DESIGN.md's experiment index): it times the experiment via
pytest-benchmark, asserts the paper's qualitative *shape*, and persists the
rendered rows/series under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist one experiment's formatted output as results/<id>.txt."""

    def _save(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiments are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
