"""Shared helpers for the benchmark harness.

Each ``bench_*`` module reproduces one figure/table of the paper (see
DESIGN.md's experiment index): it times the experiment via
pytest-benchmark, asserts the paper's qualitative *shape*, and persists the
rendered rows/series under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist one experiment's formatted output as results/<id>.txt."""

    def _save(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")

    return _save


def write_bench_json(
    results_dir: pathlib.Path, bench_id: str, payload: dict
) -> pathlib.Path:
    """Write one benchmark's machine-readable ledger entry.

    Produces ``results/BENCH_<id>.json`` with the benchmark's metrics under
    ``"results"`` plus enough environment context (python, platform,
    timestamp) to compare entries across runs — the JSON twin of the
    human-readable ``results/<id>.txt`` tables.
    """
    path = results_dir / f"BENCH_{bench_id}.json"
    record = {
        "bench_id": bench_id,
        "unix_time_s": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "results": payload,
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def save_json(results_dir):
    """Persist one benchmark's metrics as results/BENCH_<id>.json."""

    def _save(bench_id: str, payload: dict) -> pathlib.Path:
        return write_bench_json(results_dir, bench_id, payload)

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiments are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
