#!/usr/bin/env python3
"""Live system: the full Fig. 2 data path in a discrete-event simulation.

Where the other examples call the localization API directly, this one
runs the *system*: an object pings every millisecond, APs batch CSI
measurements and export them over a lossy, laggy network, the nomadic AP
walks its sites in real time, and the server aggregates everything into a
location fix.

Usage:  python examples/live_system.py
"""


from repro.environment import get_scenario
from repro.net import NetworkConfig, NomadicAPNode, NomLocNetwork


def main() -> None:
    scenario = get_scenario("lab")
    target = scenario.test_sites[4]
    config = NetworkConfig(
        ping_interval_s=1e-3,   # "sends PING message in millisecond"
        batch_size=20,
        report_latency_s=5e-3,
        packet_loss=0.03,
        dwell_time_s=0.25,      # the guard lingers 250 ms per site
    )
    network = NomLocNetwork(scenario, target, config, seed=11)

    print(f"Object at ({target.x:.1f}, {target.y:.1f}); "
          f"running 2.0 s of virtual time...\n")
    fix = network.run(duration_s=2.0)

    print("Data-path statistics:")
    print(f"  probes sent by object:   {network.object.probes_sent}")
    for ap in network.aps:
        kind = "nomadic" if isinstance(ap, NomadicAPNode) else "static "
        extra = (f", moved {ap.moves}x" if isinstance(ap, NomadicAPNode) else "")
        print(f"  {ap.name} [{kind}]: heard {ap.probes_heard}, "
              f"lost {ap.probes_lost}{extra}")
    print(f"  CSI reports at server:   {len(network.server.reports)}")
    print(f"  distinct AP/site groups: {network.server.distinct_sources()}")
    print(f"  events processed:        {network.sim.events_processed}")

    error = fix.position.distance_to(target)
    print(f"\nServer fix at t={fix.produced_at:.3f}s: "
          f"({fix.position.x:.2f}, {fix.position.y:.2f})  "
          f"error = {error:.2f} m  "
          f"(relaxation cost {fix.relaxation_cost:.3f})")


if __name__ == "__main__":
    main()
