#!/usr/bin/env python3
"""Visualizing spatial localizability variance — the paper's Fig. 1, live.

Samples the localization error over a dense grid of the Lab under the
static and the nomadic deployments, and renders both as ASCII heatmaps on
a shared scale.  The static map shows the "blind" high-error pockets the
paper motivates with; the nomadic map shows them washed out.

Usage:  python examples/localizability_map.py
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.viz import render_heatmap


def main() -> None:
    scenario = get_scenario("lab")
    fast = SystemConfig(packets_per_link=8, trace_steps=10)
    systems = {
        "static": NomLocSystem(
            scenario, SystemConfig(packets_per_link=8, use_nomadic=False)
        ),
        "nomadic": NomLocSystem(scenario, fast),
    }

    def error_fn(system):
        def sample(p):
            errs = [
                system.localization_error(
                    p,
                    np.random.default_rng(
                        hash((round(p.x, 2), round(p.y, 2), r)) % 2**32
                    ),
                )
                for r in range(2)
            ]
            return float(np.mean(errs))

        return sample

    print("Sampling localization error over a 1 m grid "
          "(a few hundred queries per map)...\n")
    maps = {}
    for label, system in systems.items():
        maps[label] = render_heatmap(
            scenario.plan,
            error_fn(system),
            grid_spacing_m=1.0,
            width=60,
            vmin=0.0,
            vmax=4.0,
        )

    for label in ("static", "nomadic"):
        hm = maps[label]
        values = np.array(hm.values)
        print(f"=== {label} deployment ===")
        print(hm.text)
        print(hm.legend())
        print(f"mean error {values.mean():.2f} m, "
              f"worst cell {values.max():.2f} m, "
              f"SLV {values.var():.2f}\n")

    print("Dense darker pockets in the static map are the 'blind areas' "
          "of the paper's\nFig. 1; the nomadic AP's extra partition "
          "constraints flatten them.")


if __name__ == "__main__":
    main()
