#!/usr/bin/env python3
"""Planning where the nomadic AP should go — and in what order.

Given the Lobby's fixed APs, pick measurement sites that best refine the
space partition (greedy, geometric objective), plan a short patrol route
over them, and verify end-to-end that the planned walk localizes well.

Usage:  python examples/plan_patrol_route.py
"""

from dataclasses import replace


from repro.core import NomLocSystem
from repro.environment import APSpec, get_scenario
from repro.eval import run_campaign
from repro.planning import plan_tour, select_sites
from repro.viz import render_floorplan


def main() -> None:
    scenario = get_scenario("lobby")
    nomadic = scenario.nomadic_aps[0]
    print(f"Venue: {scenario.name}; static APs: "
          f"{[ap.name for ap in scenario.static_aps]}; "
          f"{nomadic.name} is nomadic\n")

    plan = select_sites(scenario, 3, grid_spacing_m=1.5)
    print("Greedy site selection (geometric partition objective):")
    for i, site in enumerate(plan.sites, start=1):
        print(f"  site {i}: ({site.x:.1f}, {site.y:.1f})")
    print(f"Predicted partition error: "
          f"{plan.baseline_quality.mean_error_m:.2f} m -> "
          f"{plan.quality.mean_error_m:.2f} m "
          f"({plan.improvement() * 100:.0f}% better); "
          f"cells {plan.baseline_quality.num_cells} -> "
          f"{plan.quality.num_cells}\n")

    all_sites = [nomadic.position] + list(plan.sites)
    tour = plan_tour(all_sites, start=0, closed=True)
    print(f"Patrol route ({tour.length_m():.1f} m loop): "
          + " -> ".join(
              f"({s.x:.1f},{s.y:.1f})" for s in tour.ordered_sites()
          ))

    # Validate end-to-end with the real system.
    planned_scenario = replace(
        scenario,
        aps=tuple(
            APSpec(ap.name, ap.position, nomadic=True, sites=tuple(all_sites))
            if ap.name == nomadic.name
            else ap
            for ap in scenario.aps
        ),
    )
    result = run_campaign(
        NomLocSystem(planned_scenario),
        planned_scenario.test_sites,
        repetitions=2,
        seed=1,
    )
    print(f"\nEnd-to-end with planned sites: mean error "
          f"{result.stats.mean:.2f} m, p90 {result.stats.p90:.2f} m, "
          f"SLV {result.stats.slv:.2f}")

    print("\nMap (S = planned sites, numbers = static APs):")
    print(
        render_floorplan(
            scenario.plan,
            width=76,
            markers={"S": list(plan.sites), ".": list(scenario.test_sites)},
            labels={ap.name: ap.position for ap in scenario.aps},
        )
    )


if __name__ == "__main__":
    main()
