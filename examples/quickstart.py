#!/usr/bin/env python3
"""Quickstart: localize an object in the Lab with and without AP mobility.

Runs one NomLoc localization query end-to-end — simulate the CSI the APs
measure, extract per-link PDPs, space-partition with the nomadic AP's
constraints — and contrasts it against the static deployment.

Usage:  python examples/quickstart.py
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario


def main() -> None:
    scenario = get_scenario("lab")
    print(f"Scenario: {scenario.name} "
          f"({scenario.plan.boundary.area():.0f} m^2, "
          f"{len(scenario.aps)} APs, nomadic: "
          f"{[ap.name for ap in scenario.nomadic_aps]})")

    # The object stands at a known position (we only use it to score the
    # estimate; the system never sees it).
    truth = scenario.test_sites[0]
    print(f"Object truly at ({truth.x:.1f}, {truth.y:.1f})\n")

    nomadic = NomLocSystem(scenario)
    static = NomLocSystem(scenario, SystemConfig(use_nomadic=False))

    rng = np.random.default_rng(42)
    anchors = nomadic.gather_anchors(truth, rng)
    print("Anchors the server heard from (name, reported position, PDP):")
    for a in anchors:
        tag = "nomadic" if a.nomadic else "static"
        print(f"  {a.name:8s} ({a.position.x:5.1f}, {a.position.y:5.1f})  "
              f"pdp={a.pdp:.2e}  [{tag}]")

    estimate = nomadic.locate_from_anchors(anchors)
    static_estimate = static.locate(truth, np.random.default_rng(42))

    print(f"\nNomLoc estimate:  ({estimate.position.x:.2f}, "
          f"{estimate.position.y:.2f})  "
          f"error = {estimate.error_to(truth):.2f} m  "
          f"(constraints: {estimate.num_constraints}, "
          f"relaxation cost: {estimate.relaxation_cost:.3f})")
    print(f"Static estimate:  ({static_estimate.position.x:.2f}, "
          f"{static_estimate.position.y:.2f})  "
          f"error = {static_estimate.error_to(truth):.2f} m")
    if estimate.region is not None:
        print(f"Feasible region area: {estimate.region.area():.2f} m^2")


if __name__ == "__main__":
    main()
