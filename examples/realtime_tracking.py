#!/usr/bin/env python3
"""Real-time tracking of a walker through the full event-driven data path.

Combines everything: a target *walking* through the Lab while pinging, APs
batching CSI over a lossy network, the server producing windowed fixes in
real time, and a Kalman filter smoothing the fix stream — all in one
discrete-event simulation.

Usage:  python examples/realtime_tracking.py
"""

from repro.environment import get_scenario
from repro.geometry import Point
from repro.net import NetworkConfig, NomLocNetwork
from repro.tracking import KalmanConfig, KalmanTracker, waypoint_trajectory
from repro.viz import render_floorplan


def main() -> None:
    scenario = get_scenario("lab")
    trajectory = waypoint_trajectory(
        [Point(1.5, 1.5), Point(9.2, 1.6), Point(10.8, 4.2), Point(6.5, 4.3),
         Point(2.0, 4.2), Point(1.8, 6.6)],
        speed_mps=1.0,
        sample_interval_s=0.5,
    )
    config = NetworkConfig(
        ping_interval_s=0.02,   # 50 probes/s
        batch_size=5,
        report_latency_s=5e-3,
        packet_loss=0.03,
        dwell_time_s=0.8,
    )
    network = NomLocNetwork(scenario, scenario.test_sites[0], config, seed=5)
    walker = network.add_moving_object(trajectory, "walker")

    print(f"Walker: {trajectory.length_m():.1f} m over "
          f"{trajectory.duration_s:.1f} s; fixes every 1 s from a 1.5 s "
          "measurement window\n")

    fixes = network.run_streaming(
        duration_s=trajectory.duration_s,
        fix_interval_s=1.0,
        window_s=1.5,
        object_id="walker",
    )

    kalman = KalmanTracker(KalmanConfig(measurement_sigma_m=2.0))
    print(f"{'t(s)':>5s}  {'truth':>13s}  {'server fix':>13s}  "
          f"{'kalman':>13s}  {'fix err':>7s}  {'kf err':>7s}")
    prev_t = None
    fix_errs, kf_errs = [], []
    for fix in fixes:
        truth = walker.position_at(fix.produced_at)
        dt = 0.0 if prev_t is None else fix.produced_at - prev_t
        smoothed = kalman.step(dt, fix.position)
        prev_t = fix.produced_at
        fe = fix.position.distance_to(truth)
        ke = smoothed.distance_to(truth)
        fix_errs.append(fe)
        kf_errs.append(ke)
        print(f"{fix.produced_at:5.2f}  ({truth.x:5.2f},{truth.y:5.2f})  "
              f"({fix.position.x:5.2f},{fix.position.y:5.2f})  "
              f"({smoothed.x:5.2f},{smoothed.y:5.2f})  "
              f"{fe:5.2f} m  {ke:5.2f} m")

    mean_fix = sum(fix_errs) / len(fix_errs)
    mean_kf = sum(kf_errs) / len(kf_errs)
    print(f"\nMean error: raw windowed fixes {mean_fix:.2f} m, "
          f"Kalman-smoothed {mean_kf:.2f} m")
    print(f"Probes sent: {walker.probes_sent}; server reports: "
          f"{len(network.server.reports)}")

    print("\nMap (t = truth, f = server fixes):")
    print(render_floorplan(
        scenario.plan,
        width=72,
        markers={
            "t": list(trajectory.positions),
            "f": [f.position for f in fixes],
        },
    ))


if __name__ == "__main__":
    main()
