#!/usr/bin/env python3
"""Retail analytics: how localizability variance distorts footfall stats.

The paper's Sec. I marketplace motivation: "merchants seek for the best
locations to advertise ... the statistic data can be misleading or even
crash profits due to spatial localizability variance."

This example places simulated customers across the Lab, localizes every
visit with the static and the nomadic deployment, bins the estimates into
store zones, and compares each zone's *measured* footfall share against
ground truth.  High-SLV deployments systematically misattribute visits.

Usage:  python examples/retail_analytics.py
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.geometry import Point

ZONES = {
    "entrance (SW)": (0.0, 0.0, 6.0, 4.0),
    "electronics (SE)": (6.0, 0.0, 12.0, 4.0),
    "apparel (NW)": (0.0, 4.0, 6.0, 8.0),
    "grocery (NE)": (6.0, 4.0, 12.0, 8.0),
}


def zone_of(p: Point) -> str:
    for name, (x0, y0, x1, y1) in ZONES.items():
        if x0 <= p.x < x1 and y0 <= p.y < y1:
            return name
    return min(
        ZONES,
        key=lambda n: abs(p.x - (ZONES[n][0] + ZONES[n][2]) / 2)
        + abs(p.y - (ZONES[n][1] + ZONES[n][3]) / 2),
    )


def main() -> None:
    scenario = get_scenario("lab")
    rng = np.random.default_rng(2026)
    # Ground truth: customers dwell mostly near the entrance and grocery.
    weights = {"entrance (SW)": 0.4, "electronics (SE)": 0.1,
               "apparel (NW)": 0.15, "grocery (NE)": 0.35}
    customers = []
    for name, w in weights.items():
        x0, y0, x1, y1 = ZONES[name]
        count = int(80 * w)
        for _ in range(count):
            for _ in range(100):
                p = Point(float(rng.uniform(x0 + 0.4, x1 - 0.4)),
                          float(rng.uniform(y0 + 0.4, y1 - 0.4)))
                if not any(o.polygon.contains(p, boundary=False)
                           for o in scenario.plan.obstacles):
                    customers.append(p)
                    break

    systems = {
        "static": NomLocSystem(scenario, SystemConfig(
            use_nomadic=False, packets_per_link=12)),
        "nomadic": NomLocSystem(scenario, SystemConfig(packets_per_link=12)),
    }

    true_counts = {z: 0 for z in ZONES}
    for c in customers:
        true_counts[zone_of(c)] += 1

    measured = {}
    mean_err = {}
    for label, system in systems.items():
        counts = {z: 0 for z in ZONES}
        errors = []
        for idx, customer in enumerate(customers):
            q_rng = np.random.default_rng(np.random.SeedSequence([7, idx]))
            est = system.locate(customer, q_rng)
            errors.append(est.error_to(customer))
            counts[zone_of(est.position)] += 1
        measured[label] = counts
        mean_err[label] = float(np.mean(errors))

    total = len(customers)
    print(f"{total} customer visits, footfall share per zone:\n")
    print(f"{'zone':>18s}  {'truth':>6s}  {'static':>7s}  {'nomadic':>7s}")
    for z in ZONES:
        print(f"{z:>18s}  {true_counts[z]/total:6.1%}  "
              f"{measured['static'][z]/total:7.1%}  "
              f"{measured['nomadic'][z]/total:7.1%}")

    def distortion(counts):
        return sum(abs(counts[z] - true_counts[z]) for z in ZONES) / total

    print(f"\nTotal footfall misattribution: "
          f"static={distortion(measured['static']):.1%}, "
          f"nomadic={distortion(measured['nomadic']):.1%}")
    print(f"Mean localization error:       "
          f"static={mean_err['static']:.2f} m, "
          f"nomadic={mean_err['nomadic']:.2f} m")
    print("\nBoth deployments misattribute visits near zone borders, but "
          "the nomadic deployment\nlocalizes each visit "
          f"{mean_err['static'] - mean_err['nomadic']:.1f} m more "
          "accurately on average - the raw position\nstream a merchant "
          "would mine for dwell analysis is substantially cleaner.")


if __name__ == "__main__":
    main()
