#!/usr/bin/env python3
"""Security patrol: eliminating localization blind spots with a patrol AP.

The paper's Sec. I motivation: "Secure inspectors need to monitor every
place of the region ... spatial localizability variance will result in
miss detection at a blind area where the suspect can slip in."

This example localizes an intruder standing at every test site of the
L-shaped Lobby under (a) the fixed AP deployment and (b) a guard carrying
a nomadic AP on a patrol beat, and reports the blind spots (sites whose
mean error exceeds an alarm-resolution threshold).

Usage:  python examples/security_patrol.py
"""


from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.eval import run_campaign, slv
from repro.extensions import PatternBoundLocalizer
from repro.mobility import PatrolPattern

ALARM_RESOLUTION_M = 5.0  # a guard can check a 5 m radius quickly


def main() -> None:
    scenario = get_scenario("lobby")
    print(f"Venue: {scenario.name} ({scenario.plan.boundary.area():.0f} m^2)")
    print(f"Alarm resolution: {ALARM_RESOLUTION_M} m\n")

    static = NomLocSystem(scenario, SystemConfig(use_nomadic=False))
    num_sites = len(scenario.nomadic_aps[0].sites)
    patrol = PatternBoundLocalizer(
        NomLocSystem(scenario), PatrolPattern(num_sites)
    )

    static_run = run_campaign(
        static, scenario.test_sites, repetitions=3, seed=7, name="static"
    )
    patrol_run = run_campaign(
        patrol, scenario.test_sites, repetitions=3, seed=7, name="patrol"
    )

    print(f"{'site':>14s}  {'static err':>10s}  {'patrol err':>10s}")
    blind_static = blind_patrol = 0
    for s_res, p_res in zip(static_run.sites, patrol_run.sites):
        site = s_res.site
        s_blind = s_res.mean_error > ALARM_RESOLUTION_M
        p_blind = p_res.mean_error > ALARM_RESOLUTION_M
        blind_static += s_blind
        blind_patrol += p_blind
        flag_s = " BLIND" if s_blind else ""
        flag_p = " BLIND" if p_blind else ""
        print(f"({site.x:5.1f},{site.y:5.1f})  "
              f"{s_res.mean_error:8.2f} m{flag_s:6s}  "
              f"{p_res.mean_error:8.2f} m{flag_p}")

    print(f"\nBlind spots:     static={blind_static}, "
          f"patrol={blind_patrol} (of {len(scenario.test_sites)} sites)")
    print(f"Mean error:      static={static_run.stats.mean:.2f} m, "
          f"patrol={patrol_run.stats.mean:.2f} m")
    print(f"SLV (Eq. 22):    static={slv(static_run.per_site_means()):.2f}, "
          f"patrol={slv(patrol_run.per_site_means()):.2f}")
    print("\nThe patrol AP removes the blind areas the fixed deployment "
          "leaves in the far arm of the L.")


if __name__ == "__main__":
    main()
