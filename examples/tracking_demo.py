#!/usr/bin/env python3
"""Tracking a walking target with NomLoc fixes and a particle filter.

The paper localizes stationary objects; real location-based services track
people on the move.  This example walks a target through the Lab at
typical pace, localizes every second with NomLoc, filters the fix stream
with a venue-aware particle filter, and renders the tracks on an ASCII
floor plan.

Usage:  python examples/tracking_demo.py
"""

import numpy as np

from repro.core import NomLocSystem, SystemConfig
from repro.environment import get_scenario
from repro.geometry import Point
from repro.tracking import NomLocTracker, waypoint_trajectory
from repro.viz import render_floorplan


def main() -> None:
    scenario = get_scenario("lab")
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=12, trace_steps=10)
    )
    tracker = NomLocTracker(system)

    # A worker walks around the desk rows.
    trajectory = waypoint_trajectory(
        [
            Point(1.2, 1.2),
            Point(9.2, 1.6),
            Point(10.9, 4.3),
            Point(6.8, 4.3),
            Point(1.6, 4.2),
            Point(1.6, 6.8),
            Point(6.0, 6.6),
        ],
        speed_mps=1.2,
        sample_interval_s=1.0,
    )
    print(f"Trajectory: {trajectory.length_m():.1f} m over "
          f"{trajectory.duration_s:.0f} s ({len(trajectory)} samples)\n")

    rng = np.random.default_rng(17)
    result = tracker.track(trajectory, rng)

    print(f"{'t(s)':>5s}  {'truth':>13s}  {'raw fix':>13s}  "
          f"{'filtered':>13s}  {'raw err':>8s}  {'filt err':>8s}")
    for (t, truth), raw, filt in zip(
        trajectory, result.raw_fixes, result.filtered
    ):
        print(f"{t:5.1f}  ({truth.x:5.2f},{truth.y:5.2f})  "
              f"({raw.x:5.2f},{raw.y:5.2f})  "
              f"({filt.x:5.2f},{filt.y:5.2f})  "
              f"{raw.distance_to(truth):6.2f} m  "
              f"{filt.distance_to(truth):6.2f} m")

    print(f"\nRMSE: raw fixes {result.raw_rmse:.2f} m, "
          f"filtered {result.filtered_rmse:.2f} m "
          f"({result.improvement() * 100:.0f}% improvement)")

    print("\nFloor plan (t = truth path, e = filtered track):")
    print(
        render_floorplan(
            scenario.plan,
            width=72,
            markers={
                "t": list(trajectory.positions),
                "e": list(result.filtered),
            },
        )
    )


if __name__ == "__main__":
    main()
