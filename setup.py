"""Setup shim.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` (which builds a wheel for modern editable installs)
cannot run.  ``python setup.py develop`` performs the equivalent editable
install using only the locally available setuptools.
"""

from setuptools import setup

setup()
