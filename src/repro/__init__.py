"""repro — reproduction of NomLoc (ICDCS 2014).

Calibration-free indoor localization with nomadic access points, built on
a simulated 802.11n CSI substrate.

The most common entry points are re-exported here::

    from repro import NomLocSystem, get_scenario

    system = NomLocSystem(get_scenario("lab"))

Subpackages: :mod:`repro.geometry`, :mod:`repro.optimize`,
:mod:`repro.channel`, :mod:`repro.environment`, :mod:`repro.mobility`,
:mod:`repro.core`, :mod:`repro.baselines`, :mod:`repro.net`,
:mod:`repro.eval`, :mod:`repro.serving`, :mod:`repro.cluster`,
:mod:`repro.gateway`, :mod:`repro.guard`, :mod:`repro.tracking`,
:mod:`repro.sessions`, :mod:`repro.extensions`.
"""

from .core import (
    LocalizerConfig,
    LocationEstimate,
    NomLocLocalizer,
    NomLocSystem,
    SystemConfig,
)
from .environment import Scenario, get_scenario
from .geometry import Point, Polygon

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Point",
    "Polygon",
    "Scenario",
    "get_scenario",
    "NomLocSystem",
    "NomLocLocalizer",
    "SystemConfig",
    "LocalizerConfig",
    "LocationEstimate",
]
