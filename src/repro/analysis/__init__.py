"""Measurement-property analysis: temporal stability, frequency diversity."""

from .csi_properties import (
    LinkPropertyReport,
    analyze_link,
    frequency_selectivity,
    rms_delay_spread_s,
    temporal_stability,
)

__all__ = [
    "temporal_stability",
    "frequency_selectivity",
    "rms_delay_spread_s",
    "LinkPropertyReport",
    "analyze_link",
]
