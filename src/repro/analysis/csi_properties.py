"""Quantifying the CSI properties the paper's design rests on.

Sec. IV-A justifies PDP on CSI "due to its favorable temporal stability
and frequency diversity properties".  This module measures both, plus the
classic RMS delay spread, so the claims can be checked numerically on any
simulated (or recorded) link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..channel import CSIMeasurement
from ..core.pdp import estimate_first_tap, estimate_pdp, estimate_rss

__all__ = [
    "temporal_stability",
    "frequency_selectivity",
    "rms_delay_spread_s",
    "LinkPropertyReport",
    "analyze_link",
]


def temporal_stability(
    measurements: Sequence[CSIMeasurement],
    metric: Callable[[Sequence[CSIMeasurement]], float],
) -> float:
    """Coefficient of variation of a per-packet metric (lower = stabler).

    ``metric`` is evaluated on each snapshot individually; the result is
    ``std / mean`` across packets.  The paper's stability claim predicts
    the PDP's CV to be well below the coarse RSSI's.
    """
    if len(measurements) < 2:
        raise ValueError("need at least two snapshots to measure stability")
    values = np.array([metric([m]) for m in measurements])
    mean = float(values.mean())
    if mean <= 0:
        raise ValueError("metric must be positive on these measurements")
    return float(values.std() / mean)


def frequency_selectivity(measurement: CSIMeasurement) -> float:
    """Per-snapshot frequency diversity: CV of |H| across subcarriers.

    0 for a flat (single-path) channel; grows with resolvable multipath.
    This is the diversity CSI exposes and a scalar RSSI throws away.
    """
    mags = np.abs(measurement.csi)
    mean = float(mags.mean())
    if mean <= 0:
        raise ValueError("measurement has no energy")
    return float(mags.std() / mean)


def rms_delay_spread_s(
    measurement: CSIMeasurement, threshold_db: float = 20.0
) -> float:
    """RMS delay spread of the snapshot's power delay profile.

    The second central moment of the tap-power distribution over delay —
    the standard scalar for multipath richness.  Standard channel-sounding
    hygiene is applied: the occupied band is Hann-windowed before the
    IFFT (the rectangular guard-band edge otherwise leaks -17 dB
    sidelobes across every tap), only the causal half of the tap grid is
    used, and taps more than ``threshold_db`` below the peak are
    excluded.
    """
    if threshold_db <= 0:
        raise ValueError("threshold must be positive")
    cfg = measurement.config
    # Hann window over the occupied subcarriers, in frequency order.
    order = np.argsort(cfg.active_subcarriers)
    window = np.hanning(len(order) + 2)[1:-1]
    windowed = measurement.csi.copy()
    windowed[order] = windowed[order] * window
    grid = np.zeros(cfg.n_fft, dtype=complex)
    for value, idx in zip(windowed, cfg.active_subcarriers):
        grid[idx % cfg.n_fft] = value
    taps = np.fft.ifft(grid)
    half = cfg.n_fft // 2
    powers = np.abs(taps[:half]) ** 2
    delays = np.arange(half) * cfg.tap_resolution_s
    peak = float(powers.max())
    if peak <= 0:
        raise ValueError("measurement has no energy")
    floor = peak * 10.0 ** (-threshold_db / 10.0)
    powers = np.where(powers < floor, 0.0, powers)
    total = float(powers.sum())
    mean_delay = float((delays * powers).sum() / total)
    second = float(((delays - mean_delay) ** 2 * powers).sum() / total)
    return math.sqrt(max(second, 0.0))


@dataclass(frozen=True)
class LinkPropertyReport:
    """CSI-vs-RSS property comparison for one link.

    Attributes
    ----------
    pdp_stability_cv, rssi_stability_cv, first_tap_stability_cv:
        Temporal coefficient of variation per metric (lower = stabler).
    mean_frequency_selectivity:
        Average subcarrier-magnitude CV across snapshots.
    mean_delay_spread_s:
        Average RMS delay spread.
    """

    pdp_stability_cv: float
    rssi_stability_cv: float
    first_tap_stability_cv: float
    mean_frequency_selectivity: float
    mean_delay_spread_s: float

    @property
    def csi_stabler_than_rss(self) -> bool:
        """The paper's temporal-stability claim, as a boolean."""
        return self.pdp_stability_cv < self.rssi_stability_cv


def analyze_link(measurements: Sequence[CSIMeasurement]) -> LinkPropertyReport:
    """Full property report for one link's snapshot batch."""
    if len(measurements) < 2:
        raise ValueError("need at least two snapshots")
    return LinkPropertyReport(
        pdp_stability_cv=temporal_stability(measurements, estimate_pdp),
        rssi_stability_cv=temporal_stability(measurements, estimate_rss),
        first_tap_stability_cv=temporal_stability(
            measurements, estimate_first_tap
        ),
        mean_frequency_selectivity=float(
            np.mean([frequency_selectivity(m) for m in measurements])
        ),
        mean_delay_spread_s=float(
            np.mean([rms_delay_spread_s(m) for m in measurements])
        ),
    )
