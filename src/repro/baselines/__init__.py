"""Comparison localizers: static SP, calibrated ranging, fingerprinting,
weighted centroid."""

from .centroid import WeightedCentroidLocalizer
from .fingerprint import Fingerprint, FingerprintLocalizer
from .ranging import CSIRangingModel, TrilaterationLocalizer, trilaterate
from .sequence import SequenceLocalizer, kendall_tau, rank_sequence
from .static_sp import StaticSPLocalizer

__all__ = [
    "StaticSPLocalizer",
    "CSIRangingModel",
    "trilaterate",
    "TrilaterationLocalizer",
    "Fingerprint",
    "FingerprintLocalizer",
    "WeightedCentroidLocalizer",
    "SequenceLocalizer",
    "rank_sequence",
    "kendall_tau",
]
