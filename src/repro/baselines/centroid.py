"""Weighted-centroid baseline.

The simplest calibration-free comparator: the position estimate is the
PDP-weighted average of the AP positions.  Needs no model fitting and no
survey, but its accuracy is bounded by the AP geometry — a useful floor to
measure NomLoc's SP machinery against.
"""

from __future__ import annotations

import numpy as np

from ..channel import CSISynthesizer, LinkSimulator, PropagationModel
from ..core import SystemConfig, measure_link_pdp
from ..environment import Scenario
from ..geometry import Point

__all__ = ["WeightedCentroidLocalizer"]


class WeightedCentroidLocalizer:
    """PDP-weighted centroid of the static AP positions.

    Parameters
    ----------
    exponent:
        Weight sharpening: ``w_i = pdp_i ** exponent``.  Larger values
        pull the estimate harder towards the strongest AP.
    """

    name = "weighted-centroid"

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        exponent: float = 1.0,
    ) -> None:
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.scenario = scenario
        self.config = config or SystemConfig()
        self.exponent = exponent
        self.link_sim = LinkSimulator(
            scenario.plan,
            CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            ),
        )
        self._ap_positions = [ap.position for ap in scenario.aps]

    def locate(self, object_position: Point, rng: np.random.Generator) -> Point:
        """One weighted-centroid query."""
        weights = []
        for ap in self._ap_positions:
            pdp = measure_link_pdp(
                self.link_sim,
                object_position,
                ap,
                self.config.packets_per_link,
                rng,
            )
            weights.append(pdp**self.exponent)
        total = sum(weights)
        x = sum(w * p.x for w, p in zip(weights, self._ap_positions)) / total
        y = sum(w * p.y for w, p in zip(weights, self._ap_positions)) / total
        return Point(x, y)

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.locate(object_position, rng).distance_to(object_position)
