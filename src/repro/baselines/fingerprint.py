"""RADAR/Horus-style fingerprinting baseline.

The other conventional WLAN technique the paper discusses: an offline
war-driving phase builds a radio map (per-AP signal statistics on a grid of
reference positions), and online queries match against it with weighted
K-nearest-neighbours in signal space.  The paper's point stands in the
implementation itself: the offline phase needs a dense survey with ground
truth *and is impossible with nomadic APs* — only static home positions can
be fingerprinted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..channel import CSISynthesizer, LinkSimulator, PropagationModel
from ..core import SystemConfig, measure_link_pdp
from ..environment import Scenario
from ..geometry import Point

__all__ = ["Fingerprint", "FingerprintLocalizer"]


@dataclass(frozen=True)
class Fingerprint:
    """One radio-map entry: a reference position and its signal vector."""

    position: Point
    signature_db: np.ndarray

    def distance_to_signature(self, other_db: np.ndarray) -> float:
        """Euclidean distance in dB signal space."""
        return float(np.linalg.norm(self.signature_db - other_db))


class FingerprintLocalizer:
    """Weighted-KNN fingerprinting over a surveyed grid.

    Parameters
    ----------
    scenario:
        Venue and deployment (static AP home positions only).
    config:
        Measurement parameters.
    grid_spacing_m:
        Survey density of the offline phase.
    k:
        Neighbours used by the online matcher.
    """

    name = "fingerprint"

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        grid_spacing_m: float = 2.0,
        k: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if grid_spacing_m <= 0:
            raise ValueError("grid spacing must be positive")
        self.scenario = scenario
        self.config = config or SystemConfig()
        self.k = k
        self.link_sim = LinkSimulator(
            scenario.plan,
            CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            ),
        )
        self._ap_positions = [ap.position for ap in scenario.aps]
        self.radio_map: list[Fingerprint] = []
        self._survey(grid_spacing_m, rng or np.random.default_rng(0xF19E))

    def _signature(
        self, position: Point, rng: np.random.Generator
    ) -> np.ndarray:
        sig = []
        for ap in self._ap_positions:
            pdp = measure_link_pdp(
                self.link_sim, position, ap, self.config.packets_per_link, rng
            )
            sig.append(10.0 * math.log10(pdp))
        return np.array(sig)

    def _survey(self, spacing: float, rng: np.random.Generator) -> None:
        """The offline war-driving phase NomLoc exists to avoid."""
        refs = self.scenario.plan.boundary.grid_points(spacing, margin=0.2)
        refs = [
            p
            for p in refs
            if not any(
                o.polygon.contains(p, boundary=False)
                for o in self.scenario.plan.obstacles
            )
        ]
        if len(refs) < self.k:
            raise ValueError(
                "survey grid too coarse for the requested k; "
                "decrease grid_spacing_m"
            )
        self.radio_map = [
            Fingerprint(p, self._signature(p, rng)) for p in refs
        ]

    def locate(self, object_position: Point, rng: np.random.Generator) -> Point:
        """One fingerprint-matching query."""
        observed = self._signature(object_position, rng)
        scored = sorted(
            self.radio_map,
            key=lambda fp: fp.distance_to_signature(observed),
        )[: self.k]
        weights = []
        for fp in scored:
            d = fp.distance_to_signature(observed)
            weights.append(1.0 / (d + 1e-6))
        total = sum(weights)
        x = sum(w * fp.position.x for w, fp in zip(weights, scored)) / total
        y = sum(w * fp.position.y for w, fp in zip(weights, scored)) / total
        return Point(x, y)

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.locate(object_position, rng).distance_to(object_position)

    @property
    def survey_size(self) -> int:
        """Number of surveyed reference points (the calibration cost)."""
        return len(self.radio_map)
