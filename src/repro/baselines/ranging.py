"""FILA-style range-based baseline: CSI ranging + trilateration.

The paper contrasts NomLoc with range-based systems (FILA [17]) that invert
a radio propagation model to get AP-object distances and trilaterate.
Crucially these need *calibration* — fitting the venue's path-loss
parameters from reference measurements — which is exactly the cost NomLoc
avoids.  This baseline implements the full pipeline:

1. offline: fit ``PDP_dB = A - 10 n log10(d)`` by least squares over
   calibration points with known positions;
2. online: invert each link's PDP to a distance estimate;
3. solve the nonlinear least-squares trilateration with a from-scratch
   Levenberg–Marquardt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import SystemConfig, measure_link_pdp
from ..channel import CSISynthesizer, LinkSimulator, PropagationModel
from ..environment import Scenario
from ..geometry import Point

__all__ = ["CSIRangingModel", "TrilaterationLocalizer", "trilaterate"]


@dataclass
class CSIRangingModel:
    """Calibrated log-distance inversion from PDP to distance.

    Attributes
    ----------
    intercept_db:
        Fitted ``A`` — the PDP in dB at 1 m.
    exponent:
        Fitted path-loss exponent ``n``.
    """

    intercept_db: float = 0.0
    exponent: float = 2.0
    _fitted: bool = False

    def calibrate(self, pdps_mw: np.ndarray, distances_m: np.ndarray) -> None:
        """Least-squares fit of the log-distance model.

        Requires at least two calibration measurements at distinct
        distances.
        """
        pdps_mw = np.asarray(pdps_mw, dtype=float)
        distances_m = np.asarray(distances_m, dtype=float)
        if pdps_mw.shape != distances_m.shape or pdps_mw.size < 2:
            raise ValueError("need >= 2 aligned calibration samples")
        if np.any(pdps_mw <= 0) or np.any(distances_m <= 0):
            raise ValueError("calibration samples must be positive")
        log_d = np.log10(distances_m)
        if np.ptp(log_d) < 1e-9:
            raise ValueError("calibration distances must be distinct")
        pdp_db = 10.0 * np.log10(pdps_mw)
        # pdp_db = A - 10 n log_d  ->  linear regression on log_d.
        slope, intercept = np.polyfit(log_d, pdp_db, 1)
        self.exponent = max(-slope / 10.0, 0.5)
        self.intercept_db = float(intercept)
        self._fitted = True

    def distance(self, pdp_mw: float) -> float:
        """Invert one PDP measurement to a distance estimate."""
        if not self._fitted:
            raise RuntimeError("ranging model has not been calibrated")
        if pdp_mw <= 0:
            raise ValueError("PDP must be positive")
        pdp_db = 10.0 * math.log10(pdp_mw)
        log_d = (self.intercept_db - pdp_db) / (10.0 * self.exponent)
        return float(np.clip(10.0**log_d, 0.05, 1e4))


def trilaterate(
    anchors: list[Point],
    distances: list[float],
    initial: Point,
    max_iterations: int = 100,
) -> Point:
    """Nonlinear least-squares position fix (Levenberg–Marquardt).

    Minimizes ``sum_i (|z - p_i| - d_i)^2`` from ``initial``.
    """
    if len(anchors) != len(distances):
        raise ValueError("anchors and distances must align")
    if len(anchors) < 3:
        raise ValueError("trilateration needs at least three anchors")
    z = np.array([initial.x, initial.y], dtype=float)
    lam = 1e-3

    def residuals(zz: np.ndarray) -> np.ndarray:
        return np.array(
            [
                math.hypot(zz[0] - p.x, zz[1] - p.y) - d
                for p, d in zip(anchors, distances)
            ]
        )

    r = residuals(z)
    cost = float(r @ r)
    for _ in range(max_iterations):
        # Jacobian of |z - p_i| is the unit vector towards z.
        jac = np.zeros((len(anchors), 2))
        for i, p in enumerate(anchors):
            dx, dy = z[0] - p.x, z[1] - p.y
            norm = math.hypot(dx, dy)
            if norm < 1e-9:
                jac[i] = (1.0, 0.0)
            else:
                jac[i] = (dx / norm, dy / norm)
        jtj = jac.T @ jac
        jtr = jac.T @ r
        step = np.linalg.solve(jtj + lam * np.eye(2), -jtr)
        candidate = z + step
        r_new = residuals(candidate)
        cost_new = float(r_new @ r_new)
        if cost_new < cost:
            z, r, cost = candidate, r_new, cost_new
            lam = max(lam / 4.0, 1e-10)
            if np.linalg.norm(step) < 1e-9:
                break
        else:
            lam = min(lam * 8.0, 1e8)
            if lam >= 1e8:
                break
    return Point(float(z[0]), float(z[1]))


class TrilaterationLocalizer:
    """The complete calibrated range-based baseline over a scenario.

    Parameters
    ----------
    scenario:
        Venue and deployment; only the static home positions are used
        (ranging against a moving anchor with uncertain position degrades
        badly — the paper's argument in Sec. III-A).
    config:
        Measurement parameters (packet counts).
    calibration_points:
        Reference positions with known ground truth used to fit the
        ranging model; defaults to an interior grid.
    """

    name = "trilateration"

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        calibration_points: list[Point] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or SystemConfig()
        self.link_sim = LinkSimulator(
            scenario.plan,
            CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            ),
        )
        self.ranging = CSIRangingModel()
        self._ap_positions = [ap.position for ap in scenario.aps]
        self._calibrate(
            calibration_points, rng or np.random.default_rng(0xCA11B)
        )

    def _calibrate(
        self, points: list[Point] | None, rng: np.random.Generator
    ) -> None:
        if points is None:
            points = self.scenario.plan.boundary.sample_points(
                12, rng, margin=0.5
            )
        pdps, dists = [], []
        for ref in points:
            for ap in self._ap_positions:
                d = ref.distance_to(ap)
                if d < 0.3:
                    continue
                pdps.append(
                    measure_link_pdp(
                        self.link_sim,
                        ref,
                        ap,
                        self.config.packets_per_link,
                        rng,
                    )
                )
                dists.append(d)
        self.ranging.calibrate(np.array(pdps), np.array(dists))

    def locate(self, object_position: Point, rng: np.random.Generator) -> Point:
        """One range-based localization query."""
        distances = []
        for ap in self._ap_positions:
            pdp = measure_link_pdp(
                self.link_sim,
                object_position,
                ap,
                self.config.packets_per_link,
                rng,
            )
            distances.append(self.ranging.distance(pdp))
        initial = self.scenario.plan.boundary.centroid()
        estimate = trilaterate(self._ap_positions, distances, initial)
        return _clamp_into(estimate, self.scenario)

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.locate(object_position, rng).distance_to(object_position)


def _clamp_into(p: Point, scenario: Scenario) -> Point:
    """Project estimates that escaped the venue back to the boundary."""
    if scenario.plan.contains(p):
        return p
    from ..geometry import distance_point_to_segment

    best_edge = min(
        scenario.plan.boundary.edges(),
        key=lambda e: distance_point_to_segment(p, e),
    )
    # Closest point on the best edge.
    d = best_edge.b - best_edge.a
    denom = d.x * d.x + d.y * d.y
    t = ((p.x - best_edge.a.x) * d.x + (p.y - best_edge.a.y) * d.y) / denom
    t = max(0.0, min(1.0, t))
    return best_edge.a + d * t
