"""Sequence-based localization (the paper's SP ancestor, ref. [2]).

Yedavalli & Krishnamachari, *Sequence-Based Localization in Wireless
Sensor Networks*, IEEE TMC 2008: the perpendicular bisectors of ``n``
anchors partition the plane into faces, each with a unique *rank
sequence* of anchor distances.  Offline, the feasible sequences and their
face centroids are tabulated; online, the measured signal-strength rank
sequence is matched to the nearest feasible sequence by rank correlation
and the face centroid is returned.

Implemented here with dense grid sampling of the venue (exact face
enumeration is unnecessary at floor-plan scale) and a from-scratch
Kendall-tau matcher.  Like NomLoc this is calibration-free — it only uses
distance *ordering* — which is precisely why the paper adopts the
space-partition family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel import CSISynthesizer, LinkSimulator, PropagationModel
from ..core import SystemConfig, measure_link_pdp
from ..environment import Scenario
from ..geometry import Point

__all__ = ["rank_sequence", "kendall_tau", "SequenceLocalizer"]


def rank_sequence(values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Rank vector of ``values`` (0 = smallest; ties broken by index).

    With ``descending=True`` the largest value gets rank 0 — handy for
    signal strengths, where stronger means nearer.
    """
    values = np.asarray(values, dtype=float)
    order = np.argsort(-values if descending else values, kind="stable")
    ranks = np.empty(len(values), dtype=int)
    ranks[order] = np.arange(len(values))
    return ranks


def kendall_tau(a: np.ndarray, b: np.ndarray) -> float:
    """Kendall rank correlation of two equal-length rank vectors.

    ``+1`` for identical orderings, ``-1`` for reversed.  O(n^2), which is
    fine for the handful of anchors a deployment has.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("rank vectors must have equal length")
    n = len(a)
    if n < 2:
        raise ValueError("need at least two entries to correlate")
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            sign_a = np.sign(a[i] - a[j])
            sign_b = np.sign(b[i] - b[j])
            product = sign_a * sign_b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return float((concordant - discordant) / total)


@dataclass(frozen=True)
class _Face:
    """One feasible rank sequence and the centroid of its face."""

    sequence: tuple[int, ...]
    centroid: Point
    support: int  # grid points that produced this sequence


class SequenceLocalizer:
    """Grid-sampled sequence-based localization over a scenario.

    Parameters
    ----------
    scenario:
        Venue and deployment; static AP home positions are the anchors.
    config:
        Measurement parameters (packets per link).
    grid_spacing_m:
        Sampling density for the offline sequence table.  Finer grids
        discover more (smaller) faces.
    """

    name = "sequence"

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        grid_spacing_m: float = 0.5,
    ) -> None:
        if grid_spacing_m <= 0:
            raise ValueError("grid spacing must be positive")
        self.scenario = scenario
        self.config = config or SystemConfig()
        self.link_sim = LinkSimulator(
            scenario.plan,
            CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            ),
        )
        self._anchors = [ap.position for ap in scenario.aps]
        self.faces: list[_Face] = self._build_table(grid_spacing_m)

    # ------------------------------------------------------------------
    def _build_table(self, spacing: float) -> list[_Face]:
        """Enumerate feasible rank sequences by venue sampling.

        Purely geometric — no radio measurements, no calibration.
        """
        points = self.scenario.plan.boundary.grid_points(spacing, margin=0.05)
        groups: dict[tuple[int, ...], list[Point]] = {}
        for p in points:
            distances = np.array([p.distance_to(a) for a in self._anchors])
            seq = tuple(rank_sequence(distances))
            groups.setdefault(seq, []).append(p)
        faces = [
            _Face(seq, Point.centroid(pts), len(pts))
            for seq, pts in groups.items()
        ]
        if not faces:
            raise ValueError("venue too small for the sampling grid")
        return faces

    @property
    def num_faces(self) -> int:
        """Distinct feasible rank sequences found in the venue."""
        return len(self.faces)

    # ------------------------------------------------------------------
    def locate(self, object_position: Point, rng: np.random.Generator) -> Point:
        """One sequence-matching localization query."""
        pdps = np.array(
            [
                measure_link_pdp(
                    self.link_sim,
                    object_position,
                    anchor,
                    self.config.packets_per_link,
                    rng,
                )
                for anchor in self._anchors
            ]
        )
        # Strongest PDP = nearest anchor = rank 0, matching the distance
        # ranks of the offline table.
        measured = rank_sequence(pdps, descending=True)
        best = max(
            self.faces,
            key=lambda f: (kendall_tau(measured, np.array(f.sequence)), f.support),
        )
        return best.centroid

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.locate(object_position, rng).distance_to(object_position)
