"""Static-deployment SP baseline.

The comparison target of Figs. 8 and 9: the identical SP pipeline run with
the nomadic AP pinned at its home position.  Provided as a thin wrapper so
experiments can instantiate "the corresponding static AP deployment" in one
line, exactly mirroring the paper's benchmark.
"""

from __future__ import annotations

import numpy as np

from ..core import LocalizerConfig, LocationEstimate, NomLocSystem, SystemConfig
from ..environment import Scenario
from ..geometry import Point

__all__ = ["StaticSPLocalizer"]


class StaticSPLocalizer:
    """SP localization with every AP static (nomadic APs pinned at home)."""

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        localizer_config: LocalizerConfig | None = None,
    ) -> None:
        base = config or SystemConfig()
        if base.use_nomadic:
            base = SystemConfig(
                packets_per_link=base.packets_per_link,
                trace_steps=base.trace_steps,
                position_error=base.position_error,
                use_nomadic=False,
            )
        self.system = NomLocSystem(scenario, base, localizer_config)

    def locate(
        self, object_position: Point, rng: np.random.Generator
    ) -> LocationEstimate:
        """One static-deployment localization query."""
        return self.system.locate(object_position, rng)

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.locate(object_position, rng).error_to(object_position)
