"""Simulated 802.11n RF substrate.

Replaces the Intel 5300 CSI-capable NIC of the paper's prototype: an
image-method multipath tracer over a polygonal floor plan, OFDM CSI
synthesis with Rician fading and receiver noise, and CSI-to-CIR processing
for power-delay-profile extraction.
"""

from .antenna import OMNI, AntennaPattern
from .cir import (
    DelayProfile,
    csi_to_cir,
    csi_to_cir_batch,
    delay_profile,
    delay_profile_batch,
    tap_powers_batch,
)
from .csi import INTEL5300_SUBCARRIERS, CSIMeasurement, CSISynthesizer, OFDMConfig
from .fading import FadingModel, rician_gain
from .link import LinkSimulator
from .materials import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    HUMAN_BODY,
    MATERIALS,
    METAL,
    WOOD,
    Material,
)
from .multipath import PathComponent, PathKind, TraceConfig, trace_paths
from .noise import NoiseModel, thermal_noise_dbm
from .shadowing import ShadowingModel
from .propagation import (
    SPEED_OF_LIGHT,
    PropagationModel,
    db_to_linear_amplitude,
    dbm_to_mw,
    free_space_path_loss_db,
    mw_to_dbm,
)

__all__ = [
    "Material",
    "MATERIALS",
    "CONCRETE",
    "BRICK",
    "DRYWALL",
    "GLASS",
    "WOOD",
    "METAL",
    "HUMAN_BODY",
    "SPEED_OF_LIGHT",
    "PropagationModel",
    "free_space_path_loss_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear_amplitude",
    "PathKind",
    "PathComponent",
    "TraceConfig",
    "trace_paths",
    "FadingModel",
    "rician_gain",
    "NoiseModel",
    "thermal_noise_dbm",
    "ShadowingModel",
    "AntennaPattern",
    "OMNI",
    "OFDMConfig",
    "CSIMeasurement",
    "CSISynthesizer",
    "INTEL5300_SUBCARRIERS",
    "DelayProfile",
    "csi_to_cir",
    "csi_to_cir_batch",
    "delay_profile",
    "delay_profile_batch",
    "tap_powers_batch",
    "LinkSimulator",
]
