"""Antenna radiation patterns.

The paper's TL-WR941ND APs are omnidirectional; real deployments often
mix in sector antennas.  Directional gain changes the received power as a
function of the object's bearing, which perturbs PDP-vs-distance
monotonicity — the ABL-ANT ablation quantifies NomLoc's sensitivity.

The model is link-level (first-order): the gain of the AP's antenna
towards the direct-path bearing scales the whole link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import Point

__all__ = ["AntennaPattern", "OMNI"]


@dataclass(frozen=True, slots=True)
class AntennaPattern:
    """A smooth cardioid-family azimuth pattern.

    ``gain(theta) = front_gain - roll * (1 - cos(theta - boresight)) / 2``
    where ``roll = front_gain + back_loss``: the boresight direction gets
    ``front_gain_db``, the back direction ``-back_loss_db``.  Setting both
    to zero yields an omni.

    Attributes
    ----------
    boresight_deg:
        Pointing azimuth, degrees CCW from +x.
    front_gain_db:
        Gain at boresight relative to an isotropic radiator.
    back_loss_db:
        Attenuation directly behind the antenna.
    """

    boresight_deg: float = 0.0
    front_gain_db: float = 0.0
    back_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.front_gain_db < 0 or self.back_loss_db < 0:
            raise ValueError("gains/losses must be non-negative")

    @property
    def is_omni(self) -> bool:
        """True when the pattern is direction-independent."""
        return self.front_gain_db == 0.0 and self.back_loss_db == 0.0

    def gain_db(self, azimuth_deg: float) -> float:
        """Gain towards an azimuth (degrees CCW from +x)."""
        if self.is_omni:
            return 0.0
        delta = math.radians(azimuth_deg - self.boresight_deg)
        roll = self.front_gain_db + self.back_loss_db
        return self.front_gain_db - roll * (1.0 - math.cos(delta)) / 2.0

    def gain_towards_db(self, antenna_at: Point, target: Point) -> float:
        """Gain of an antenna at ``antenna_at`` towards ``target``."""
        dx = target.x - antenna_at.x
        dy = target.y - antenna_at.y
        if abs(dx) < 1e-12 and abs(dy) < 1e-12:
            return self.front_gain_db  # on top of the antenna
        return self.gain_db(math.degrees(math.atan2(dy, dx)))


#: The paper's setting: omnidirectional APs.
OMNI = AntennaPattern()
