"""Frequency-domain CSI to time-domain channel impulse response.

The core of NomLoc's PDP mechanism (Sec. IV-A): IFFT the measured CSI onto
the 64-tap grid of the 20 MHz channel, giving the power delay profile.  The
maximum tap power approximates the power of the direct path (PDP) because
the direct path plus its near reflections dominate one early tap, while
NLOS penetration crushes it relative to the LOS case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..obs import span
from .csi import CSIMeasurement

__all__ = [
    "DelayProfile",
    "csi_to_cir",
    "csi_to_cir_batch",
    "delay_profile",
    "delay_profile_batch",
    "tap_powers_batch",
]


@dataclass(frozen=True)
class DelayProfile:
    """Discrete power delay profile of one CSI snapshot.

    Attributes
    ----------
    delays_s:
        Tap delays, starting at 0, spaced by the OFDM tap resolution.
    amplitudes:
        Tap amplitudes ``|h[n]|`` (sqrt-mW units, like the CSI itself).
    """

    delays_s: np.ndarray
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.delays_s, dtype=float)
        a = np.asarray(self.amplitudes, dtype=float)
        if d.shape != a.shape:
            raise ValueError("delays and amplitudes must align")
        object.__setattr__(self, "delays_s", d)
        object.__setattr__(self, "amplitudes", a)

    @property
    def powers(self) -> np.ndarray:
        """Per-tap powers ``|h[n]|^2`` in mW."""
        return self.amplitudes**2

    def max_power(self) -> float:
        """Maximum tap power — the paper's PDP estimator."""
        return float(self.powers.max())

    def first_tap_power(self) -> float:
        """Power of the earliest tap (misleading under NLOS; kept for
        comparison against the max-power estimator)."""
        return float(self.powers[0])

    def peak_delay_s(self) -> float:
        """Delay of the strongest tap."""
        return float(self.delays_s[int(np.argmax(self.powers))])

    def truncated(self, max_delay_s: float) -> "DelayProfile":
        """Profile restricted to taps at or before ``max_delay_s``."""
        mask = self.delays_s <= max_delay_s + 1e-15
        return DelayProfile(self.delays_s[mask], self.amplitudes[mask])


def csi_to_cir(measurement: CSIMeasurement) -> np.ndarray:
    """IFFT the CSI snapshot onto the full FFT tap grid.

    The active subcarriers are placed at their FFT bin positions (negative
    indices wrap, DC and guard bins stay zero) and a standard inverse FFT
    produces ``n_fft`` complex taps spaced ``1 / bandwidth`` apart.
    """
    cfg = measurement.config
    grid = np.zeros(cfg.n_fft, dtype=complex)
    for value, idx in zip(measurement.csi, cfg.active_subcarriers):
        grid[idx % cfg.n_fft] = value
    # Scale so a flat channel of unit gain yields a unit first tap,
    # independent of how many subcarriers were measured.
    taps = np.fft.ifft(grid) * (cfg.n_fft / len(cfg.active_subcarriers))
    return taps


def delay_profile(measurement: CSIMeasurement) -> DelayProfile:
    """Power delay profile (Fig. 3 of the paper) of one CSI snapshot."""
    with span("cir.delay_profile", taps=measurement.config.n_fft):
        cfg = measurement.config
        taps = csi_to_cir(measurement)
        delays = np.arange(cfg.n_fft) * cfg.tap_resolution_s
        return DelayProfile(delays, np.abs(taps))


# ----------------------------------------------------------------------
# Batched extraction: one stacked IFFT for a whole packet batch.  Every
# function below is bit-identical to mapping its scalar counterpart over
# the batch (NumPy's pocketfft computes 2-D row transforms with the same
# 1-D kernel) — enforced in ``tests/channel`` and the hotpath benchmark.
# ----------------------------------------------------------------------

def _stack_batch(
    measurements: Iterable[CSIMeasurement],
) -> tuple[list[CSIMeasurement], np.ndarray]:
    """Validate a batch shares one OFDM config and stack its CSI rows."""
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    cfg = ms[0].config
    for m in ms[1:]:
        if m.config != cfg:
            raise ValueError(
                "all measurements in a batch must share one OFDM config"
            )
    return ms, np.stack([m.csi for m in ms])


def csi_to_cir_batch(
    measurements: Sequence[CSIMeasurement],
) -> np.ndarray:
    """Stacked IFFT: one ``(packets, n_fft)`` matrix of complex taps.

    Row ``i`` equals ``csi_to_cir(measurements[i])`` bit-for-bit; the
    batch pays one 2-D IFFT instead of ``packets`` 1-D ones.  All
    measurements must share one OFDM config.
    """
    ms, matrix = _stack_batch(measurements)
    cfg = ms[0].config
    grid = np.zeros((len(ms), cfg.n_fft), dtype=complex)
    cols = [idx % cfg.n_fft for idx in cfg.active_subcarriers]
    grid[:, cols] = matrix
    return np.fft.ifft(grid, axis=1) * (
        cfg.n_fft / len(cfg.active_subcarriers)
    )


def tap_powers_batch(
    measurements: Sequence[CSIMeasurement],
) -> np.ndarray:
    """Per-tap powers ``|h[n]|^2`` of a batch, as a ``(packets, n_fft)``
    matrix — the input of the batched PDP estimators."""
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    # Same span name as the scalar extractor, so per-stage profiles keep
    # covering CIR extraction regardless of which path served it.
    with span("cir.delay_profile", taps=ms[0].config.n_fft, batch=len(ms)):
        return np.abs(csi_to_cir_batch(ms)) ** 2


def delay_profile_batch(
    measurements: Sequence[CSIMeasurement],
) -> list[DelayProfile]:
    """Power delay profiles of a whole packet batch via one stacked IFFT.

    Element ``i`` equals ``delay_profile(measurements[i])`` bit-for-bit.
    """
    ms = list(measurements)
    if not ms:
        return []
    cfg = ms[0].config
    with span("cir.delay_profile", taps=cfg.n_fft, batch=len(ms)):
        amplitudes = np.abs(csi_to_cir_batch(ms))
        delays = np.arange(cfg.n_fft) * cfg.tap_resolution_s
        return [DelayProfile(delays, row) for row in amplitudes]
