"""802.11n CSI synthesis over traced multipath.

The frequency-domain channel state information on subcarrier ``i`` is

    H(f_i) = sum_k g_k * a_k * exp(-j 2 pi (f_c + f_i) tau_k) + n_i

where ``a_k`` is the large-scale amplitude of path ``k`` (path loss +
excess loss), ``g_k`` the per-packet Rician fading gain, ``tau_k`` the
path delay, and ``n_i`` receiver noise.  The layout mirrors a 20 MHz
802.11n channel: a 64-point FFT grid with 56 occupied subcarriers
(indices -28..-1, 1..28), of which an Intel-5300-style report exposes 30.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..obs import span
from .fading import FadingModel
from .multipath import PathComponent
from .noise import NoiseModel
from .propagation import PropagationModel, db_to_linear_amplitude

__all__ = ["OFDMConfig", "CSIMeasurement", "CSISynthesizer", "INTEL5300_SUBCARRIERS"]

#: Subcarrier indices reported by the Intel 5300 CSI tool in 20 MHz HT mode.
INTEL5300_SUBCARRIERS: tuple[int, ...] = (
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
    1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
)


@dataclass(frozen=True)
class OFDMConfig:
    """20 MHz 802.11n OFDM parameters.

    Attributes
    ----------
    n_fft:
        FFT size; CIR taps come out at ``1 / bandwidth_hz`` spacing.
    bandwidth_hz:
        Sampled channel bandwidth.
    carrier_hz:
        RF carrier (2.412 GHz = channel 1).
    active_subcarriers:
        Occupied subcarrier indices relative to the carrier (DC excluded).
    """

    n_fft: int = 64
    bandwidth_hz: float = 20e6
    carrier_hz: float = 2.412e9
    active_subcarriers: tuple[int, ...] = field(
        default_factory=lambda: tuple(
            i for i in range(-28, 29) if i != 0
        )
    )

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.bandwidth_hz <= 0 or self.carrier_hz <= 0:
            raise ValueError("OFDM parameters must be positive")
        half = self.n_fft // 2
        for idx in self.active_subcarriers:
            if not -half <= idx <= half - 1:
                raise ValueError(f"subcarrier index {idx} outside FFT grid")

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Frequency gap between adjacent subcarriers."""
        return self.bandwidth_hz / self.n_fft

    @property
    def tap_resolution_s(self) -> float:
        """Time resolution of one CIR tap (50 ns at 20 MHz)."""
        return 1.0 / self.bandwidth_hz

    def subcarrier_frequencies_hz(self) -> np.ndarray:
        """Baseband offsets of the active subcarriers."""
        return (
            np.array(self.active_subcarriers, dtype=float)
            * self.subcarrier_spacing_hz
        )


@dataclass(frozen=True)
class CSIMeasurement:
    """One CSI snapshot from a single packet on one TX-RX link.

    Attributes
    ----------
    csi:
        Complex channel gains on the active subcarriers, in sqrt(mW) units
        (``|csi|^2`` is a per-subcarrier received power in mW).
    config:
        OFDM layout the snapshot was measured under.
    rssi_dbm:
        The coarse per-packet RSSI the NIC firmware reports alongside the
        CSI: total power corrupted by AGC jitter and dB quantization
        (``None`` when the synthesizer did not model it).  This is the
        "coarse received signal strength" the paper contrasts CSI with.
    """

    csi: np.ndarray
    config: OFDMConfig
    rssi_dbm: float | None = None

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi, dtype=complex)
        if csi.shape != (len(self.config.active_subcarriers),):
            raise ValueError(
                "CSI length must match the number of active subcarriers"
            )
        object.__setattr__(self, "csi", csi)

    def total_power_mw(self) -> float:
        """Aggregate received power across subcarriers (wideband power)."""
        return float(np.sum(np.abs(self.csi) ** 2))

    def rssi_mw(self) -> float:
        """The firmware RSSI in mW; falls back to wideband power."""
        if self.rssi_dbm is None:
            return self.total_power_mw()
        return 10.0 ** (self.rssi_dbm / 10.0)

    def subsample_intel5300(self) -> "CSIMeasurement":
        """Restrict to the 30 subcarriers the Intel 5300 driver exports."""
        index_of = {sc: i for i, sc in enumerate(self.config.active_subcarriers)}
        try:
            picks = [index_of[sc] for sc in INTEL5300_SUBCARRIERS]
        except KeyError as exc:
            raise ValueError(
                f"subcarrier {exc.args[0]} not present in this measurement"
            ) from None
        sub_cfg = OFDMConfig(
            n_fft=self.config.n_fft,
            bandwidth_hz=self.config.bandwidth_hz,
            carrier_hz=self.config.carrier_hz,
            active_subcarriers=INTEL5300_SUBCARRIERS,
        )
        return CSIMeasurement(self.csi[picks], sub_cfg)


@dataclass(frozen=True)
class CSISynthesizer:
    """Generates per-packet CSI snapshots from a traced path set.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power (TL-WR941ND class routers transmit around 20 dBm;
        we default slightly lower for client devices).
    propagation:
        Large-scale path loss model.
    fading:
        Small-scale per-packet fading model.
    noise:
        Receiver noise model (``None`` disables noise).
    ofdm:
        Subcarrier layout.
    rssi_jitter_db:
        Std of the per-packet AGC/gain error on the reported RSSI (coarse
        RSS is unstable packet-to-packet; CSI magnitudes are not).
    rssi_quantization_db:
        Step size the firmware rounds RSSI to (1 dB on typical NICs).
    """

    tx_power_dbm: float = 15.0
    propagation: PropagationModel = field(default_factory=PropagationModel)
    fading: FadingModel = field(default_factory=FadingModel)
    noise: NoiseModel | None = field(default_factory=NoiseModel)
    ofdm: OFDMConfig = field(default_factory=OFDMConfig)
    rssi_jitter_db: float = 2.0
    rssi_quantization_db: float = 1.0

    def path_amplitude(self, component: PathComponent) -> float:
        """Mean linear amplitude of one component, in sqrt(mW)."""
        rx_dbm = component.received_power_dbm(self.tx_power_dbm, self.propagation)
        return db_to_linear_amplitude(rx_dbm)

    def synthesize(
        self,
        paths: Sequence[PathComponent],
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> CSIMeasurement:
        """Produce one packet's CSI snapshot over the given path set."""
        if not paths:
            raise ValueError("need at least one path component")
        freqs = self.ofdm.carrier_hz + self.ofdm.subcarrier_frequencies_hz()
        csi = np.zeros(len(freqs), dtype=complex)
        for component in paths:
            amplitude = self.path_amplitude(component)
            gain = (
                self.fading.sample_gain(component, rng) if with_fading else 1.0
            )
            csi += (
                amplitude
                * gain
                * np.exp(-2j * np.pi * freqs * component.delay_s)
            )
        if self.noise is not None:
            csi += self.noise.sample_subcarrier_noise(len(freqs), rng)
        rssi = self._report_rssi(csi, rng)
        return CSIMeasurement(csi, self.ofdm, rssi)

    def _report_rssi(self, csi: np.ndarray, rng: np.random.Generator) -> float:
        """The firmware's coarse RSSI: jittered, quantized total power."""
        power_mw = float(np.sum(np.abs(csi) ** 2))
        power_mw = max(power_mw, 1e-30)
        dbm = 10.0 * np.log10(power_mw)
        if self.rssi_jitter_db > 0:
            dbm += float(rng.normal(0.0, self.rssi_jitter_db))
        if self.rssi_quantization_db > 0:
            dbm = (
                round(dbm / self.rssi_quantization_db)
                * self.rssi_quantization_db
            )
        return float(dbm)

    def synthesize_batch(
        self,
        paths: Sequence[PathComponent],
        num_packets: int,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> list[CSIMeasurement]:
        """Independent CSI snapshots for ``num_packets`` packets."""
        if num_packets < 0:
            raise ValueError("num_packets must be non-negative")
        with span("csi.synthesize", packets=num_packets, paths=len(paths)):
            return [
                self.synthesize(paths, rng, with_fading)
                for _ in range(num_packets)
            ]
