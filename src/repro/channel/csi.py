"""802.11n CSI synthesis over traced multipath.

The frequency-domain channel state information on subcarrier ``i`` is

    H(f_i) = sum_k g_k * a_k * exp(-j 2 pi (f_c + f_i) tau_k) + n_i

where ``a_k`` is the large-scale amplitude of path ``k`` (path loss +
excess loss), ``g_k`` the per-packet Rician fading gain, ``tau_k`` the
path delay, and ``n_i`` receiver noise.  The layout mirrors a 20 MHz
802.11n channel: a 64-point FFT grid with 56 occupied subcarriers
(indices -28..-1, 1..28), of which an Intel-5300-style report exposes 30.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..obs import span
from .fading import FadingModel
from .multipath import PathComponent
from .noise import NoiseModel
from .propagation import PropagationModel, db_to_linear_amplitude

__all__ = ["OFDMConfig", "CSIMeasurement", "CSISynthesizer", "INTEL5300_SUBCARRIERS"]

#: Subcarrier indices reported by the Intel 5300 CSI tool in 20 MHz HT mode.
INTEL5300_SUBCARRIERS: tuple[int, ...] = (
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
    1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
)


@dataclass(frozen=True)
class OFDMConfig:
    """20 MHz 802.11n OFDM parameters.

    Attributes
    ----------
    n_fft:
        FFT size; CIR taps come out at ``1 / bandwidth_hz`` spacing.
    bandwidth_hz:
        Sampled channel bandwidth.
    carrier_hz:
        RF carrier (2.412 GHz = channel 1).
    active_subcarriers:
        Occupied subcarrier indices relative to the carrier (DC excluded).
    """

    n_fft: int = 64
    bandwidth_hz: float = 20e6
    carrier_hz: float = 2.412e9
    active_subcarriers: tuple[int, ...] = field(
        default_factory=lambda: tuple(
            i for i in range(-28, 29) if i != 0
        )
    )

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.bandwidth_hz <= 0 or self.carrier_hz <= 0:
            raise ValueError("OFDM parameters must be positive")
        half = self.n_fft // 2
        for idx in self.active_subcarriers:
            if not -half <= idx <= half - 1:
                raise ValueError(f"subcarrier index {idx} outside FFT grid")

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Frequency gap between adjacent subcarriers."""
        return self.bandwidth_hz / self.n_fft

    @property
    def tap_resolution_s(self) -> float:
        """Time resolution of one CIR tap (50 ns at 20 MHz)."""
        return 1.0 / self.bandwidth_hz

    def subcarrier_frequencies_hz(self) -> np.ndarray:
        """Baseband offsets of the active subcarriers."""
        return (
            np.array(self.active_subcarriers, dtype=float)
            * self.subcarrier_spacing_hz
        )


@dataclass(frozen=True)
class CSIMeasurement:
    """One CSI snapshot from a single packet on one TX-RX link.

    Attributes
    ----------
    csi:
        Complex channel gains on the active subcarriers, in sqrt(mW) units
        (``|csi|^2`` is a per-subcarrier received power in mW).
    config:
        OFDM layout the snapshot was measured under.
    rssi_dbm:
        The coarse per-packet RSSI the NIC firmware reports alongside the
        CSI: total power corrupted by AGC jitter and dB quantization
        (``None`` when the synthesizer did not model it).  This is the
        "coarse received signal strength" the paper contrasts CSI with.
    """

    csi: np.ndarray
    config: OFDMConfig
    rssi_dbm: float | None = None

    def __post_init__(self) -> None:
        csi = np.asarray(self.csi, dtype=complex)
        if csi.shape != (len(self.config.active_subcarriers),):
            raise ValueError(
                "CSI length must match the number of active subcarriers"
            )
        object.__setattr__(self, "csi", csi)

    def total_power_mw(self) -> float:
        """Aggregate received power across subcarriers (wideband power)."""
        return float(np.sum(np.abs(self.csi) ** 2))

    def rssi_mw(self) -> float:
        """The firmware RSSI in mW; falls back to wideband power."""
        if self.rssi_dbm is None:
            return self.total_power_mw()
        return 10.0 ** (self.rssi_dbm / 10.0)

    def subsample_intel5300(self) -> "CSIMeasurement":
        """Restrict to the 30 subcarriers the Intel 5300 driver exports."""
        picks, sub_cfg = _intel5300_subsampling(self.config)
        return CSIMeasurement(self.csi[list(picks)], sub_cfg)


@lru_cache(maxsize=None)
def _intel5300_subsampling(
    config: OFDMConfig,
) -> tuple[tuple[int, ...], OFDMConfig]:
    """``(pick indices, subsampled config)`` for one OFDM layout.

    Subsampling happens once per packet on the measurement fast path, so
    the index lookup is cached per (hashable, frozen) config instead of
    rebuilding an ``{subcarrier: index}`` dict on every call.
    """
    index_of = {sc: i for i, sc in enumerate(config.active_subcarriers)}
    try:
        picks = tuple(index_of[sc] for sc in INTEL5300_SUBCARRIERS)
    except KeyError as exc:
        raise ValueError(
            f"subcarrier {exc.args[0]} not present in this measurement"
        ) from None
    sub_cfg = OFDMConfig(
        n_fft=config.n_fft,
        bandwidth_hz=config.bandwidth_hz,
        carrier_hz=config.carrier_hz,
        active_subcarriers=INTEL5300_SUBCARRIERS,
    )
    return picks, sub_cfg


@dataclass(frozen=True)
class CSISynthesizer:
    """Generates per-packet CSI snapshots from a traced path set.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power (TL-WR941ND class routers transmit around 20 dBm;
        we default slightly lower for client devices).
    propagation:
        Large-scale path loss model.
    fading:
        Small-scale per-packet fading model.
    noise:
        Receiver noise model (``None`` disables noise).
    ofdm:
        Subcarrier layout.
    rssi_jitter_db:
        Std of the per-packet AGC/gain error on the reported RSSI (coarse
        RSS is unstable packet-to-packet; CSI magnitudes are not).
    rssi_quantization_db:
        Step size the firmware rounds RSSI to (1 dB on typical NICs).
    """

    tx_power_dbm: float = 15.0
    propagation: PropagationModel = field(default_factory=PropagationModel)
    fading: FadingModel = field(default_factory=FadingModel)
    noise: NoiseModel | None = field(default_factory=NoiseModel)
    ofdm: OFDMConfig = field(default_factory=OFDMConfig)
    rssi_jitter_db: float = 2.0
    rssi_quantization_db: float = 1.0

    def path_amplitude(self, component: PathComponent) -> float:
        """Mean linear amplitude of one component, in sqrt(mW)."""
        rx_dbm = component.received_power_dbm(self.tx_power_dbm, self.propagation)
        return db_to_linear_amplitude(rx_dbm)

    def synthesize(
        self,
        paths: Sequence[PathComponent],
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> CSIMeasurement:
        """Produce one packet's CSI snapshot over the given path set."""
        if not paths:
            raise ValueError("need at least one path component")
        freqs = self.ofdm.carrier_hz + self.ofdm.subcarrier_frequencies_hz()
        csi = np.zeros(len(freqs), dtype=complex)
        for component in paths:
            amplitude = self.path_amplitude(component)
            gain = (
                self.fading.sample_gain(component, rng) if with_fading else 1.0
            )
            csi += (
                amplitude
                * gain
                * np.exp(-2j * np.pi * freqs * component.delay_s)
            )
        if self.noise is not None:
            csi += self.noise.sample_subcarrier_noise(len(freqs), rng)
        rssi = self._report_rssi(csi, rng)
        return CSIMeasurement(csi, self.ofdm, rssi)

    def _report_rssi(self, csi: np.ndarray, rng: np.random.Generator) -> float:
        """The firmware's coarse RSSI: jittered, quantized total power."""
        power_mw = float(np.sum(np.abs(csi) ** 2))
        power_mw = max(power_mw, 1e-30)
        dbm = 10.0 * np.log10(power_mw)
        if self.rssi_jitter_db > 0:
            dbm += float(rng.normal(0.0, self.rssi_jitter_db))
        if self.rssi_quantization_db > 0:
            dbm = (
                round(dbm / self.rssi_quantization_db)
                * self.rssi_quantization_db
            )
        return float(dbm)

    def synthesize_batch(
        self,
        paths: Sequence[PathComponent],
        num_packets: int,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> list[CSIMeasurement]:
        """Independent CSI snapshots for ``num_packets`` packets.

        Vectorized over the whole ``(packets, paths, subcarriers)`` batch:
        the per-path phase ramps are computed once instead of per packet,
        and fading/noise/RSSI math runs as matrix operations.  The RNG is
        consumed in exactly the per-packet call order of the scalar
        :meth:`synthesize` loop (fading draws, then noise, then RSSI
        jitter, packet by packet), so the outputs are bit-identical to
        :meth:`synthesize_batch_scalar` — enforced by
        ``benchmarks/bench_hotpath.py`` and ``tests/channel``.
        """
        if num_packets < 0:
            raise ValueError("num_packets must be non-negative")
        with span("csi.synthesize", packets=num_packets, paths=len(paths)):
            if num_packets == 0:
                return []
            if not paths:
                raise ValueError("need at least one path component")
            return self._synthesize_batch_vectorized(
                paths, num_packets, rng, with_fading
            )

    def synthesize_batch_scalar(
        self,
        paths: Sequence[PathComponent],
        num_packets: int,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> list[CSIMeasurement]:
        """Reference per-packet loop the vectorized batch must reproduce.

        Kept as the ground truth for the bit-exactness guards; not used on
        the hot path.
        """
        if num_packets < 0:
            raise ValueError("num_packets must be non-negative")
        return [
            self.synthesize(paths, rng, with_fading)
            for _ in range(num_packets)
        ]

    # ------------------------------------------------------------------
    # Vectorized fast path
    # ------------------------------------------------------------------
    def _synthesize_batch_vectorized(
        self,
        paths: Sequence[PathComponent],
        num_packets: int,
        rng: np.random.Generator,
        with_fading: bool,
    ) -> list[CSIMeasurement]:
        """One NumPy pass over the packet batch.

        RNG draw-order contract (must match the scalar loop exactly): for
        each packet, (1) two standard normals per path — real then
        imaginary fading component, in path order, drawn as one
        ``standard_normal(2 * paths)`` array, which consumes the PCG64
        stream identically to the scalar calls; (2) the noise model's
        draws; (3) one RSSI jitter normal.  Only the draws stay in the
        per-packet loop — all arithmetic on them is batched.
        """
        freqs = self.ofdm.carrier_hz + self.ofdm.subcarrier_frequencies_hz()
        num_sc = len(freqs)
        num_paths = len(paths)
        amplitudes = [self.path_amplitude(c) for c in paths]
        if with_fading:
            k_factors = [self.fading.k_for(c) for c in paths]
            specular = np.array(
                [math.sqrt(k / (k + 1.0)) for k in k_factors]
            )
            sigma = np.array(
                [math.sqrt(1.0 / (2.0 * (k + 1.0))) for k in k_factors]
            )
            gains = np.empty((num_packets, num_paths), dtype=complex)
        else:
            gains = None
        noise_rows = (
            np.empty((num_packets, num_sc), dtype=complex)
            if self.noise is not None
            else None
        )
        jitters = (
            np.empty(num_packets) if self.rssi_jitter_db > 0 else None
        )
        for p in range(num_packets):
            if gains is not None:
                draws = rng.standard_normal(2 * num_paths)
                gains.real[p] = specular + sigma * draws[0::2]
                gains.imag[p] = sigma * draws[1::2]
            if noise_rows is not None:
                noise_rows[p] = self.noise.sample_subcarrier_noise(
                    num_sc, rng
                )
            if jitters is not None:
                jitters[p] = rng.normal(0.0, self.rssi_jitter_db)

        csi = np.zeros((num_packets, num_sc), dtype=complex)
        for idx, component in enumerate(paths):
            phase = np.exp(-2j * np.pi * freqs * component.delay_s)
            if gains is not None:
                coeff = amplitudes[idx] * gains[:, idx]
                csi += coeff[:, np.newaxis] * phase
            else:
                csi += amplitudes[idx] * phase
        if noise_rows is not None:
            csi += noise_rows
        rssi = self._report_rssi_batch(csi, jitters)
        return [
            CSIMeasurement(csi[p], self.ofdm, rssi[p])
            for p in range(num_packets)
        ]

    def _report_rssi_batch(
        self, csi: np.ndarray, jitters: np.ndarray | None
    ) -> list[float]:
        """Vectorized :meth:`_report_rssi` over a ``(packets, sc)`` batch.

        ``np.round`` matches the scalar path's ``round`` (both
        round-half-even), and per-row sums reduce in the same order as
        the scalar 1-D sums, so reported values are bit-identical.
        """
        power_mw = np.sum(np.abs(csi) ** 2, axis=1)
        power_mw = np.maximum(power_mw, 1e-30)
        dbm = 10.0 * np.log10(power_mw)
        if jitters is not None:
            dbm = dbm + jitters
        if self.rssi_quantization_db > 0:
            dbm = (
                np.round(dbm / self.rssi_quantization_db)
                * self.rssi_quantization_db
            )
        return [float(v) for v in dbm]
