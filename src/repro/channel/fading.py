"""Small-scale fading models applied per packet.

Each multipath component's complex gain fluctuates packet-to-packet because
of micro-motion in the environment.  The direct path of a LOS link fades
Rician (a strong deterministic component plus diffuse energy); blocked
direct paths and all reflections/scatter fade Rayleigh-like (low K).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .multipath import PathComponent, PathKind

__all__ = ["FadingModel", "rician_gain"]


def rician_gain(k_factor: float, rng: np.random.Generator) -> complex:
    """One complex Rician fading gain with unit mean power.

    ``k_factor`` is the linear Rician K (ratio of specular to diffuse
    power).  ``K -> inf`` is no fading; ``K = 0`` is Rayleigh.
    """
    if k_factor < 0:
        raise ValueError("K factor must be non-negative")
    specular = math.sqrt(k_factor / (k_factor + 1.0))
    sigma = math.sqrt(1.0 / (2.0 * (k_factor + 1.0)))
    return complex(
        specular + sigma * rng.standard_normal(),
        sigma * rng.standard_normal(),
    )


@dataclass(frozen=True, slots=True)
class FadingModel:
    """Per-component Rician K factors, in linear units.

    Attributes
    ----------
    k_direct_los:
        K of an unobstructed direct path (strongly specular).
    k_direct_nlos:
        K of a direct path that penetrates walls/obstacles.
    k_reflected:
        K of specular reflections.
    k_scattered:
        K of diffuse scatter (essentially Rayleigh).
    """

    k_direct_los: float = 12.0
    k_direct_nlos: float = 1.5
    k_reflected: float = 2.0
    k_scattered: float = 0.2

    def __post_init__(self) -> None:
        for name in ("k_direct_los", "k_direct_nlos", "k_reflected", "k_scattered"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def k_for(self, component: PathComponent) -> float:
        """Rician K appropriate for a traced path component."""
        if component.kind is PathKind.DIRECT:
            return self.k_direct_nlos if component.blocked else self.k_direct_los
        if component.kind is PathKind.REFLECTED:
            return self.k_reflected
        return self.k_scattered

    def sample_gain(
        self, component: PathComponent, rng: np.random.Generator
    ) -> complex:
        """Draw this packet's complex fading gain for ``component``."""
        return rician_gain(self.k_for(component), rng)
