"""Link-level simulator: floor plan + tracer + CSI synthesis, with caching.

One :class:`LinkSimulator` wraps a venue.  Path traces are deterministic
per endpoint pair and cached, so generating thousands of packets per site
costs one trace plus cheap per-packet fading/noise draws — mirroring how
the real prototype pings "thousands of packages at each site".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..geometry import Point

if TYPE_CHECKING:  # avoid a channel <-> environment import cycle
    from ..environment.floorplan import FloorPlan
from .cir import DelayProfile, delay_profile
from .csi import CSIMeasurement, CSISynthesizer
from .multipath import PathComponent, TraceConfig, trace_paths
from .shadowing import ShadowingModel

__all__ = ["LinkSimulator"]


@dataclass
class LinkSimulator:
    """Generates CSI measurements between arbitrary points of a venue.

    Attributes
    ----------
    plan:
        The floor plan radio paths are traced through.
    synthesizer:
        CSI synthesis parameters (TX power, fading, noise, OFDM layout).
    trace_config:
        Multipath tracer options.
    shadowing:
        Optional spatially correlated shadowing field applied per link.
    """

    plan: FloorPlan
    synthesizer: CSISynthesizer = field(default_factory=CSISynthesizer)
    trace_config: TraceConfig = field(default_factory=TraceConfig)
    shadowing: ShadowingModel | None = None
    _trace_cache: dict[tuple[float, float, float, float], list[PathComponent]] = field(
        default_factory=dict, repr=False
    )

    def paths(self, tx: Point, rx: Point) -> list[PathComponent]:
        """Traced multipath components for one link (cached).

        When a shadowing model is attached, the link's (time-invariant)
        shadowing offset is folded into every component's excess loss.
        """
        key = (tx.x, tx.y, rx.x, rx.y)
        cached = self._trace_cache.get(key)
        if cached is None:
            cached = trace_paths(self.plan, tx, rx, self.trace_config)
            if self.shadowing is not None:
                offset = self.shadowing.link_shadowing_db(tx, rx)
                cached = [
                    PathComponent(
                        kind=c.kind,
                        length_m=c.length_m,
                        delay_s=c.delay_s,
                        excess_loss_db=c.excess_loss_db + offset,
                        bounces=c.bounces,
                        blocked=c.blocked,
                    )
                    for c in cached
                ]
            self._trace_cache[key] = cached
        return cached

    def is_los(self, tx: Point, rx: Point) -> bool:
        """True when the direct path between the endpoints is clear."""
        return self.plan.is_los(tx, rx)

    def measure(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> CSIMeasurement:
        """One packet's CSI snapshot on the ``tx -> rx`` link."""
        return self.synthesizer.synthesize(self.paths(tx, rx), rng, with_fading)

    def measure_batch(
        self,
        tx: Point,
        rx: Point,
        num_packets: int,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> list[CSIMeasurement]:
        """Independent CSI snapshots for ``num_packets`` packets."""
        return self.synthesizer.synthesize_batch(
            self.paths(tx, rx), num_packets, rng, with_fading
        )

    def measure_delay_profile(
        self,
        tx: Point,
        rx: Point,
        rng: np.random.Generator,
        with_fading: bool = True,
    ) -> DelayProfile:
        """One packet's power delay profile on the link (Fig. 3 view)."""
        return delay_profile(self.measure(tx, rx, rng, with_fading))

    def clear_cache(self) -> None:
        """Drop cached traces (call after mutating the floor plan)."""
        self._trace_cache.clear()
