"""RF material properties for walls and obstacles.

Penetration and reflection losses at 2.4 GHz, drawn from the usual indoor
propagation literature (values are representative class averages; the
NomLoc experiments only depend on the *ordering* — metal and concrete
block, drywall and glass attenuate mildly).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Material",
    "CONCRETE",
    "BRICK",
    "DRYWALL",
    "GLASS",
    "WOOD",
    "METAL",
    "HUMAN_BODY",
    "MATERIALS",
]


@dataclass(frozen=True, slots=True)
class Material:
    """RF interaction parameters of a building material at 2.4 GHz.

    Attributes
    ----------
    name:
        Identifier used in floor-plan definitions.
    penetration_loss_db:
        One-way transmission loss through a typical thickness, in dB.
    reflection_loss_db:
        Loss applied to a specular reflection off the surface, in dB.
    scatter_loss_db:
        Loss for diffuse scattering off the object (used for clutter).
    """

    name: str
    penetration_loss_db: float
    reflection_loss_db: float
    scatter_loss_db: float

    def __post_init__(self) -> None:
        for field_name in (
            "penetration_loss_db",
            "reflection_loss_db",
            "scatter_loss_db",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


CONCRETE = Material(
    "concrete", penetration_loss_db=12.0, reflection_loss_db=4.0, scatter_loss_db=14.0
)
BRICK = Material(
    "brick", penetration_loss_db=8.0, reflection_loss_db=5.0, scatter_loss_db=15.0
)
DRYWALL = Material(
    "drywall", penetration_loss_db=3.0, reflection_loss_db=8.0, scatter_loss_db=18.0
)
GLASS = Material(
    "glass", penetration_loss_db=2.0, reflection_loss_db=9.0, scatter_loss_db=20.0
)
WOOD = Material(
    "wood", penetration_loss_db=4.0, reflection_loss_db=9.0, scatter_loss_db=18.0
)
METAL = Material(
    "metal", penetration_loss_db=26.0, reflection_loss_db=1.0, scatter_loss_db=8.0
)
HUMAN_BODY = Material(
    "human_body",
    penetration_loss_db=6.5,
    reflection_loss_db=10.0,
    scatter_loss_db=16.0,
)

MATERIALS: dict[str, Material] = {
    m.name: m
    for m in (CONCRETE, BRICK, DRYWALL, GLASS, WOOD, METAL, HUMAN_BODY)
}
