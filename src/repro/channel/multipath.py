"""Image-method multipath tracer over a floor plan.

Produces the set of propagation paths between a transmitter and a receiver:

* the **direct** path (attenuated by every wall/obstacle it penetrates —
  this is what makes a link NLOS),
* **specular reflections** off wall surfaces up to a configurable order
  (mirror-image method), and
* **diffuse scatter** off clutter obstacles (single bounce via the obstacle
  centroid).

Each path carries its geometric length, its propagation delay, and the
total *excess* loss (reflection/scatter/penetration) beyond large-scale
path loss over its length.  Per-packet effects (fading, noise) are applied
later by :mod:`repro.channel.csi`, so a trace is computed once per link and
reused across thousands of packets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..geometry import Point, Segment, segment_intersection_point
from .propagation import PropagationModel

if TYPE_CHECKING:  # avoid a channel <-> environment import cycle
    from ..environment.floorplan import FloorPlan, Obstacle, Wall

__all__ = ["PathKind", "PathComponent", "TraceConfig", "trace_paths"]


class PathKind(enum.Enum):
    """How a path component came to exist."""

    DIRECT = "direct"
    REFLECTED = "reflected"
    SCATTERED = "scattered"


@dataclass(frozen=True, slots=True)
class PathComponent:
    """One resolvable propagation path between TX and RX.

    Attributes
    ----------
    kind:
        Direct, specular reflection, or diffuse scatter.
    length_m:
        Total geometric path length.
    delay_s:
        Propagation delay (``length_m / c``).
    excess_loss_db:
        Reflection + scatter + penetration loss along the path,
        *excluding* the distance-dependent large-scale path loss.
    bounces:
        Number of reflections (0 for the direct path).
    blocked:
        True when the path penetrates at least one wall or obstacle.
    """

    kind: PathKind
    length_m: float
    delay_s: float
    excess_loss_db: float
    bounces: int = 0
    blocked: bool = False

    def received_power_dbm(
        self, tx_power_dbm: float, model: PropagationModel
    ) -> float:
        """Mean received power of this component alone."""
        return model.received_power_dbm(
            tx_power_dbm, self.length_m, self.excess_loss_db
        )


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Knobs for the multipath tracer.

    Attributes
    ----------
    max_reflection_order:
        0 disables reflections, 1 single-bounce, 2 double-bounce.
    include_scatter:
        Add one diffuse component per clutter obstacle.
    min_component_db:
        Components whose excess loss exceeds this are dropped (they would
        be invisible under any realistic noise floor anyway).
    """

    max_reflection_order: int = 2
    include_scatter: bool = True
    min_component_db: float = 80.0

    def __post_init__(self) -> None:
        if self.max_reflection_order not in (0, 1, 2):
            raise ValueError("max_reflection_order must be 0, 1, or 2")
        if self.min_component_db <= 0:
            raise ValueError("min_component_db must be positive")


def trace_paths(
    plan: FloorPlan,
    tx: Point,
    rx: Point,
    config: TraceConfig | None = None,
) -> list[PathComponent]:
    """Trace all resolvable paths from ``tx`` to ``rx`` through ``plan``.

    The direct path is always present (possibly heavily attenuated when
    blocked); reflections and scatter are subject to validity and the
    ``min_component_db`` cutoff.  Components are returned sorted by delay.
    """
    cfg = config or TraceConfig()
    components = [_direct_path(plan, tx, rx)]

    if cfg.max_reflection_order >= 1:
        walls = plan.reflective_walls()
        for wall in walls:
            comp = _first_order_reflection(plan, tx, rx, wall)
            if comp is not None and comp.excess_loss_db <= cfg.min_component_db:
                components.append(comp)
        if cfg.max_reflection_order >= 2:
            for w1 in walls:
                for w2 in walls:
                    if w1 is w2:
                        continue
                    comp = _second_order_reflection(plan, tx, rx, w1, w2)
                    if (
                        comp is not None
                        and comp.excess_loss_db <= cfg.min_component_db
                    ):
                        components.append(comp)

    if cfg.include_scatter:
        for obstacle in plan.obstacles:
            comp = _scatter_path(plan, tx, rx, obstacle)
            if comp is not None and comp.excess_loss_db <= cfg.min_component_db:
                components.append(comp)

    components.sort(key=lambda c: c.delay_s)
    return components


# ----------------------------------------------------------------------
# Path constructors
# ----------------------------------------------------------------------

def _leg_penetration_db(
    plan: FloorPlan,
    leg: Segment,
    skip_walls: tuple[Wall, ...] = (),
    skip_obstacles: tuple[Obstacle, ...] = (),
) -> tuple[float, bool]:
    """Penetration loss of one path leg, skipping the interacting surfaces.

    Returns ``(loss_db, blocked)``.
    """
    loss = 0.0
    blocked = False
    for wall in plan.blocking_walls(leg):
        if any(wall is s for s in skip_walls):
            continue
        loss += wall.material.penetration_loss_db
        blocked = True
    for obstacle in plan.blocking_obstacles(leg):
        if any(obstacle is s for s in skip_obstacles):
            continue
        loss += obstacle.material.penetration_loss_db
        blocked = True
    return loss, blocked


def _direct_path(plan: FloorPlan, tx: Point, rx: Point) -> PathComponent:
    leg = Segment(tx, rx)
    model = PropagationModel()  # delay only; loss handled via length
    loss, blocked = _leg_penetration_db(plan, leg)
    length = leg.length()
    return PathComponent(
        kind=PathKind.DIRECT,
        length_m=length,
        delay_s=model.delay_s(length),
        excess_loss_db=loss,
        bounces=0,
        blocked=blocked,
    )


def _mirror_across_wall(p: Point, wall: Wall) -> Point:
    from ..geometry.mirror import reflect_point

    return reflect_point(p, wall.segment)


def _first_order_reflection(
    plan: FloorPlan, tx: Point, rx: Point, wall: Wall
) -> PathComponent | None:
    image = _mirror_across_wall(tx, wall)
    if image.almost_equals(tx):
        return None  # TX lies on the wall plane; no distinct reflection
    hit = segment_intersection_point(Segment(image, rx), wall.segment)
    if hit is None:
        return None
    if hit.almost_equals(tx) or hit.almost_equals(rx):
        return None
    leg1 = Segment(tx, hit)
    leg2 = Segment(hit, rx)
    loss1, _ = _leg_penetration_db(plan, leg1, skip_walls=(wall,))
    loss2, _ = _leg_penetration_db(plan, leg2, skip_walls=(wall,))
    length = leg1.length() + leg2.length()
    if length <= 1e-9:
        return None
    excess = wall.material.reflection_loss_db + loss1 + loss2
    model = PropagationModel()
    return PathComponent(
        kind=PathKind.REFLECTED,
        length_m=length,
        delay_s=model.delay_s(length),
        excess_loss_db=excess,
        bounces=1,
        blocked=False,
    )


def _second_order_reflection(
    plan: FloorPlan, tx: Point, rx: Point, w1: Wall, w2: Wall
) -> PathComponent | None:
    image1 = _mirror_across_wall(tx, w1)
    if image1.almost_equals(tx):
        return None
    image2 = _mirror_across_wall(image1, w2)
    if image2.almost_equals(image1):
        return None
    hit2 = segment_intersection_point(Segment(image2, rx), w2.segment)
    if hit2 is None:
        return None
    hit1 = segment_intersection_point(Segment(image1, hit2), w1.segment)
    if hit1 is None:
        return None
    if hit1.almost_equals(hit2):
        return None  # degenerate corner case
    legs = [Segment(tx, hit1), Segment(hit1, hit2), Segment(hit2, rx)]
    length = sum(leg.length() for leg in legs)
    if length <= 1e-9:
        return None
    loss = w1.material.reflection_loss_db + w2.material.reflection_loss_db
    skip = (w1, w2)
    for leg in legs:
        if leg.length() <= 1e-9:
            return None
        leg_loss, _ = _leg_penetration_db(plan, leg, skip_walls=skip)
        loss += leg_loss
    model = PropagationModel()
    return PathComponent(
        kind=PathKind.REFLECTED,
        length_m=length,
        delay_s=model.delay_s(length),
        excess_loss_db=loss,
        bounces=2,
        blocked=False,
    )


def _scatter_path(
    plan: FloorPlan, tx: Point, rx: Point, obstacle: Obstacle
) -> PathComponent | None:
    centre = obstacle.scatter_point()
    if centre.almost_equals(tx) or centre.almost_equals(rx):
        return None
    leg1 = Segment(tx, centre)
    leg2 = Segment(centre, rx)
    loss1, _ = _leg_penetration_db(plan, leg1, skip_obstacles=(obstacle,))
    loss2, _ = _leg_penetration_db(plan, leg2, skip_obstacles=(obstacle,))
    length = leg1.length() + leg2.length()
    excess = obstacle.material.scatter_loss_db + loss1 + loss2
    model = PropagationModel()
    return PathComponent(
        kind=PathKind.SCATTERED,
        length_m=length,
        delay_s=model.delay_s(length),
        excess_loss_db=excess,
        bounces=1,
        blocked=False,
    )
