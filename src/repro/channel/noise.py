"""Receiver noise model.

Thermal noise plus receiver noise figure over the 802.11n 20 MHz channel,
applied as complex AWGN on each measured CSI subcarrier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .propagation import dbm_to_mw

__all__ = ["NoiseModel", "thermal_noise_dbm"]


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 6.0) -> float:
    """Noise floor ``-174 dBm/Hz + 10 log10(B) + NF``."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return -174.0 + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Complex AWGN plus optional bursty co-channel interference.

    Attributes
    ----------
    bandwidth_hz:
        Channel bandwidth the noise integrates over.
    noise_figure_db:
        Receiver noise figure.
    burst_probability:
        Probability that a given packet is hit by a co-channel
        interference burst (a neighbouring network transmitting during
        the measurement).  0 disables interference.
    burst_power_dbm:
        In-band power of one interference burst.
    """

    bandwidth_hz: float = 20e6
    noise_figure_db: float = 6.0
    burst_probability: float = 0.0
    burst_power_dbm: float = -70.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst probability must be in [0, 1]")

    @property
    def noise_floor_dbm(self) -> float:
        """Total in-band noise power."""
        return thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db)

    def noise_power_mw(self) -> float:
        """Total in-band noise power in milliwatts."""
        return dbm_to_mw(self.noise_floor_dbm)

    def sample_subcarrier_noise(
        self, num_subcarriers: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Complex noise vector for one CSI snapshot.

        The thermal noise power is spread evenly over the subcarriers; a
        burst (when one hits) adds its own power the same way, corrupting
        the whole snapshot — which is how a colliding transmission looks
        to the channel estimator.
        """
        if num_subcarriers <= 0:
            raise ValueError("need at least one subcarrier")
        power_mw = self.noise_power_mw()
        if self.burst_probability > 0 and rng.uniform() < self.burst_probability:
            power_mw += dbm_to_mw(self.burst_power_dbm)
        sigma = math.sqrt(power_mw / num_subcarriers / 2.0)
        return sigma * (
            rng.standard_normal(num_subcarriers)
            + 1j * rng.standard_normal(num_subcarriers)
        )
