"""Large-scale propagation: free-space and log-distance path loss.

All powers are dBm, all gains/losses dB, all distances metres.  The
log-distance exponent is a property of the venue and is owned by the
:class:`PropagationModel` instance — the NomLoc algorithm itself never sees
it (that is the point of being calibration-free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "SPEED_OF_LIGHT",
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear_amplitude",
    "free_space_path_loss_db",
    "PropagationModel",
]

#: Propagation speed used for delay computation, m/s.
SPEED_OF_LIGHT = 299_792_458.0


def dbm_to_mw(dbm: float) -> float:
    """Convert a power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power in milliwatts to dBm."""
    if mw <= 0:
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * math.log10(mw)


def db_to_linear_amplitude(db: float) -> float:
    """Convert a dB power ratio to a linear *amplitude* ratio."""
    return 10.0 ** (db / 20.0)


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB.

    ``20 log10(4 pi d f / c)``; requires ``distance_m > 0``.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return 20.0 * math.log10(
        4.0 * math.pi * distance_m * frequency_hz / SPEED_OF_LIGHT
    )


@dataclass(frozen=True, slots=True)
class PropagationModel:
    """Log-distance path loss around a free-space reference point.

    ``PL(d) = FSPL(d0) + 10 n log10(d / d0)`` for ``d >= d_min``; distances
    below ``d_min`` are clamped to avoid the near-field singularity.

    Attributes
    ----------
    frequency_hz:
        Carrier frequency (2.412 GHz: 802.11 channel 1).
    path_loss_exponent:
        ``n``; 2.0 in free space, larger indoors.
    reference_distance_m:
        ``d0`` of the model.
    d_min:
        Near-field clamp distance.
    """

    frequency_hz: float = 2.412e9
    path_loss_exponent: float = 2.2
    reference_distance_m: float = 1.0
    d_min: float = 0.3

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError("path loss exponent must be positive")
        if self.reference_distance_m <= 0 or self.d_min <= 0:
            raise ValueError("reference and clamp distances must be positive")

    def path_loss_db(self, distance_m: float) -> float:
        """Large-scale path loss at ``distance_m`` (clamped to ``d_min``)."""
        d = max(distance_m, self.d_min)
        pl0 = free_space_path_loss_db(self.reference_distance_m, self.frequency_hz)
        return pl0 + 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance_m
        )

    def received_power_dbm(
        self, tx_power_dbm: float, distance_m: float, extra_loss_db: float = 0.0
    ) -> float:
        """Received power over a path of the given length and extra losses.

        ``extra_loss_db`` may be negative: correlated shadow fading can
        constructively bias a link above the distance-only prediction.
        """
        return tx_power_dbm - self.path_loss_db(distance_m) - extra_loss_db

    def delay_s(self, distance_m: float) -> float:
        """Propagation delay along a path of the given length."""
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        return distance_m / SPEED_OF_LIGHT
