"""Spatially correlated log-normal shadow fading.

Large-scale shadowing varies slowly over space (Gudmundson's exponential
correlation model): links whose endpoints are near each other see similar
shadowing.  The field is realized lazily on a virtual grid whose node
values are derived deterministically from the (seed, node) pair, so the
field is consistent across queries without storing unbounded state, and a
link's shadowing is stable over time — which is what makes it *shadowing*
rather than fast fading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry import Point

__all__ = ["ShadowingModel"]


@dataclass(frozen=True)
class ShadowingModel:
    """A frozen, spatially correlated shadowing field.

    Attributes
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB (3-6 dB typical
        indoors).
    decorrelation_m:
        Distance at which the field's correlation falls to ``1/e``.
    seed:
        Realization seed; two models with the same seed agree everywhere.
    grid_spacing_m:
        Node spacing of the virtual grid (should be below the
        decorrelation distance).
    """

    sigma_db: float = 3.0
    decorrelation_m: float = 4.0
    seed: int = 0
    grid_spacing_m: float = 2.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma must be non-negative")
        if self.decorrelation_m <= 0 or self.grid_spacing_m <= 0:
            raise ValueError("distances must be positive")

    # ------------------------------------------------------------------
    def _node_value(self, i: int, j: int) -> float:
        """Deterministic N(0,1) draw for grid node ``(i, j)``."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, i & 0xFFFFFFFF, j & 0xFFFFFFFF])
        )
        return float(rng.standard_normal())

    def field_db(self, p: Point) -> float:
        """Shadowing value at one point, in dB (zero-mean)."""
        if self.sigma_db == 0:
            return 0.0
        spacing = self.grid_spacing_m
        ci = math.floor(p.x / spacing)
        cj = math.floor(p.y / spacing)
        reach = max(1, int(math.ceil(self.decorrelation_m / spacing)))
        weights = []
        values = []
        for i in range(ci - reach, ci + reach + 2):
            for j in range(cj - reach, cj + reach + 2):
                node = Point(i * spacing, j * spacing)
                d = p.distance_to(node)
                w = math.exp(-d / self.decorrelation_m)
                weights.append(w)
                values.append(self._node_value(i, j))
        w = np.asarray(weights)
        v = np.asarray(values)
        # Normalize so the field keeps unit variance before scaling.
        return float(self.sigma_db * (w @ v) / math.sqrt(float(w @ w)))

    def link_shadowing_db(self, tx: Point, rx: Point) -> float:
        """Shadowing of one link: the field averaged at both endpoints.

        Averaging two correlated N(0, sigma^2) samples shrinks the
        variance; rescale so links keep the configured sigma.
        """
        if self.sigma_db == 0:
            return 0.0
        a = self.field_db(tx)
        b = self.field_db(rx)
        d = tx.distance_to(rx)
        rho = math.exp(-d / self.decorrelation_m)
        scale = math.sqrt((1.0 + rho) / 2.0)
        if scale <= 0:
            return 0.0
        return (a + b) / 2.0 / scale
