"""Command-line interface for the NomLoc reproduction.

Usage::

    python -m repro scenarios                 # list venues, render maps
    python -m repro locate lab 6.4 4.2        # one localization query
    python -m repro locate lab 6.4 4.2 --static --seed 7
    python -m repro experiment fig8           # run a paper experiment
    python -m repro experiment fig9 --scenario lobby
    python -m repro record lab out.json       # record a measurement campaign
    python -m repro replay out.json           # re-localize it offline
    python -m repro batch-locate lab -n 24    # batch queries through the service
    python -m repro serve lab --queries 50    # simulated serving run + metrics
    python -m repro profile lab -n 6          # per-stage latency breakdown
    python -m repro profile lab --trace-out traces.jsonl
    python -m repro guard --selftest          # guard-layer corruption drill
    python -m repro guard lab --faults nan-burst:0.3:AP2
    python -m repro track lab --objects 4     # streaming tracking sessions
    python -m repro track lab --selftest      # deterministic-replay drill
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NomLoc (ICDCS 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="list built-in venues and render them")

    locate = sub.add_parser("locate", help="run one localization query")
    locate.add_argument("scenario", help="scenario name (lab, lobby)")
    locate.add_argument("x", type=float, help="object x coordinate (m)")
    locate.add_argument("y", type=float, help="object y coordinate (m)")
    locate.add_argument(
        "--static", action="store_true", help="pin the nomadic AP at home"
    )
    locate.add_argument("--seed", type=int, default=0)
    locate.add_argument(
        "--packets", type=int, default=30, help="CSI packets per link"
    )
    locate.add_argument(
        "--no-map", action="store_true", help="skip the ASCII rendering"
    )

    experiment = sub.add_parser(
        "experiment", help="run one paper experiment and print its rows"
    )
    experiment.add_argument(
        "name",
        choices=["fig3", "fig7", "fig8", "fig9", "fig10", "baselines"],
    )
    experiment.add_argument(
        "--scenario", default="lab", help="scenario for per-venue experiments"
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--repetitions", type=int, default=3)
    experiment.add_argument(
        "--packets", type=int, default=15, help="CSI packets per link"
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=0,
        help="campaign worker processes (0 = sequential; results are "
        "bit-identical for any worker count)",
    )

    record = sub.add_parser("record", help="record a measurement campaign")
    record.add_argument("scenario")
    record.add_argument("output", help="output JSON path")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--repetitions", type=int, default=1)
    record.add_argument("--packets", type=int, default=30)

    replay = sub.add_parser("replay", help="re-localize a recorded campaign")
    replay.add_argument("dataset", help="dataset JSON path")
    replay.add_argument(
        "--paper-literal",
        action="store_true",
        help="disable nomadic site-pair constraints (Eq. 13 exactly)",
    )

    heatmap = sub.add_parser(
        "heatmap", help="render a localization-error heatmap of a venue"
    )
    heatmap.add_argument("scenario")
    heatmap.add_argument(
        "--static", action="store_true", help="pin the nomadic AP at home"
    )
    heatmap.add_argument("--spacing", type=float, default=1.5)
    heatmap.add_argument("--packets", type=int, default=8)
    heatmap.add_argument("--seed", type=int, default=0)

    batch = sub.add_parser(
        "batch-locate",
        help="run a batch of queries through the localization service",
    )
    _add_serving_args(batch)
    batch.add_argument(
        "-n", "--count", type=int, default=12, help="number of queries"
    )
    batch.add_argument(
        "--selftest",
        action="store_true",
        help="verify service answers match the direct localizer bit-for-bit",
    )

    serve = sub.add_parser(
        "serve",
        help="simulated serving run: stream queries, report service metrics",
    )
    _add_serving_args(serve)
    serve.add_argument(
        "--queries", type=int, default=48, help="stream length"
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline (s)"
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64, help="in-flight bound"
    )

    cluster = sub.add_parser(
        "cluster",
        help="simulated cluster run: shard + replicate the service, "
        "optionally inject faults, report cluster metrics",
    )
    _add_serving_args(cluster)
    cluster.add_argument(
        "--queries", type=int, default=24, help="number of routed queries"
    )
    cluster.add_argument(
        "--shards", type=int, default=2, help="number of shards"
    )
    cluster.add_argument(
        "--replicas", type=int, default=2, help="replicas per shard"
    )
    cluster.add_argument(
        "--timeout", type=float, default=None, help="per-query deadline (s)"
    )
    cluster.add_argument(
        "--heartbeat-every",
        type=int,
        default=8,
        help="heartbeat sweep every N queries (0 = never)",
    )
    cluster.add_argument(
        "--crash",
        metavar="S:R:AFTER[:UNTIL]",
        action="append",
        default=[],
        help="crash replica R of shard S after the AFTER-th query "
        "(optionally recovering at UNTIL); repeatable",
    )
    cluster.add_argument(
        "--stale",
        metavar="S:R:AFTER[:UNTIL]",
        action="append",
        default=[],
        help="cut replica R of shard S off from topology updates; "
        "repeatable",
    )
    cluster.add_argument(
        "--selftest",
        action="store_true",
        help="verify replica-served answers match a single sequential "
        "service bit-for-bit",
    )

    guard = sub.add_parser(
        "guard",
        help="measurement-fault drill: inject link corruption, report "
        "per-link verdicts and degradation-aware estimates",
    )
    guard.add_argument(
        "scenario", nargs="?", default="lab", help="scenario name (lab, lobby)"
    )
    guard.add_argument(
        "--faults",
        metavar="TYPE:RATE[:AP]",
        action="append",
        default=[],
        help="schedule a link fault (e.g. nan-burst:0.3:AP2, "
        "subcarrier-dropout:0.5, ap-outage:1.0:AP3); repeatable",
    )
    guard.add_argument(
        "--selftest",
        action="store_true",
        help="run the scripted corruption drill and gate on its checks",
    )
    guard.add_argument(
        "--no-gate",
        action="store_true",
        help="run the injector but skip gating (the comparison arm)",
    )
    guard.add_argument("--seed", type=int, default=7)
    guard.add_argument(
        "-n", "--count", type=int, default=6, help="number of queries"
    )
    guard.add_argument(
        "--packets", type=int, default=24, help="CSI packets per link"
    )

    track = sub.add_parser(
        "track",
        help="streaming tracking sessions: walk seeded objects through "
        "the venue, stream their estimates into per-object filters and "
        "zone/geofence sessions, report occupancy analytics",
    )
    _add_serving_args(track)
    track.add_argument(
        "--objects", type=int, default=3, help="number of tracked objects"
    )
    track.add_argument(
        "--steps", type=int, default=10, help="fix ticks per object"
    )
    track.add_argument(
        "--zones",
        metavar="ROWSxCOLS",
        default="2x3",
        help="zone grid partition of the venue (e.g. 2x3)",
    )
    track.add_argument(
        "--filter",
        choices=("kalman", "particle"),
        default="kalman",
        help="per-object motion filter",
    )
    track.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of fixes replaced by a far-off zero-confidence "
        "position (models guard-flagged corruption)",
    )
    track.add_argument(
        "--blind",
        action="store_true",
        help="ignore confidence when setting measurement noise (the "
        "confidence-blind reference arm)",
    )
    track.add_argument(
        "--selftest",
        action="store_true",
        help="deterministic-replay drill: seeded runs must produce "
        "byte-identical event logs, and confidence-modulated filtering "
        "must beat the blind arm under injected corruption",
    )
    track.add_argument(
        "--durable",
        action="store_true",
        help="journal every applied fix to a WAL SQLite session store "
        "with periodic full snapshots (see repro.sessions.durable)",
    )
    track.add_argument(
        "--db",
        default="track.db",
        help="session store path for --durable (default: track.db)",
    )
    track.add_argument(
        "--checkpoint-every",
        type=int,
        default=100,
        metavar="N",
        help="journal entries between full snapshots (--durable)",
    )
    track.add_argument(
        "--group-commit",
        type=int,
        default=16,
        metavar="N",
        help="journal rows per fsynced transaction (--durable)",
    )
    track.add_argument(
        "--kill-after",
        type=int,
        default=0,
        metavar="K",
        help="SIGKILL this process after K applied fixes — the "
        "crash half of the recovery drill (needs --durable)",
    )
    track.add_argument(
        "--resume",
        action="store_true",
        help="recover from the --db store (snapshot + journal replay) "
        "and continue the run where the journal ends",
    )

    gateway = sub.add_parser(
        "gateway",
        help="network front door: asyncio HTTP/WebSocket server with a "
        "durable measurement ledger over a localization cluster",
    )
    gateway.add_argument(
        "scenario", nargs="?", default="lab", help="scenario name (lab, lobby)"
    )
    gateway.add_argument(
        "--serve",
        action="store_true",
        help="serve until SIGTERM/SIGINT (the default action)",
    )
    gateway.add_argument("--host", default="127.0.0.1", help="bind address")
    gateway.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    gateway.add_argument(
        "--db",
        default="gateway.db",
        help="ledger database path (WAL sqlite; ':memory:' disables "
        "durability)",
    )
    gateway.add_argument(
        "--shards", type=int, default=1, help="cluster shards"
    )
    gateway.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard"
    )
    gateway.add_argument(
        "--solver-workers",
        type=int,
        default=2,
        help="solver threads behind the async/sync bridge",
    )
    gateway.add_argument(
        "--replica-workers",
        type=int,
        default=0,
        help="workers inside each replica service (0 = sequential)",
    )
    gateway.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="replica worker kind: 'process' forks workers that share "
        "the warm caches copy-on-write (needs --replica-workers >= 1)",
    )
    gateway.add_argument(
        "--lp-batch",
        type=int,
        default=0,
        help="stack up to N queries' relaxation LPs per replica solve",
    )
    gateway.add_argument(
        "--selftest",
        action="store_true",
        help="in-process client round-trip: socket answers must match the "
        "direct service bit-for-bit, acked ingest must survive a drain",
    )
    gateway.add_argument(
        "--packets", type=int, default=4, help="CSI packets per link (selftest)"
    )
    gateway.add_argument(
        "--load-s",
        type=float,
        default=1.0,
        help="selftest loadgen duration in seconds",
    )
    gateway.add_argument(
        "--p95-bound-s",
        type=float,
        default=2.0,
        help="selftest fails if loadgen p95 latency exceeds this",
    )
    gateway.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser(
        "profile",
        help="trace end-to-end queries and print a per-stage latency table",
    )
    profile.add_argument("scenario", help="scenario name (lab, lobby)")
    profile.add_argument(
        "-n", "--count", type=int, default=6, help="number of queries"
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--packets", type=int, default=8, help="CSI packets per link"
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker threads (0 = sequential reference path)",
    )
    profile.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="also write the raw spans as JSONL",
    )
    return parser


def _add_serving_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the ``batch-locate`` and ``serve`` subcommands."""
    parser.add_argument("scenario", help="scenario name (lab, lobby)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--packets", type=int, default=8, help="CSI packets per link"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker threads (0 = sequential reference path)",
    )
    parser.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="worker kind: 'thread' shares the GIL, 'process' forks "
        "workers that share the warm caches copy-on-write (needs "
        "--workers >= 1)",
    )
    parser.add_argument(
        "--lp-batch",
        type=int,
        default=0,
        help="stack up to N queries' relaxation LPs into one batched "
        "solve (0 = per-query scalar solves)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the topology/bisector caches",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing; metrics include per-stage aggregates",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "scenarios": _cmd_scenarios,
        "locate": _cmd_locate,
        "experiment": _cmd_experiment,
        "record": _cmd_record,
        "replay": _cmd_replay,
        "heatmap": _cmd_heatmap,
        "batch-locate": _cmd_batch_locate,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "guard": _cmd_guard,
        "track": _cmd_track,
        "gateway": _cmd_gateway,
        "profile": _cmd_profile,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .environment import SCENARIOS, get_scenario
    from .viz import render_scenario

    for name in sorted(SCENARIOS):
        scenario = get_scenario(name)
        nomadic = ", ".join(ap.name for ap in scenario.nomadic_aps)
        print(
            f"== {name}: {scenario.plan.boundary.area():.0f} m^2, "
            f"{len(scenario.aps)} APs (nomadic: {nomadic}), "
            f"{len(scenario.test_sites)} test sites, "
            f"clutter {scenario.plan.clutter_density():.0%} =="
        )
        print(render_scenario(scenario, width=72))
        print()
    return 0


def _cmd_locate(args: argparse.Namespace) -> int:
    from .core import NomLocSystem, SystemConfig
    from .environment import get_scenario
    from .geometry import Point
    from .viz import render_scenario

    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    truth = Point(args.x, args.y)
    if not scenario.plan.contains(truth):
        print(
            f"error: ({args.x}, {args.y}) is outside the {args.scenario} venue",
            file=sys.stderr,
        )
        return 2
    system = NomLocSystem(
        scenario,
        SystemConfig(
            packets_per_link=args.packets, use_nomadic=not args.static
        ),
    )
    estimate = system.locate(truth, np.random.default_rng(args.seed))
    mode = "static" if args.static else "nomadic"
    print(
        f"{mode} estimate: ({estimate.position.x:.2f}, "
        f"{estimate.position.y:.2f}); error "
        f"{estimate.error_to(truth):.2f} m; "
        f"{estimate.num_constraints} constraints, relaxation cost "
        f"{estimate.relaxation_cost:.3f}"
    )
    if not args.no_map:
        print(
            render_scenario(
                scenario,
                width=72,
                truth=truth,
                estimate=estimate.position,
                region=estimate.region,
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .eval import (
        ExperimentConfig,
        baseline_comparison,
        fig3_delay_profiles,
        fig7_pdp_accuracy,
        fig8_slv,
        fig9_error_cdf,
        fig10_position_error,
        format_cdf_table,
        format_delay_profile,
        format_stats_table,
        format_table,
    )

    config = ExperimentConfig(
        repetitions=args.repetitions,
        packets_per_link=args.packets,
        seed=args.seed,
        workers=args.workers,
    )
    if args.name == "fig3":
        result = fig3_delay_profiles(config)
        print(format_delay_profile(result.los_profile, "LOS"))
        print()
        print(format_delay_profile(result.nlos_profile, "NLOS"))
        print(f"\nNLOS/LOS first-tap ratio: {result.first_tap_ratio():.3f}")
    elif args.name == "fig7":
        result = fig7_pdp_accuracy(args.scenario, config)
        rows = [
            [i + 1, acc] for i, acc in enumerate(result.site_accuracies)
        ]
        print(format_table(["position index", "PDP accuracy"], rows))
        print(f"\nmean accuracy: {result.mean_accuracy:.3f}")
    elif args.name == "fig8":
        result = fig8_slv(config)
        rows = [
            [scen, mode, result.slv[scen][mode], result.stats[scen][mode].mean]
            for scen in result.slv
            for mode in ("static", "nomadic")
        ]
        print(format_table(["scenario", "deployment", "SLV", "mean err(m)"], rows))
    elif args.name == "fig9":
        result = fig9_error_cdf(args.scenario, config)
        print(
            format_cdf_table(
                {"static": result.static_cdf, "nomadic": result.nomadic_cdf}
            )
        )
    elif args.name == "fig10":
        result = fig10_position_error(args.scenario, config)
        print(
            format_cdf_table(
                {f"ER={er:.0f}": cdf for er, cdf in sorted(result.cdfs.items())}
            )
        )
    else:  # baselines
        print(format_stats_table(baseline_comparison(args.scenario, config)))
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .core import NomLocSystem, SystemConfig
    from .data import record_dataset
    from .environment import get_scenario

    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=args.packets)
    )
    dataset = record_dataset(
        system, repetitions=args.repetitions, seed=args.seed
    )
    dataset.save(args.output)
    print(
        f"recorded {len(dataset)} queries over {len(scenario.test_sites)} "
        f"sites -> {args.output}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .core import LocalizerConfig
    from .data import Dataset, replay_dataset
    from .eval import ErrorStats

    try:
        dataset = Dataset.load(args.dataset)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = (
        LocalizerConfig(include_nomadic_pairs=False)
        if args.paper_literal
        else None
    )
    errors = replay_dataset(dataset, config)
    stats = ErrorStats.from_errors(errors)
    print(
        f"{len(errors)} queries: mean {stats.mean:.2f} m, median "
        f"{stats.median:.2f} m, p90 {stats.p90:.2f} m, SLV {stats.slv:.2f}"
    )
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from .core import NomLocSystem, SystemConfig
    from .environment import get_scenario
    from .viz import render_heatmap

    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system = NomLocSystem(
        scenario,
        SystemConfig(
            packets_per_link=args.packets, use_nomadic=not args.static
        ),
    )

    def sample(p):
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [args.seed, int(p.x * 100), int(p.y * 100)]
            )
        )
        return system.localization_error(p, rng)

    mode = "static" if args.static else "nomadic"
    print(f"{mode} deployment localization error over a "
          f"{args.spacing} m grid:")
    hm = render_heatmap(
        scenario.plan, sample, grid_spacing_m=args.spacing, width=72
    )
    print(hm.text)
    print(hm.legend())
    values = list(hm.values)
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    print(f"mean error {mean:.2f} m, SLV {var:.2f}")
    return 0


def _serving_setup(args: argparse.Namespace):
    """Scenario + measurement system + seeded query generator, shared by
    the ``batch-locate`` and ``serve`` commands."""
    from .core import NomLocSystem, SystemConfig
    from .environment import get_scenario

    scenario = get_scenario(args.scenario)
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=args.packets)
    )

    def queries(count: int):
        sites = scenario.test_sites
        for i in range(count):
            site = sites[i % len(sites)]
            rng = np.random.default_rng(
                np.random.SeedSequence([args.seed, i])
            )
            yield site, tuple(system.gather_anchors(site, rng))

    return scenario, system, queries


def _print_metrics(snapshot: dict) -> None:
    """Render a service metrics snapshot as aligned key/value lines."""
    print(
        f"  throughput {snapshot['throughput_qps']:.1f} q/s | latency "
        f"p50 {snapshot['latency_p50_s'] * 1e3:.1f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.1f} ms | "
        f"completed {snapshot['completed']}, degraded "
        f"{snapshot['degraded']}, rejected {snapshot['rejected']}"
    )
    print(
        f"  queue wait p50 {snapshot['queue_wait_p50_s'] * 1e3:.2f} ms, "
        f"p95 {snapshot['queue_wait_p95_s'] * 1e3:.2f} ms "
        f"(mean {snapshot['queue_wait_mean_s'] * 1e3:.2f} ms)"
    )
    topo = snapshot.get("topology_cache")
    if topo is not None:
        print(
            f"  topology cache: {topo['hits']} hits / "
            f"{topo['misses']} misses (rate {topo['hit_rate']:.0%})"
        )
    bis = snapshot.get("bisector_cache")
    if bis is not None:
        print(
            f"  bisector cache: {bis['hits']} hits / "
            f"{bis['misses']} misses (rate {bis['hit_rate']:.0%})"
        )
    spans = snapshot.get("spans")
    if spans:
        from .obs import format_stage_table

        print("  stage breakdown:")
        for line in format_stage_table(spans).splitlines():
            print(f"    {line}")


def _trace_tracer(args: argparse.Namespace):
    """Install a fresh tracer when ``--trace`` was given (else no-op)."""
    if not getattr(args, "trace", False):
        return None
    from . import obs

    return obs.enable()


def _cmd_batch_locate(args: argparse.Namespace) -> int:
    from .serving import LocalizationService, ServingConfig

    try:
        if args.count < 1:
            raise ValueError("--count must be at least 1")
        scenario, system, queries = _serving_setup(args)
        config = ServingConfig(
            max_workers=args.workers,
            worker_mode=args.worker_mode,
            lp_batch=args.lp_batch,
            cache_topologies=not args.no_cache,
            cache_bisectors=not args.no_cache,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _trace_tracer(args)
    batch = list(queries(args.count))
    # Metrics are flushed in ``finally``: a SIGINT (KeyboardInterrupt)
    # mid-batch still reports whatever the service completed, instead of
    # discarding the run's observability with the traceback.
    responses = []
    interrupted = False
    service = LocalizationService(scenario.plan.boundary, config=config)
    try:
        responses = service.batch([anchors for _, anchors in batch])
    except KeyboardInterrupt:
        interrupted = True
        print("interrupted; flushing service metrics", file=sys.stderr)
    finally:
        snapshot = service.metrics_snapshot()
        service.close()
    errors = []
    for (truth, _), resp in zip(batch, responses):
        errors.append(resp.error_to(truth))
        flag = f" [degraded: {resp.reason}]" if resp.degraded else ""
        print(
            f"  ({truth.x:5.2f}, {truth.y:5.2f}) -> "
            f"({resp.position.x:5.2f}, {resp.position.y:5.2f})  "
            f"err {errors[-1]:5.2f} m  "
            f"{resp.latency_s * 1e3:6.1f} ms{flag}"
        )
    if errors:
        print(f"{len(responses)} queries, mean error "
              f"{sum(errors) / len(errors):.2f} m")
    _print_metrics(snapshot)
    if interrupted:
        return 130
    if args.selftest:
        mismatches = _serving_selftest(scenario, batch, responses)
        if mismatches:
            print(f"SELFTEST FAIL: {mismatches} mismatching queries",
                  file=sys.stderr)
            return 1
        print("SELFTEST OK: service answers identical to direct localizer")
    return 0


def _serving_selftest(scenario, batch, responses) -> int:
    """Count service answers differing from the direct localizer path."""
    from .core import NomLocLocalizer

    localizer = NomLocLocalizer(scenario.plan.boundary)
    mismatches = 0
    for (_, anchors), resp in zip(batch, responses):
        direct = localizer.locate(anchors)
        if resp.degraded or resp.position != direct.position:
            mismatches += 1
    return mismatches


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import LocalizationService, ServingConfig

    try:
        if args.queries < 1:
            raise ValueError("--queries must be at least 1")
        scenario, system, queries = _serving_setup(args)
        config = ServingConfig(
            max_workers=args.workers,
            worker_mode=args.worker_mode,
            lp_batch=args.lp_batch,
            queue_capacity=args.queue_capacity,
            timeout_s=args.timeout,
            cache_topologies=not args.no_cache,
            cache_bisectors=not args.no_cache,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _trace_tracer(args)
    mode = (
        f"{args.workers} {args.worker_mode} workers"
        if args.workers
        else "sequential"
    )
    if args.lp_batch > 1:
        mode += f", lp-batch {args.lp_batch}"
    print(
        f"serving {args.queries} queries against {scenario.name} "
        f"({mode}, queue capacity {config.queue_capacity})"
    )
    truths = []
    errors = []
    interrupted = False
    service = LocalizationService(scenario.plan.boundary, config=config)
    try:
        stream = queries(args.queries)

        def requests():
            for truth, anchors in stream:
                truths.append(truth)
                yield anchors

        for resp in service.serve(requests()):
            truth = truths[len(errors)]
            errors.append(resp.error_to(truth))
    except KeyboardInterrupt:
        # SIGINT mid-stream: stop ingesting, but still flush and report
        # the metrics of everything served so far.
        interrupted = True
        print("interrupted; flushing service metrics", file=sys.stderr)
    finally:
        snapshot = service.metrics_snapshot()
        service.close()
    if errors:
        print(f"served {len(errors)} queries, mean error "
              f"{sum(errors) / len(errors):.2f} m")
    _print_metrics(snapshot)
    return 130 if interrupted else 0


def _parse_fault_specs(specs, kind):
    """``S:R:AFTER[:UNTIL]`` strings → one merged :class:`FaultPlan`."""
    from .cluster import FaultPlan

    plan = FaultPlan()
    builder = {"crash": FaultPlan.crash, "stale": FaultPlan.stale_topology}[
        kind
    ]
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad --{kind} spec {spec!r} (want S:R:AFTER[:UNTIL])"
            )
        shard, replica, after = (int(p) for p in parts[:3])
        until = int(parts[3]) if len(parts) == 4 else None
        plan = plan.plus(builder(shard, replica, after, until))
    return plan


def _print_cluster_metrics(snapshot: dict) -> None:
    """Render a cluster metrics snapshot as aligned key/value lines."""
    print(
        f"  availability {snapshot['availability']:.1%} "
        f"({snapshot['answered']}/{snapshot['routed']} answered, "
        f"{snapshot['unavailable']} unavailable) | "
        f"degraded {snapshot['degraded']} "
        f"(stale {snapshot['stale_flagged']})"
    )
    print(
        f"  failovers {snapshot['failovers']}, retries "
        f"{snapshot['retries']} (denied {snapshot['retry_denied']}), "
        f"hedges {snapshot['hedges']}, heartbeat rounds "
        f"{snapshot['heartbeat_rounds']}"
    )
    print(
        f"  latency p50 {snapshot['latency_p50_s'] * 1e3:.1f} ms, "
        f"p95 {snapshot['latency_p95_s'] * 1e3:.1f} ms | "
        f"throughput {snapshot['throughput_qps']:.1f} q/s"
    )
    fleet = snapshot["services"]
    print(
        f"  fleet: {fleet['replica_count']} replicas, "
        f"{fleet['completed']} queries served, "
        f"cache hit rate {fleet['cache_hit_rate']:.0%}, "
        f"shed {fleet['queue_rejected_total']}"
    )
    states = ", ".join(
        f"{rid}={state}" for rid, state in sorted(snapshot["states"].items())
    )
    print(f"  states: {states}")
    spans = snapshot.get("spans")
    if spans:
        from .obs import format_stage_table

        print("  stage breakdown:")
        for line in format_stage_table(spans).splitlines():
            print(f"    {line}")


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig, LocalizationCluster
    from .serving import ServingConfig

    try:
        if args.queries < 1:
            raise ValueError("--queries must be at least 1")
        scenario, system, queries = _serving_setup(args)
        plan = _parse_fault_specs(args.crash, "crash").plus(
            _parse_fault_specs(args.stale, "stale")
        )
        config = ClusterConfig(
            num_shards=args.shards,
            replicas_per_shard=args.replicas,
            heartbeat_every=args.heartbeat_every,
            serving=ServingConfig(
                max_workers=args.workers,
                worker_mode=args.worker_mode,
                lp_batch=args.lp_batch,
                timeout_s=args.timeout,
                cache_topologies=not args.no_cache,
                cache_bisectors=not args.no_cache,
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _trace_tracer(args)
    faulted = f", {len(plan.faults)} faults scripted" if plan.faults else ""
    print(
        f"cluster of {args.shards} shard(s) x {args.replicas} replica(s) "
        f"serving {args.queries} queries against {scenario.name}{faulted}"
    )
    batch = list(queries(args.queries))
    responses = []
    interrupted = False
    cluster = LocalizationCluster(
        scenario.plan.boundary, config=config, fault_plan=plan
    )
    try:
        responses = cluster.batch([anchors for _, anchors in batch])
    except KeyboardInterrupt:
        interrupted = True
        print("interrupted; flushing cluster metrics", file=sys.stderr)
        snapshot = cluster.metrics_snapshot()
    else:
        snapshot = cluster.metrics_snapshot()
    finally:
        cluster.close()
    errors = [
        resp.error_to(truth) for (truth, _), resp in zip(batch, responses)
    ]
    if errors:
        degraded = sum(1 for r in responses if r.degraded)
        print(
            f"{len(responses)} queries routed, mean error "
            f"{sum(errors) / len(errors):.2f} m, {degraded} flagged degraded"
        )
    _print_cluster_metrics(snapshot)
    if interrupted:
        return 130
    if args.selftest:
        mismatches = _cluster_selftest(scenario, batch, responses)
        if mismatches:
            print(
                f"SELFTEST FAIL: {mismatches} mismatching queries",
                file=sys.stderr,
            )
            return 1
        print(
            "SELFTEST OK: replica-served answers identical to a single "
            "sequential service"
        )
    return 0


def _cluster_selftest(scenario, batch, responses) -> int:
    """Count replica-served answers differing from the direct localizer.

    Fallback answers (``reason == "unavailable"``) are exempt — they are
    flagged as not being SP estimates — but *stale or degraded* replica
    answers must still match what the localizer computes, since staleness
    only flags the topology version, never changes the solve.
    """
    from .core import NomLocLocalizer

    localizer = NomLocLocalizer(scenario.plan.boundary)
    mismatches = 0
    for (_, anchors), resp in zip(batch, responses):
        if resp.reason == "unavailable":
            continue
        direct = localizer.locate(anchors)
        if resp.estimate is None or resp.position != direct.position:
            mismatches += 1
    return mismatches


def _cmd_guard(args: argparse.Namespace) -> int:
    from .core import NomLocSystem, SystemConfig
    from .environment import get_scenario
    from .guard import (
        GuardedSystem,
        InsufficientLinksError,
        LinkFaultInjector,
        LinkFaultPlan,
        parse_fault_spec,
        run_selftest,
    )

    if args.selftest:
        result = run_selftest(seed=args.seed)
        for check in result["checks"]:
            mark = "ok " if check["passed"] else "FAIL"
            print(f"  [{mark}] {check['name']}: {check['detail']}")
        if not result["passed"]:
            print("GUARD SELFTEST FAIL", file=sys.stderr)
            return 1
        print("GUARD SELFTEST OK: all corruption drills detected and gated")
        return 0

    try:
        if args.count < 1:
            raise ValueError("--count must be at least 1")
        scenario = get_scenario(args.scenario)
        plan = LinkFaultPlan(
            tuple(parse_fault_spec(spec) for spec in args.faults)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=args.packets)
    )
    guarded = GuardedSystem(
        system,
        injector=LinkFaultInjector(plan, seed=args.seed),
        gate=not args.no_gate,
    )
    mode = "gating OFF" if args.no_gate else "gating ON"
    print(
        f"guard drill over {scenario.name}: {len(plan.faults)} fault(s) "
        f"scheduled, {mode}, {args.count} queries"
    )
    errors = []
    unanswered = 0
    degraded_total = 0
    rejected_total = 0
    sites = scenario.test_sites
    for i in range(args.count):
        truth = sites[i % len(sites)]
        rng = np.random.default_rng(np.random.SeedSequence([args.seed, i]))
        try:
            estimate, gate = guarded.locate_with_result(truth, rng)
        except InsufficientLinksError as exc:
            unanswered += 1
            print(f"  ({truth.x:5.2f}, {truth.y:5.2f}) -> UNANSWERED: {exc}")
            continue
        err = estimate.error_to(truth)
        errors.append(err)
        degraded_total += len(gate.degraded)
        rejected_total += len(gate.rejected)
        flags = []
        if gate.degraded:
            flags.append(f"degraded: {', '.join(gate.degraded)}")
        if gate.rejected:
            flags.append(f"rejected: {', '.join(gate.rejected)}")
        suffix = f"  [{'; '.join(flags)}]" if flags else ""
        print(
            f"  ({truth.x:5.2f}, {truth.y:5.2f}) -> "
            f"({estimate.position.x:5.2f}, {estimate.position.y:5.2f})  "
            f"err {err:5.2f} m  confidence {estimate.confidence:.2f}"
            f"{suffix}"
        )
    if errors:
        print(
            f"{len(errors)} answered ({unanswered} unanswered), mean error "
            f"{sum(errors) / len(errors):.2f} m, {degraded_total} degraded "
            f"link(s), {rejected_total} rejected link(s)"
        )
    return 0


def _parse_zone_grid(spec: str) -> tuple[int, int]:
    """``"2x3"`` → ``(2, 3)``, validating both factors."""
    parts = spec.lower().split("x")
    try:
        rows, cols = (int(p) for p in parts)
    except ValueError:
        raise ValueError(f"--zones must look like ROWSxCOLS, got {spec!r}")
    if rows < 1 or cols < 1:
        raise ValueError("--zones needs at least a 1x1 grid")
    return rows, cols


def _track_run(args: argparse.Namespace, modulate: bool = True) -> dict:
    """One seeded tracking run: objects walk, estimates stream, sessions
    track.  Returns the manager plus per-fix errors and the log digest."""
    from .core import NomLocSystem, SystemConfig
    from .environment import get_scenario
    from .geometry import Point
    from .serving import LocalizationService, ServingConfig
    from .sessions import GeofenceRule, SessionConfig, SessionManager, ZoneMap
    from .tracking import random_trajectory

    rows, cols = _parse_zone_grid(args.zones)
    scenario = get_scenario(args.scenario)
    system = NomLocSystem(
        scenario, SystemConfig(packets_per_link=args.packets)
    )
    plan = scenario.plan
    zones = ZoneMap.grid(plan.boundary, rows, cols)
    # The far corner of the grid doubles as a geofenced demo zone so the
    # drill exercises the alert path whenever a walk wanders into it.
    rules = (GeofenceRule(zone=zones.names()[-1], forbidden=True),)
    session_config = SessionConfig(
        filter_kind=args.filter,
        modulate_noise=modulate,
        idle_timeout_s=max(30.0, 4.0 * args.steps),
        seed=args.seed,
    )
    store = None
    recovery = None
    applied_skip = 0  # fixes already journaled (resume skips them)
    if getattr(args, "durable", False):
        from .sessions import SessionStore
        from .sessions.durable import recover

        store = SessionStore(args.db, group_commit=args.group_commit)
        if getattr(args, "resume", False):
            manager, recovery = recover(
                store,
                zones,
                session_config,
                rules,
                plan=plan,
                checkpoint_every=args.checkpoint_every,
            )
            applied_skip = store.fix_count()
        else:
            manager = SessionManager(
                zones,
                session_config,
                rules,
                plan=plan,
                store=store,
                checkpoint_every=args.checkpoint_every,
            )
    else:
        manager = SessionManager(zones, session_config, rules, plan=plan)
    trajectories = [
        random_trajectory(
            plan,
            np.random.default_rng(
                np.random.SeedSequence([args.seed, 1000 + i])
            ),
            num_waypoints=4,
        )
        for i in range(args.objects)
    ]
    object_ids = [f"obj-{i:03d}" for i in range(args.objects)]
    service = LocalizationService(
        plan.boundary,
        config=ServingConfig(
            max_workers=args.workers,
            worker_mode=args.worker_mode,
            lp_batch=args.lp_batch,
            cache_topologies=not args.no_cache,
            cache_bisectors=not args.no_cache,
        ),
    )
    errors: list[float] = []
    kill_after = getattr(args, "kill_after", 0) or 0
    applied = 0  # fixes applied by THIS process
    try:
        for tick in range(args.steps):
            # Ticks fully covered by the journal need no re-solving —
            # the fix stream is seeded per (tick, object), not
            # sequential, so skipping is exact.
            if (tick + 1) * args.objects <= applied_skip:
                continue
            truths = []
            batch = []
            for i, traj in enumerate(trajectories):
                truth = traj.positions[min(tick, len(traj) - 1)]
                truths.append(truth)
                rng = np.random.default_rng(
                    np.random.SeedSequence([args.seed, tick, i])
                )
                batch.append(tuple(system.gather_anchors(truth, rng)))
            responses = service.batch(batch)
            for i, (truth, resp) in enumerate(zip(truths, responses)):
                if tick * args.objects + i < applied_skip:
                    continue  # journaled by the pre-crash process
                fix, confidence = resp.position, resp.confidence
                crng = np.random.default_rng(
                    np.random.SeedSequence([args.seed, 77, tick, i])
                )
                if args.corrupt and crng.random() < args.corrupt:
                    # A guard-flagged bad fix: way off, zero confidence.
                    angle = crng.random() * 2.0 * np.pi
                    fix = Point(
                        fix.x + 6.0 * np.cos(angle),
                        fix.y + 6.0 * np.sin(angle),
                    )
                    confidence = 0.0
                update, _ = manager.observe(
                    object_ids[i], float(tick), fix, confidence=confidence
                )
                errors.append(update.position.distance_to(truth))
                applied += 1
                if kill_after and applied >= kill_after:
                    # The crash half of the recovery drill: die without
                    # flushing, cleanup, or goodbyes — exactly SIGKILL.
                    os.kill(os.getpid(), signal.SIGKILL)
    finally:
        service.close()
        if store is not None:
            manager.sync()
    result = {
        "manager": manager,
        "zones": zones,
        "errors": errors,
        "digest": manager.event_log.digest(),
        "chain": manager.event_log.chain(),
        "recovery": recovery,
    }
    if store is not None:
        result["store_counts"] = store.counts()
        store.close()
    return result


def _track_selftest(args: argparse.Namespace) -> int:
    """Gate on the session layer's determinism + confidence contracts."""
    first = _track_run(args)
    second = _track_run(args)
    corrupt_args = argparse.Namespace(**vars(args))
    corrupt_args.corrupt = max(args.corrupt, 0.25)
    modulated = _track_run(corrupt_args, modulate=True)
    blind = _track_run(corrupt_args, modulate=False)

    def median(values: list[float]) -> float:
        return sorted(values)[len(values) // 2]

    counts = first["manager"].event_log.counts()
    checks = [
        (
            "seeded replay produces byte-identical event logs",
            first["digest"] == second["digest"],
        ),
        (
            "seeded replay produces identical track errors",
            first["errors"] == second["errors"],
        ),
        (
            "confidence-modulated filtering beats blind under "
            f"{corrupt_args.corrupt:.0%} corruption "
            f"({median(modulated['errors']):.2f} m vs "
            f"{median(blind['errors']):.2f} m median)",
            median(modulated["errors"]) < median(blind["errors"]),
        ),
        (
            "zone events are well-formed (enters >= exits)",
            counts.get("enter", 0) >= counts.get("exit", 0),
        ),
    ]
    for name, passed in checks:
        print(f"  {'ok  ' if passed else 'FAIL'} {name}")
    if all(passed for _, passed in checks):
        print("SELFTEST OK: tracking sessions deterministic and "
              "confidence-aware")
        return 0
    print("SELFTEST FAIL", file=sys.stderr)
    return 1


def _cmd_track(args: argparse.Namespace) -> int:
    from .environment import get_scenario

    try:
        get_scenario(args.scenario)
        _parse_zone_grid(args.zones)
        if args.objects < 1:
            raise ValueError("--objects must be at least 1")
        if args.steps < 2:
            raise ValueError("--steps must be at least 2")
        if not 0.0 <= args.corrupt < 1.0:
            raise ValueError("--corrupt must be in [0, 1)")
        if args.checkpoint_every < 1:
            raise ValueError("--checkpoint-every must be at least 1")
        if args.group_commit < 1:
            raise ValueError("--group-commit must be at least 1")
        if args.kill_after < 0:
            raise ValueError("--kill-after must be non-negative")
        if (args.kill_after or args.resume) and not args.durable:
            raise ValueError("--kill-after/--resume need --durable")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.selftest:
        return _track_selftest(args)
    run = _track_run(args, modulate=not args.blind)
    manager, zones = run["manager"], run["zones"]
    rows, cols = _parse_zone_grid(args.zones)
    arm = "blind" if args.blind else "confidence-modulated"
    print(
        f"tracked {args.objects} object(s) for {args.steps} ticks over a "
        f"{rows}x{cols} zone grid ({args.filter} filter, {arm} noise)"
    )
    if run["recovery"] is not None:
        report = run["recovery"]
        print(
            f"recovered from {args.db}: snapshot@{report.snapshot_seq}, "
            f"{report.replayed} journal entries replayed, "
            f"{report.events} events verified onto the pre-crash chain"
        )
    if "store_counts" in run:
        counts = run["store_counts"]
        print(
            f"session store {args.db}: {counts['journal']} journal rows "
            f"({counts['fixes']} fixes), {counts['snapshots']} snapshot(s)"
        )
    for object_id in manager.object_ids():
        session = manager.session(object_id)
        inside = ", ".join(session.fsm.inside_zones()) or "-"
        print(
            f"  {object_id}: {session.updates} fixes, "
            f"sigma {session.filter.position_sigma_m():.2f} m, "
            f"in [{inside}]"
        )
    errors = sorted(run["errors"])
    print(
        f"track error median {errors[len(errors) // 2]:.2f} m, "
        f"max {errors[-1]:.2f} m over {len(errors)} fixes"
    )
    snapshot = manager.metrics_snapshot()
    event_counts = ", ".join(
        f"{kind}={count}" for kind, count in sorted(snapshot["events"].items())
    ) or "none"
    print(f"events: {event_counts}")
    for zone, stats in snapshot["zones"].items():
        if stats["visits"] == 0:
            continue
        print(
            f"  {zone}: occupancy {stats['occupancy']} "
            f"(peak {stats['peak_occupancy']}), {stats['visits']} visit(s), "
            f"mean dwell {stats['mean_dwell_s']:.1f} s"
        )
    print(f"event log digest {run['digest']}")
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from .environment import get_scenario
    from .gateway import GatewayConfig, GatewayServer
    from .serving import ServingConfig

    try:
        scenario = get_scenario(args.scenario)
        config = GatewayConfig(
            host=args.host,
            port=args.port,
            db_path=args.db,
            num_shards=args.shards,
            replicas_per_shard=args.replicas,
            solver_workers=args.solver_workers,
        )
        serving_config = ServingConfig(
            max_workers=args.replica_workers,
            worker_mode=args.worker_mode,
            lp_batch=args.lp_batch,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.selftest:
        return _gateway_selftest(args, scenario, config, serving_config)

    async def serve() -> None:
        server = GatewayServer(
            scenario.plan.boundary,
            config=config,
            serving_config=serving_config,
        )
        await server.start()
        print(
            f"gateway listening on http://{server.host}:{server.port} "
            f"(scenario {scenario.name}, cluster "
            f"{config.num_shards}x{config.replicas_per_shard}, "
            f"ledger {config.db_path})",
            flush=True,
        )
        await server.serve_forever()
        print("gateway drained cleanly", flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # non-Unix fallback; Unix path drains in-loop
        pass
    return 0


def _gateway_selftest(args, scenario, config, serving_config=None) -> int:
    """In-process round trip over a real socket, gated on bit-exactness.

    Three checks, mirroring the ``cluster --selftest`` conventions:
    answers served over the wire equal the direct service's bit for bit;
    a replayed batch_id re-acks as a duplicate without double-ingesting;
    and after a graceful drain every acked batch has a stored estimate
    (no acknowledged write lost).
    """
    import asyncio
    import tempfile
    from dataclasses import replace as dc_replace
    from pathlib import Path

    from .gateway import (
        AsyncGatewayClient,
        GatewayServer,
        LoadGenConfig,
        MeasurementLedger,
        run_loadgen,
    )
    from .serving import LocalizationService

    _, _, queries = _serving_setup(args)
    batch = list(queries(6))
    anchor_sets = [anchors for _, anchors in batch]

    async def run(db_path: str) -> int:
        test_config = dc_replace(config, port=0, db_path=db_path)
        server = GatewayServer(
            scenario.plan.boundary,
            config=test_config,
            serving_config=serving_config,
        )
        await server.start()
        client = AsyncGatewayClient(server.host, server.port)
        failures = 0
        with LocalizationService(scenario.plan.boundary) as direct:
            for i, anchors in enumerate(anchor_sets):
                wire = await client.locate(anchors, query_id=f"selftest-{i}")
                reference = direct.locate(anchors, query_id=f"selftest-{i}")
                if (
                    wire["degraded"]
                    or wire["position"]["x"] != reference.position.x
                    or wire["position"]["y"] != reference.position.y
                ):
                    failures += 1
        print(
            f"  locate round-trip: {len(anchor_sets)} queries over "
            f"http://{server.host}:{server.port}, {failures} mismatches"
        )
        ack = await client.submit_batch(
            "selftest-batch", anchor_sets[0], object_id="obj", wait=True
        )
        dup = await client.submit_batch(
            "selftest-batch", anchor_sets[0], object_id="obj", wait=True
        )
        if ack["duplicate"] or not dup["duplicate"]:
            print("  FAIL: idempotent replay mis-acked", file=sys.stderr)
            failures += 1
        if dup["estimate"]["position"] != ack["estimate"]["position"]:
            print("  FAIL: replayed ack changed the answer", file=sys.stderr)
            failures += 1
        report = await run_loadgen(
            server.host,
            server.port,
            anchor_sets,
            LoadGenConfig(
                connections=4,
                duration_s=args.load_s,
                mode="measurements",
                batch_prefix="selftest-load",
            ),
        )
        p95_s = report.latency_quantile(95.0)
        print(
            f"  loadgen: {report.completed} batches acked at "
            f"{report.qps:.0f} q/s (p95 {p95_s * 1e3:.1f} ms), "
            f"{report.errors} errors"
        )
        if report.errors or not report.completed:
            print("  FAIL: loadgen campaign hit errors", file=sys.stderr)
            failures += 1
        if p95_s > args.p95_bound_s:
            print(
                f"  FAIL: loadgen p95 {p95_s:.3f}s exceeds the "
                f"{args.p95_bound_s:.3f}s bound",
                file=sys.stderr,
            )
            failures += 1
        await client.close()
        await server.stop()
        with MeasurementLedger(db_path) as ledger:
            lost = [
                bid
                for bid in ["selftest-batch", *report.acked_batch_ids]
                if ledger.get_estimate(bid) is None
            ]
        if lost:
            print(
                f"  FAIL: {len(lost)} acked batches lost across drain",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(
                f"  drain durability: {1 + len(report.acked_batch_ids)} "
                "acked batches all answered in the ledger"
            )
        return failures

    with tempfile.TemporaryDirectory() as tmp:
        failures = asyncio.run(run(str(Path(tmp) / "selftest.db")))
    if failures:
        print(f"SELFTEST FAIL: {failures} failing checks", file=sys.stderr)
        return 1
    print(
        "SELFTEST OK: socket answers identical to direct service; "
        "acked ingest survived the drain"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import dump_jsonl, format_stage_table, profile_scenario

    try:
        if args.count < 1:
            raise ValueError("--count must be at least 1")
        result = profile_scenario(
            args.scenario,
            queries=args.count,
            packets=args.packets,
            seed=args.seed,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"profiled {len(result.errors_m)} queries over {args.scenario} "
        f"({args.packets} packets/link, seed {args.seed}): mean error "
        f"{sum(result.errors_m) / len(result.errors_m):.2f} m"
    )
    print()
    print(format_stage_table(result.stages()))
    print()
    # The stage table above already covers the "spans" aggregate.
    metrics = {k: v for k, v in result.metrics.items() if k != "spans"}
    _print_metrics(metrics)
    if args.trace_out:
        written = dump_jsonl(result.spans, args.trace_out)
        print(f"wrote {written} spans -> {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
