"""Cluster layer: sharded, replicated, fault-tolerant localization.

The distribution story over :mod:`repro.serving` (see DESIGN.md,
"Cluster architecture"): a :class:`LocalizationCluster` runs a fleet of
:class:`~repro.serving.LocalizationService` replicas behind a
deterministic consistent-hash router.  Topology keys pin each venue's
queries to one shard (hot constraint caches), N-way replica groups give
each shard redundancy, a heartbeat-driven health state machine feeds
automatic failover, and budget-capped retries with backoff + optional
hedging bound the blast radius of a dying replica.  A scripted
:class:`FaultPlan` injects crashes, latency spikes, queue-full storms
and stale-topology windows so all of it is provable:

* no faults → answers **bit-identical** to one sequential service, for
  any shard/replica count;
* faults → availability degrades gracefully and every non-fresh answer
  is flagged, never silently wrong.
"""

from .cluster import (
    ClusterConfig,
    ClusterReplica,
    ClusterResponse,
    LocalizationCluster,
)
from .faults import Fault, FaultInjector, FaultKind, FaultPlan, ReplicaCrashed
from .health import HealthMonitor, ReplicaState
from .metrics import ClusterMetrics, merge_service_snapshots
from .retry import RetryBudget, RetryPolicy, backoff_s
from .router import ShardRouter, route_key, stable_hash

__all__ = [
    "backoff_s",
    "ClusterConfig",
    "ClusterMetrics",
    "ClusterReplica",
    "ClusterResponse",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HealthMonitor",
    "LocalizationCluster",
    "merge_service_snapshots",
    "ReplicaCrashed",
    "ReplicaState",
    "RetryBudget",
    "RetryPolicy",
    "route_key",
    "ShardRouter",
    "stable_hash",
]
