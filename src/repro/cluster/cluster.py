"""`LocalizationCluster`: sharded, replicated, fault-tolerant serving.

A fleet of :class:`~repro.serving.LocalizationService` replicas behind a
deterministic router.  Queries are consistent-hashed by topology key
(:func:`~repro.cluster.router.route_key`) onto shards so each shard's
constraint caches stay hot; each shard is an N-way replica group with
heartbeat-driven health states, automatic failover, budget-capped
retries with exponential backoff, and optional hedged requests.

The contract that makes all of this verifiable:

* **No faults injected** → cluster answers are *bit-identical* to a
  single sequential :class:`~repro.serving.LocalizationService`, for any
  shard/replica count.  Every replica runs the same deterministic
  pipeline, and routing/failover only choose *which* replica computes —
  never *what* it computes.
* **Faults injected** → availability degrades gracefully (failover,
  retry, hedging, weighted-centroid fallback) and every answer that is
  not the full fresh SP estimate is **flagged** (``degraded`` +
  ``reason``), never silently wrong.  Stale-topology answers — a replica
  that missed a nomadic-AP move — are flagged ``"stale-topology"``.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..core import Anchor, LocalizerConfig, LocationEstimate
from ..geometry import Point, Polygon
from ..obs import aggregate, get_tracer, span
from ..serving import (
    LocalizationRequest,
    LocalizationResponse,
    LocalizationService,
    QueueFullError,
    ServingConfig,
    weighted_centroid,
)
from ..serving.cache import LocalizerCache
from ..serving.metrics import json_safe
from .faults import FaultInjector, FaultPlan, ReplicaCrashed
from .health import HealthMonitor, ReplicaState
from .metrics import ClusterMetrics, merge_service_snapshots
from .retry import RetryBudget, RetryPolicy, backoff_s
from .router import ShardRouter, route_key

__all__ = [
    "ClusterConfig",
    "ClusterReplica",
    "ClusterResponse",
    "LocalizationCluster",
]

#: Failures the router fails over on; anything else is a programming
#: error and propagates.
_FAILOVER_ERRORS = (ReplicaCrashed, QueueFullError, TimeoutError)


@dataclass(frozen=True)
class ClusterConfig:
    """Operational knobs of a :class:`LocalizationCluster`.

    Attributes
    ----------
    num_shards / replicas_per_shard / vnodes_per_shard:
        Fleet shape (see :class:`~repro.cluster.router.ShardRouter`).
    retry:
        Per-query :class:`~repro.cluster.retry.RetryPolicy` (backoff,
        hedging, budget).
    serving:
        Per-replica :class:`~repro.serving.ServingConfig`; the default
        sequential config is the bit-exactness reference.
    suspect_after / dead_after / rejoin_after:
        Health state-machine thresholds
        (see :class:`~repro.cluster.health.HealthMonitor`).
    heartbeat_every:
        Run a heartbeat sweep every N routed queries (``0`` = only when
        :meth:`LocalizationCluster.heartbeat` is called explicitly).
        Count-based, not time-based, so drills are deterministic.
    seed:
        Seed of the backoff-jitter RNG (timing only, never results).
    latency_window:
        Size of the cluster-level latency reservoir.
    """

    num_shards: int = 1
    replicas_per_shard: int = 1
    vnodes_per_shard: int = 64
    retry: RetryPolicy = RetryPolicy()
    serving: ServingConfig = ServingConfig()
    suspect_after: int = 1
    dead_after: int = 3
    rejoin_after: int = 2
    heartbeat_every: int = 0
    seed: int = 0
    latency_window: int = 2048

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be positive")
        if self.heartbeat_every < 0:
            raise ValueError("heartbeat_every must be non-negative")
        if self.latency_window < 1:
            raise ValueError("latency_window must be positive")
        # suspect/dead/rejoin thresholds are validated by HealthMonitor.


@dataclass(frozen=True)
class ClusterResponse:
    """Outcome of one routed query.

    ``position`` is always present.  ``degraded`` is True whenever the
    answer is anything but the full, fresh SP estimate — a replica-level
    degradation (``reason`` ``"timeout"``/``"lp-failure"``), a stale
    topology view (``"stale-topology"``, estimate kept but flagged), or
    the all-replicas-down weighted-centroid fallback (``"unavailable"``,
    ``estimate is None``).
    """

    query_id: str
    position: Point
    estimate: LocationEstimate | None
    degraded: bool = False
    reason: str = ""
    shard: int = 0
    replica: int | None = None
    attempts: int = 1
    failovers: int = 0
    hedged: bool = False
    cache_hit: bool = False
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when a replica served the full fresh SP estimate."""
        return not self.degraded

    @property
    def confidence(self) -> float:
        """Measurement-layer confidence of the routed answer.

        Mirrors :attr:`repro.serving.LocalizationResponse.confidence`:
        the estimate's guard confidence, or 0.0 when the cluster fell
        back to the weighted centroid (``estimate is None``) — so the
        session layer and wire payloads read one field regardless of
        which serving tier answered.
        """
        return self.estimate.confidence if self.estimate is not None else 0.0

    def error_to(self, truth: Point) -> float:
        """Euclidean error of the served position against ground truth."""
        return self.position.distance_to(truth)


class ClusterReplica:
    """One service replica in a shard's replica group.

    Wraps a :class:`~repro.serving.LocalizationService` with the
    replica's cluster identity, its fault-injection touchpoints and its
    topology-version bookkeeping.  All replicas are constructed equal;
    only the router's choices (and injected faults) distinguish them.
    """

    def __init__(
        self,
        shard_id: int,
        index: int,
        area: Polygon,
        localizer_config: LocalizerConfig | None,
        serving_config: ServingConfig,
        injector: FaultInjector,
    ) -> None:
        self.shard_id = shard_id
        self.index = index
        self.replica_id = (shard_id, index)
        self.injector = injector
        self.service = LocalizationService(
            area, localizer_config, serving_config
        )
        self.topology_version = 0

    def handle(
        self, request: LocalizationRequest, query_index: int
    ) -> LocalizationResponse:
        """Serve one query (fault hooks first, then the real service)."""
        self.injector.on_query(self.shard_id, self.index, query_index)
        # Request-preserving path: optional fields (the guard layer's
        # gate result among them) must survive the replica hop.
        return self.service.locate_request(request)

    def ping(self, query_index: int) -> bool:
        """Heartbeat probe: True when the replica would answer queries."""
        try:
            self.injector.on_heartbeat(self.shard_id, self.index, query_index)
        except Exception:
            return False
        return not self.service.closed

    def sync_topology(self, version: int) -> None:
        """Adopt the cluster's current topology version."""
        self.topology_version = version

    def drain(self, timeout_s: float | None = None) -> dict:
        """Gracefully drain the wrapped service; returns final metrics."""
        return self.service.drain(timeout_s)

    def close(self) -> None:
        """Drain and shut the wrapped service down."""
        self.service.close()


class LocalizationCluster:
    """Sharded, replicated localization serving with failover.

    Parameters
    ----------
    area:
        Default venue polygon (requests may override, multi-tenant).
    localizer_config:
        SP knobs shared by every replica.
    config:
        Operational :class:`ClusterConfig`.
    fault_plan:
        Optional :class:`~repro.cluster.faults.FaultPlan` for drills and
        tests; the default empty plan injects nothing.
    """

    def __init__(
        self,
        area: Polygon,
        localizer_config: LocalizerConfig | None = None,
        config: ClusterConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.area = area
        self.localizer_config = localizer_config or LocalizerConfig()
        self.config = config or ClusterConfig()
        self.router = ShardRouter(
            self.config.num_shards,
            self.config.replicas_per_shard,
            self.config.vnodes_per_shard,
        )
        self.injector = FaultInjector(fault_plan)
        self.health = HealthMonitor(
            self.config.suspect_after,
            self.config.dead_after,
            self.config.rejoin_after,
        )
        self.metrics = ClusterMetrics(self.config.latency_window)
        self.budget = RetryBudget(
            self.config.retry.budget_ratio, self.config.retry.budget_burst
        )
        self.shards: list[list[ClusterReplica]] = []
        for shard_id in range(self.config.num_shards):
            group = []
            for index in range(self.config.replicas_per_shard):
                replica = ClusterReplica(
                    shard_id,
                    index,
                    area,
                    self.localizer_config,
                    self.config.serving,
                    self.injector,
                )
                self.health.register(replica.replica_id)
                group.append(replica)
            self.shards.append(group)
        # Small warm cache backing the all-replicas-down fallback only.
        self._fallback_cache = LocalizerCache(4)
        self._jitter = random.Random(self.config.seed)
        self._lock = threading.Lock()
        self._routed = 0
        self._topology_version = 0
        self._hedge_pool: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> dict:
        """Drain every replica; returns the final cluster snapshot."""
        for group in self.shards:
            for replica in group:
                replica.drain(timeout_s)
        snapshot = self.metrics_snapshot()
        self._shutdown_hedge_pool()
        self._closed = True
        return snapshot

    def close(self) -> None:
        """Drain and shut down the whole fleet (idempotent)."""
        self.drain()

    def __enter__(self) -> "LocalizationCluster":
        """Context-manager entry: the cluster itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the cluster."""
        self.close()

    def _shutdown_hedge_pool(self) -> None:
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=True)
            self._hedge_pool = None

    # ------------------------------------------------------------------
    # Query paths
    # ------------------------------------------------------------------
    def locate(
        self,
        anchors: Sequence[Anchor],
        query_id: str = "",
        area: Polygon | None = None,
        timeout_s: float | None = None,
    ) -> ClusterResponse:
        """Route and serve one query."""
        request = LocalizationRequest(
            tuple(anchors), query_id=query_id, area=area, timeout_s=timeout_s
        )
        return self._route(request)

    def locate_request(self, request: LocalizationRequest) -> ClusterResponse:
        """Route one already-built request (the network entry point).

        The request-preserving sibling of :meth:`locate`, mirroring
        :meth:`repro.serving.LocalizationService.locate_request`: callers
        that construct a :class:`~repro.serving.LocalizationRequest`
        themselves — the gateway's protocol decoder chief among them —
        route through here so optional fields (``gate``, per-request
        ``timeout_s``, ``area``) survive into the replica.
        """
        return self._route(request)

    def batch(
        self, requests: Iterable[LocalizationRequest | Sequence[Anchor]]
    ) -> list[ClusterResponse]:
        """Serve a batch in input order.

        Queries are routed sequentially so the fault clock (the global
        query counter) is deterministic — the property fault drills and
        the bit-exactness benchmark rely on.

        When the per-replica serving config enables LP micro-batching
        (``serving.lp_batch > 1``), consecutive queries that route to the
        same healthy replica are handed to that replica's
        :meth:`~repro.serving.LocalizationService.batch` in one call, so
        their relaxation LPs solve as stacked tableaux.  Fault hooks
        still fire once per query *before* its run is served, and any
        query whose hook (or whose run's batched serve) raises a failover
        error falls back to the retried scalar routing path — failures
        stay per-query, never per-batch.  Count-based heartbeats
        (``heartbeat_every``) don't compose with run coalescing, so that
        setting forces the scalar path.
        """
        reqs = [self._coerce(r) for r in requests]
        if self.config.serving.lp_batch <= 1 or self.config.heartbeat_every:
            return [self._route(r) for r in reqs]
        out: list[ClusterResponse] = []
        run: list[LocalizationRequest] = []
        run_dest: tuple[int, int] | None = None
        for req in reqs:
            area = req.area if req.area is not None else self.area
            shard_id, order = self.router.route(
                route_key(area, self.localizer_config)
            )
            primary = self._pick(shard_id, order, set())
            if primary is None:
                # Whole replica group unroutable: flush, then let the
                # scalar path produce the flagged fallback answer.
                if run:
                    out.extend(self._serve_run(run_dest, run))
                    run, run_dest = [], None
                out.append(self._route(req))
                continue
            dest = (shard_id, primary)
            if run and dest != run_dest:
                out.extend(self._serve_run(run_dest, run))
                run = []
            run_dest = dest
            run.append(req)
        if run:
            out.extend(self._serve_run(run_dest, run))
        return out

    def _serve_run(
        self, dest: tuple[int, int], run: list[LocalizationRequest]
    ) -> list[ClusterResponse]:
        """Serve one same-replica run through the replica's batch path.

        Fires the fault hook per query first (preserving the sequential
        fault clock), serves the survivors in one
        ``service.batch`` call, and falls back to :meth:`_route` for any
        query the hook or the batched serve failed — those queries spend
        fresh clock ticks, exactly like a client retrying.
        """
        shard_id, idx = dest
        replica = self.shards[shard_id][idx]
        out: list[ClusterResponse | None] = [None] * len(run)
        serve: list[int] = []
        fallback: list[int] = []
        started = time.perf_counter()
        for pos in range(len(run)):
            query_index = self._next_query_index()
            try:
                self.injector.on_query(shard_id, idx, query_index)
            except _FAILOVER_ERRORS:
                self.health.record_failure(replica.replica_id)
                fallback.append(pos)
            else:
                serve.append(pos)
        if serve:
            with span(
                "cluster.batch", shard=shard_id, replica=idx, size=len(serve)
            ) as run_sp:
                try:
                    resps = replica.service.batch([run[p] for p in serve])
                except _FAILOVER_ERRORS:
                    self.health.record_failure(replica.replica_id)
                    fallback.extend(serve)
                else:
                    for pos, resp in zip(serve, resps):
                        out[pos] = self._finish(
                            run[pos],
                            resp,
                            replica,
                            shard_id,
                            started,
                            attempts=1,
                            failovers=0,
                            retries=0,
                            hedged=False,
                            route_sp=run_sp,
                        )
        for pos in fallback:
            # The failed coalesced attempt was a failover the re-route
            # below never sees; count it on the response and the fleet.
            resp = self._route(run[pos])
            out[pos] = replace(resp, failovers=resp.failovers + 1)
            self.metrics.record_failover()
        return out  # type: ignore[return-value]  # every slot is filled

    def _coerce(
        self, request: LocalizationRequest | Sequence[Anchor]
    ) -> LocalizationRequest:
        """Accept bare anchor sequences anywhere a request is expected."""
        if isinstance(request, LocalizationRequest):
            return request
        return LocalizationRequest(tuple(request))

    # ------------------------------------------------------------------
    # Topology + health
    # ------------------------------------------------------------------
    def note_topology_change(self) -> int:
        """A nomadic AP moved: bump the version, push it to the fleet.

        Replicas under an active stale-topology fault miss the push (the
        injected failure mode); they re-sync on a later heartbeat once
        the fault clears.  Returns the new version.
        """
        with self._lock:
            self._topology_version += 1
            version = self._topology_version
            query_index = self._routed
        for group in self.shards:
            for replica in group:
                if not self.injector.stale_active(
                    replica.shard_id, replica.index, query_index
                ):
                    replica.sync_topology(version)
        return version

    def heartbeat(self) -> dict:
        """Probe every replica; update health states, re-sync topology.

        The anti-entropy sweep: dead replicas whose faults have cleared
        come back as REJOINING, and reachable replicas that missed a
        topology push catch up.  Returns ``{replica_id: ReplicaState}``.
        """
        with self._lock:
            query_index = self._routed
            version = self._topology_version
        states = {}
        for group in self.shards:
            for replica in group:
                state = self.health.probe(
                    replica.replica_id,
                    lambda r=replica: r.ping(query_index),
                )
                if state is not ReplicaState.DEAD and not (
                    self.injector.stale_active(
                        replica.shard_id, replica.index, query_index
                    )
                ):
                    replica.sync_topology(version)
                states[replica.replica_id] = state
        self.metrics.record_heartbeat_round()
        return states

    def replica_states(self) -> dict:
        """Current health state of every replica (no probing)."""
        return self.health.states()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Cluster counters + fleet roll-up + per-replica detail.

        Layout: cluster-level routing/availability counters at the top;
        ``"services"`` is the summed fleet view of every replica's
        ServiceMetrics; ``"replicas"`` the per-replica snapshots;
        ``"states"`` the health states; ``"spans"`` the per-stage span
        aggregates (route → queue → solve) when tracing is enabled.
        """
        snap = self.metrics.snapshot()
        per_replica = {}
        for group in self.shards:
            for replica in group:
                rsnap = replica.service.metrics_snapshot()
                # The global span aggregate is reported once, cluster-wide.
                rsnap.pop("spans", None)
                per_replica[f"shard{replica.shard_id}/replica{replica.index}"] = (
                    rsnap
                )
        snap["replicas"] = per_replica
        snap["services"] = merge_service_snapshots(list(per_replica.values()))
        snap["states"] = {
            f"shard{shard}/replica{index}": state.value
            for (shard, index), state in self.health.states().items()
        }
        snap["retry_budget"] = self.budget.snapshot()
        snap["topology_version"] = self._topology_version
        tracer = get_tracer()
        if tracer is not None:
            snap["spans"] = aggregate(tracer.finished())
        return snap

    def metrics_json(self) -> dict:
        """:meth:`metrics_snapshot` coerced to JSON-serializable form.

        Health-state enums collapse to their string values and keys come
        back sorted — see :func:`repro.serving.metrics.json_safe`.  The
        gateway's ``/metrics`` endpoint serves this dict verbatim.
        """
        return json_safe(self.metrics_snapshot())

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------
    def _next_query_index(self) -> int:
        with self._lock:
            index = self._routed
            self._routed += 1
        return index

    def _route(self, request: LocalizationRequest) -> ClusterResponse:
        """The routed query path: shard → replica group → retry loop."""
        if self._closed:
            raise RuntimeError("cluster is closed")
        query_index = self._next_query_index()
        every = self.config.heartbeat_every
        if every and query_index and query_index % every == 0:
            self.heartbeat()
        area = request.area if request.area is not None else self.area
        key = route_key(area, self.localizer_config)
        shard_id, order = self.router.route(key)
        group = self.shards[shard_id]
        policy = self.config.retry
        with span(
            "cluster.route", query_id=request.query_id, shard=shard_id
        ) as route_sp:
            started = time.perf_counter()
            tried: set[int] = set()
            failovers = retries = 0
            hedged_any = False
            attempt = 0
            while attempt < policy.max_attempts:
                candidate_idx = self._pick(shard_id, order, tried)
                if candidate_idx is None:
                    break  # whole replica group unroutable
                if attempt == 0:
                    self.budget.note_attempt()
                else:
                    if not self.budget.allow_retry():
                        self.metrics.record_retry_denied()
                        break
                    retries += 1
                    delay = backoff_s(policy, retries, self._jitter)
                    if delay > 0:
                        time.sleep(delay)
                replica = group[candidate_idx]
                try:
                    if attempt == 0 and policy.hedge_after_s is not None:
                        resp, replica, hedged = self._attempt_hedged(
                            group,
                            shard_id,
                            order,
                            candidate_idx,
                            request,
                            query_index,
                            route_sp,
                        )
                        hedged_any |= hedged
                    else:
                        resp = self._attempt(replica, request, query_index)
                except _FAILOVER_ERRORS:
                    self.health.record_failure(replica.replica_id)
                    tried.add(replica.index)
                    failovers += 1
                    attempt += 1
                    continue
                return self._finish(
                    request,
                    resp,
                    replica,
                    shard_id,
                    started,
                    attempts=attempt + 1,
                    failovers=failovers,
                    retries=retries,
                    hedged=hedged_any,
                    route_sp=route_sp,
                )
            return self._unavailable(
                request,
                area,
                shard_id,
                started,
                attempts=attempt,
                failovers=failovers,
                retries=retries,
                hedged=hedged_any,
                route_sp=route_sp,
            )

    def _pick(
        self, shard_id: int, order: Sequence[int], tried: set[int]
    ) -> int | None:
        """Best routable replica: health rank, then key preference order.

        DEAD replicas never serve.  When every routable replica has
        already failed this query, the tried set resets so later
        attempts can re-try the least-bad one (it may have recovered).
        """
        routable = [
            idx for idx in order if self.health.available((shard_id, idx))
        ]
        if not routable:
            return None
        fresh = [idx for idx in routable if idx not in tried]
        if not fresh:
            tried.clear()
            fresh = routable
        return min(
            fresh,
            key=lambda idx: (self.health.rank((shard_id, idx)), order.index(idx)),
        )

    def _attempt(
        self, replica: ClusterReplica, request: LocalizationRequest, query_index: int
    ):
        """One synchronous attempt, nested under the route span."""
        with span(
            "cluster.attempt", shard=replica.shard_id, replica=replica.index
        ):
            return replica.handle(request, query_index)

    def _hedge_task(
        self, replica: ClusterReplica, request: LocalizationRequest, query_index: int
    ):
        """Pool-thread attempt: never raises, reports its span for
        re-parenting (pool threads root their own span trees)."""
        sp = span(
            "cluster.attempt",
            shard=replica.shard_id,
            replica=replica.index,
            hedge=True,
        )
        span_id = getattr(sp, "span_id", None)
        try:
            with sp:
                return replica.handle(request, query_index), None, span_id
        except _FAILOVER_ERRORS as exc:
            return None, exc, span_id

    def _attempt_hedged(
        self,
        group: Sequence[ClusterReplica],
        shard_id: int,
        order: Sequence[int],
        primary_idx: int,
        request: LocalizationRequest,
        query_index: int,
        route_sp,
    ):
        """First attempt with a speculative duplicate after a threshold.

        Returns ``(response, serving_replica, hedge_fired)``; raises the
        primary's error when every launched copy failed.  Replicas are
        deterministic, so whichever copy wins returns the identical
        answer — hedging trades duplicate work for tail latency, never
        correctness.
        """
        policy = self.config.retry
        primary = group[primary_idx]
        secondary_idx = next(
            (
                idx
                for idx in order
                if idx != primary_idx and self.health.available((shard_id, idx))
            ),
            None,
        )
        if secondary_idx is None:
            return self._attempt(primary, request, query_index), primary, False
        if self._hedge_pool is None:
            self._hedge_pool = ThreadPoolExecutor(
                max_workers=max(2, self.config.replicas_per_shard),
                thread_name_prefix="repro-hedge",
            )
        tracer = get_tracer()
        route_id = getattr(route_sp, "span_id", None)

        def submit(replica: ClusterReplica):
            future = self._hedge_pool.submit(
                self._hedge_task, replica, request, query_index
            )
            if tracer is not None:
                # Re-home the attempt's span tree under the route span as
                # soon as the attempt finishes — including a hedge loser
                # that completes after the winner already returned.
                def _adopt(f, _tracer=tracer, _route=route_id):
                    span_id = f.result()[2]
                    if span_id is not None:
                        _tracer.reparent([span_id], _route)

                future.add_done_callback(_adopt)
            return future

        pending = {submit(primary): primary}
        done, _ = wait(list(pending), timeout=policy.hedge_after_s)
        hedged = False
        # The hedge is speculative extra load, so it spends retry budget.
        if not done and self.budget.allow_retry():
            hedged = True
            pending[submit(group[secondary_idx])] = group[secondary_idx]
        last_error: BaseException | None = None
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                replica = pending.pop(future)
                resp, error, _ = future.result()
                if error is None:
                    # Loser (if any) keeps running; its answer is
                    # identical and simply discarded on completion.
                    return resp, replica, hedged
                self.health.record_failure(replica.replica_id)
                last_error = error
        assert last_error is not None
        raise last_error

    def _finish(
        self,
        request: LocalizationRequest,
        resp,
        replica: ClusterReplica,
        shard_id: int,
        started: float,
        *,
        attempts: int,
        failovers: int,
        retries: int,
        hedged: bool,
        route_sp,
    ) -> ClusterResponse:
        """Wrap a replica answer: health, staleness flag, metrics, span."""
        self.health.record_success(replica.replica_id)
        with self._lock:
            current_version = self._topology_version
        stale = replica.topology_version < current_version
        degraded = resp.degraded or stale
        reason = resp.reason if resp.degraded else (
            "stale-topology" if stale else ""
        )
        latency = time.perf_counter() - started
        self.metrics.record_query(
            latency,
            degraded=degraded,
            stale=stale,
            failovers=failovers,
            retries=retries,
            hedged=hedged,
        )
        route_sp.set(
            replica=replica.index,
            attempts=attempts,
            failovers=failovers,
            hedged=hedged,
            degraded=degraded,
        )
        return ClusterResponse(
            query_id=request.query_id,
            position=resp.position,
            estimate=resp.estimate,
            degraded=degraded,
            reason=reason,
            shard=shard_id,
            replica=replica.index,
            attempts=attempts,
            failovers=failovers,
            hedged=hedged,
            cache_hit=resp.cache_hit,
            latency_s=latency,
        )

    def _unavailable(
        self,
        request: LocalizationRequest,
        area: Polygon,
        shard_id: int,
        started: float,
        *,
        attempts: int,
        failovers: int,
        retries: int,
        hedged: bool,
        route_sp,
    ) -> ClusterResponse:
        """Last resort: the whole replica group is down (or the retry
        budget refused further attempts).  Answer with the flagged
        weighted-centroid fallback — coarse, O(anchors), never silent."""
        localizer, _ = self._fallback_cache.get(area, self.localizer_config)
        position = localizer.project_into_area(
            weighted_centroid(request.anchors)
        )
        latency = time.perf_counter() - started
        self.metrics.record_query(
            latency,
            degraded=True,
            failovers=failovers,
            retries=retries,
            hedged=hedged,
            unavailable=True,
        )
        route_sp.set(
            attempts=attempts,
            failovers=failovers,
            degraded=True,
            unavailable=True,
        )
        return ClusterResponse(
            query_id=request.query_id,
            position=position,
            estimate=None,
            degraded=True,
            reason="unavailable",
            shard=shard_id,
            replica=None,
            attempts=attempts,
            failovers=failovers,
            hedged=hedged,
            cache_hit=False,
            latency_s=latency,
        )
