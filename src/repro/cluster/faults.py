"""Injectable fault plans: the cluster's chaos-engineering harness.

A :class:`FaultPlan` scripts failures against specific replicas over a
deterministic clock — the cluster's *global query counter*, not wall
time — so a fault drill is exactly reproducible: "replica (0, 1) crashes
after query 40 and stays down" behaves identically on every run.  Four
fault kinds cover the failure modes a nomadic-AP deployment actually
sees:

* ``CRASH`` — the replica raises :class:`ReplicaCrashed` on queries and
  fails heartbeats (process death, network partition);
* ``LATENCY`` — the replica sleeps before answering (GC pause, overload);
* ``QUEUE_FULL`` — the replica sheds with
  :class:`~repro.serving.queueing.QueueFullError` (admission storm);
* ``STALE_TOPOLOGY`` — the replica stops receiving topology bumps (a
  nomadic AP moved but this replica missed the update), so its answers
  must be *flagged* stale rather than silently served.

Tests and ``benchmarks/bench_cluster.py`` build plans; production code
runs with the empty plan, whose per-query cost is one tuple check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from ..serving.queueing import QueueFullError

__all__ = ["ReplicaCrashed", "FaultKind", "Fault", "FaultPlan", "FaultInjector"]


class ReplicaCrashed(RuntimeError):
    """Raised by a crash-faulted replica in place of an answer."""


class FaultKind(Enum):
    """The injectable failure modes."""

    CRASH = "crash"
    LATENCY = "latency"
    QUEUE_FULL = "queue-full"
    STALE_TOPOLOGY = "stale-topology"


@dataclass(frozen=True)
class Fault:
    """One scripted fault against one replica.

    Active while ``after_query <= global query index < until_query``
    (``until_query=None`` means forever).
    """

    kind: FaultKind
    shard: int
    replica: int
    after_query: int = 0
    until_query: int | None = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.after_query < 0:
            raise ValueError("after_query must be non-negative")
        if self.until_query is not None and self.until_query <= self.after_query:
            raise ValueError("until_query must exceed after_query")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def active(self, shard: int, replica: int, query_index: int) -> bool:
        """True when this fault applies to (shard, replica) right now."""
        if (shard, replica) != (self.shard, self.replica):
            return False
        if query_index < self.after_query:
            return False
        return self.until_query is None or query_index < self.until_query


@dataclass(frozen=True)
class FaultPlan:
    """An immutable script of faults; empty by default.

    The constructors read like the drill they describe::

        plan = FaultPlan.crash(shard=0, replica=1, after=40)
        plan = plan.plus(FaultPlan.latency_spike(0, 0, latency_s=0.2))
    """

    faults: tuple[Fault, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- constructors ---------------------------------------------------
    @classmethod
    def crash(
        cls, shard: int, replica: int, after: int = 0, until: int | None = None
    ) -> "FaultPlan":
        """A replica that dies (queries raise, heartbeats fail)."""
        return cls((Fault(FaultKind.CRASH, shard, replica, after, until),))

    @classmethod
    def latency_spike(
        cls,
        shard: int,
        replica: int,
        latency_s: float,
        after: int = 0,
        until: int | None = None,
    ) -> "FaultPlan":
        """A replica that answers, slowly."""
        return cls(
            (
                Fault(
                    FaultKind.LATENCY,
                    shard,
                    replica,
                    after,
                    until,
                    latency_s=latency_s,
                ),
            )
        )

    @classmethod
    def queue_full_storm(
        cls, shard: int, replica: int, after: int = 0, until: int | None = None
    ) -> "FaultPlan":
        """A replica shedding every submission with QueueFullError."""
        return cls((Fault(FaultKind.QUEUE_FULL, shard, replica, after, until),))

    @classmethod
    def stale_topology(
        cls, shard: int, replica: int, after: int = 0, until: int | None = None
    ) -> "FaultPlan":
        """A replica cut off from topology updates (answers go stale)."""
        return cls(
            (Fault(FaultKind.STALE_TOPOLOGY, shard, replica, after, until),)
        )

    def plus(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans."""
        return FaultPlan(self.faults + other.faults)

    def active_kinds(
        self, shard: int, replica: int, query_index: int
    ) -> set[FaultKind]:
        """Kinds currently active against (shard, replica)."""
        return {
            f.kind
            for f in self.faults
            if f.active(shard, replica, query_index)
        }

    def active_faults(
        self, shard: int, replica: int, query_index: int
    ) -> list[Fault]:
        """Faults currently active against (shard, replica)."""
        return [f for f in self.faults if f.active(shard, replica, query_index)]


class FaultInjector:
    """Applies a :class:`FaultPlan` at the cluster's replica touchpoints.

    The cluster consults the injector at two points: per query
    (:meth:`on_query`, which may raise or sleep) and per heartbeat
    (:meth:`on_heartbeat`).  Stale-topology faults never raise — they
    only make :meth:`stale_active` true, which suppresses topology sync
    for that replica and flags its answers.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()

    def on_query(self, shard: int, replica: int, query_index: int) -> None:
        """Fault hook before a replica serves a query."""
        for fault in self.plan.active_faults(shard, replica, query_index):
            if fault.kind is FaultKind.CRASH:
                raise ReplicaCrashed(
                    f"replica ({shard}, {replica}) crashed "
                    f"(injected at query {query_index})"
                )
            if fault.kind is FaultKind.QUEUE_FULL:
                raise QueueFullError(
                    f"replica ({shard}, {replica}) shedding "
                    f"(injected queue-full storm)"
                )
            if fault.kind is FaultKind.LATENCY and fault.latency_s > 0:
                time.sleep(fault.latency_s)

    def on_heartbeat(self, shard: int, replica: int, query_index: int) -> None:
        """Fault hook before a replica answers a heartbeat probe."""
        kinds = self.plan.active_kinds(shard, replica, query_index)
        if FaultKind.CRASH in kinds:
            raise ReplicaCrashed(
                f"replica ({shard}, {replica}) not responding to heartbeat"
            )

    def stale_active(self, shard: int, replica: int, query_index: int) -> bool:
        """True while (shard, replica) is cut off from topology updates."""
        return FaultKind.STALE_TOPOLOGY in self.plan.active_kinds(
            shard, replica, query_index
        )
