"""Replica health tracking: heartbeats, state machine, failover input.

Each replica walks a four-state machine driven by two evidence streams —
*passive* (query successes/failures observed by the router) and *active*
(heartbeat probes):

.. code-block:: text

    HEALTHY --failure x suspect_after--> SUSPECT
    SUSPECT --failure x dead_after-----> DEAD
    SUSPECT --success------------------> HEALTHY
    DEAD    --successful probe---------> REJOINING
    REJOINING --success x rejoin_after-> HEALTHY
    REJOINING --failure----------------> DEAD

The asymmetry is deliberate: a replica dies quickly (failures are cheap
to observe and expensive to retry against) but rejoins slowly (a flapping
replica must prove ``rejoin_after`` consecutive successes before it takes
primary traffic again).  DEAD replicas are excluded from routing;
SUSPECT and REJOINING ones serve only when nothing healthier is left.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Callable, Hashable

__all__ = ["ReplicaState", "HealthMonitor"]


class ReplicaState(Enum):
    """Lifecycle state of one replica, as seen by the router."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"
    REJOINING = "rejoining"


#: Routing preference: lower ranks serve first.
_RANK = {
    ReplicaState.HEALTHY: 0,
    ReplicaState.REJOINING: 1,
    ReplicaState.SUSPECT: 2,
    ReplicaState.DEAD: 3,
}


class _ReplicaHealth:
    """State-machine record of one replica (monitor-internal)."""

    __slots__ = ("state", "consecutive_failures", "consecutive_successes")

    def __init__(self) -> None:
        self.state = ReplicaState.HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0


class HealthMonitor:
    """Tracks every replica's state machine; thread-safe.

    Parameters
    ----------
    suspect_after:
        Consecutive failures that demote HEALTHY → SUSPECT.
    dead_after:
        Consecutive failures that demote (HEALTHY/SUSPECT) → DEAD.
    rejoin_after:
        Consecutive successes a REJOINING replica needs to become
        HEALTHY again.
    """

    def __init__(
        self,
        suspect_after: int = 1,
        dead_after: int = 3,
        rejoin_after: int = 2,
    ) -> None:
        if suspect_after < 1:
            raise ValueError("suspect_after must be positive")
        if dead_after < suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        if rejoin_after < 1:
            raise ValueError("rejoin_after must be positive")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.rejoin_after = rejoin_after
        self._replicas: dict[Hashable, _ReplicaHealth] = {}
        self._lock = threading.Lock()

    def register(self, replica_id: Hashable) -> None:
        """Start tracking a replica (initially HEALTHY)."""
        with self._lock:
            self._replicas[replica_id] = _ReplicaHealth()

    def _get(self, replica_id: Hashable) -> _ReplicaHealth:
        try:
            return self._replicas[replica_id]
        except KeyError:
            raise KeyError(f"unregistered replica {replica_id!r}") from None

    # -- evidence -------------------------------------------------------
    def record_success(self, replica_id: Hashable) -> ReplicaState:
        """One successful query/probe against a replica."""
        with self._lock:
            rec = self._get(replica_id)
            rec.consecutive_failures = 0
            rec.consecutive_successes += 1
            if rec.state is ReplicaState.SUSPECT:
                rec.state = ReplicaState.HEALTHY
            elif rec.state is ReplicaState.DEAD:
                # A dead replica answering again starts its probation.
                rec.state = ReplicaState.REJOINING
                rec.consecutive_successes = 1
            if (
                rec.state is ReplicaState.REJOINING
                and rec.consecutive_successes >= self.rejoin_after
            ):
                rec.state = ReplicaState.HEALTHY
            return rec.state

    def record_failure(self, replica_id: Hashable) -> ReplicaState:
        """One failed query/probe against a replica."""
        with self._lock:
            rec = self._get(replica_id)
            rec.consecutive_successes = 0
            rec.consecutive_failures += 1
            if rec.state is ReplicaState.REJOINING:
                rec.state = ReplicaState.DEAD
            elif rec.consecutive_failures >= self.dead_after:
                rec.state = ReplicaState.DEAD
            elif rec.consecutive_failures >= self.suspect_after:
                if rec.state is ReplicaState.HEALTHY:
                    rec.state = ReplicaState.SUSPECT
            return rec.state

    def probe(
        self, replica_id: Hashable, ping: Callable[[], bool]
    ) -> ReplicaState:
        """Run one heartbeat probe and feed its outcome to the machine."""
        try:
            alive = bool(ping())
        except Exception:
            alive = False
        if alive:
            return self.record_success(replica_id)
        return self.record_failure(replica_id)

    # -- routing view ---------------------------------------------------
    def state(self, replica_id: Hashable) -> ReplicaState:
        """Current state of one replica."""
        with self._lock:
            return self._get(replica_id).state

    def available(self, replica_id: Hashable) -> bool:
        """True unless the replica is DEAD (routable, maybe reluctantly)."""
        return self.state(replica_id) is not ReplicaState.DEAD

    def rank(self, replica_id: Hashable) -> int:
        """Routing preference rank (lower serves first)."""
        return _RANK[self.state(replica_id)]

    def states(self) -> dict[Hashable, ReplicaState]:
        """Snapshot of every tracked replica's state."""
        with self._lock:
            return {rid: rec.state for rid, rec in self._replicas.items()}
