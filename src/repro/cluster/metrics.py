"""Cluster-level metrics: routing counters + fleet-wide aggregation.

Two layers of observability meet here.  The cluster's own counters
(routed queries, failovers, retries, hedges, degraded/unavailable
answers) live in :class:`ClusterMetrics` with a latency reservoir
reused from the serving layer.  Per-replica
:class:`~repro.serving.metrics.ServiceMetrics` snapshots are merged by
:func:`merge_service_snapshots` into one fleet view — summed counters,
worst-case queue depth — so "how loaded is the cluster" is one dict, not
``shards × replicas`` of them.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

from ..serving.metrics import LatencyReservoir, json_safe

__all__ = ["ClusterMetrics", "merge_service_snapshots"]

#: ServiceMetrics counters that sum meaningfully across a fleet.
_SUMMED_KEYS = (
    "admitted",
    "rejected",
    "completed",
    "degraded",
    "timeouts",
    "lp_failures",
    "cache_hits",
    "cache_misses",
    "queue_rejected_total",
    "degraded_links_total",
    "rejected_links_total",
)


class ClusterMetrics:
    """Thread-safe counters + latency reservoir for one cluster.

    Event vocabulary (called by
    :class:`~repro.cluster.cluster.LocalizationCluster`):

    * :meth:`record_query` — one routed query finished, with its
      failover/retry/hedge history and outcome flags;
    * :meth:`record_retry_denied` — the retry budget refused a retry;
    * :meth:`record_heartbeat_round` — one probe sweep ran.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyReservoir(latency_window)
        self._started = time.perf_counter()
        self.routed = 0
        self.answered = 0
        self.unavailable = 0
        self.degraded = 0
        self.stale_flagged = 0
        self.failovers = 0
        self.retries = 0
        self.hedges = 0
        self.retry_denied = 0
        self.heartbeat_rounds = 0

    def record_query(
        self,
        latency_s: float,
        *,
        degraded: bool = False,
        stale: bool = False,
        failovers: int = 0,
        retries: int = 0,
        hedged: bool = False,
        unavailable: bool = False,
    ) -> None:
        """One routed query finished (possibly via the fallback)."""
        with self._lock:
            self.routed += 1
            self._latencies.observe(latency_s)
            if unavailable:
                self.unavailable += 1
            else:
                self.answered += 1
            if degraded:
                self.degraded += 1
            if stale:
                self.stale_flagged += 1
            self.failovers += failovers
            self.retries += retries
            if hedged:
                self.hedges += 1

    def record_failover(self, n: int = 1) -> None:
        """Failover attempts seen outside :meth:`record_query`.

        The coalesced batch path fires fault hooks before routing; a
        query knocked out of its run there fails over exactly like the
        scalar path's mid-route failure, but its eventual ``_route``
        retry no longer sees that attempt — this keeps the fleet counter
        honest.
        """
        with self._lock:
            self.failovers += n

    def record_retry_denied(self) -> None:
        """The retry budget refused a retry (load-amplification guard)."""
        with self._lock:
            self.retry_denied += 1

    def record_heartbeat_round(self) -> None:
        """One probe sweep over every replica completed."""
        with self._lock:
            self.heartbeat_rounds += 1

    def snapshot(self) -> dict:
        """Point-in-time cluster counters as a plain dict.

        ``availability`` is the served fraction — every query the
        cluster answered from a replica (full or flagged-degraded)
        over every query routed; only the all-replicas-down fallback
        counts against it.
        """
        with self._lock:
            elapsed = time.perf_counter() - self._started
            snap = {
                "uptime_s": elapsed,
                "routed": self.routed,
                "answered": self.answered,
                "unavailable": self.unavailable,
                "degraded": self.degraded,
                "stale_flagged": self.stale_flagged,
                "failovers": self.failovers,
                "retries": self.retries,
                "hedges": self.hedges,
                "retry_denied": self.retry_denied,
                "heartbeat_rounds": self.heartbeat_rounds,
                "availability": (
                    self.answered / self.routed if self.routed else 1.0
                ),
                "throughput_qps": self.routed / elapsed if elapsed > 0 else 0.0,
                "latency_mean_s": self._latencies.mean(),
            }
            snap.update(
                {
                    f"latency_{k}_s": v
                    for k, v in self._latencies.quantiles().items()
                }
            )
            return snap

    def to_json(self) -> dict:
        """:meth:`snapshot` as a JSON-serializable dict with sorted keys.

        Same contract as
        :meth:`repro.serving.metrics.ServiceMetrics.to_json` — the form
        the gateway's ``/metrics`` endpoint ships on the wire.
        """
        return json_safe(self.snapshot())


def merge_service_snapshots(snapshots: Sequence[Mapping]) -> dict:
    """Fleet-wide roll-up of per-replica ServiceMetrics snapshots.

    Counters sum; ``queue_depth`` takes the worst replica; cache hit
    rate is recomputed from the summed lookups.
    """
    merged: dict = {key: 0 for key in _SUMMED_KEYS}
    merged["queue_depth"] = 0
    for snap in snapshots:
        for key in _SUMMED_KEYS:
            merged[key] += int(snap.get(key, 0))
        merged["queue_depth"] = max(
            merged["queue_depth"], int(snap.get("queue_depth", 0))
        )
    lookups = merged["cache_hits"] + merged["cache_misses"]
    merged["cache_hit_rate"] = (
        merged["cache_hits"] / lookups if lookups else 0.0
    )
    merged["replica_count"] = len(snapshots)
    return merged
