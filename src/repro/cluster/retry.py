"""Per-query retry policy: exponential backoff, jitter, hedging, budget.

Retries are how the cluster turns a replica failure into a served answer
— and also how a dying shard amplifies its own load if left uncapped.
Three mechanisms keep them safe:

* **exponential backoff + jitter** spaces attempts out and decorrelates
  the retry storms of concurrent callers;
* an optional **hedged request** launches one speculative duplicate to
  the next replica after a latency threshold (replicas are
  deterministic, so whichever copy wins returns the identical answer);
* a **retry budget** (token bucket fed by first attempts) bounds the
  cluster-wide retry ratio, so at most ``budget_ratio`` extra load can
  ever be generated no matter how many replicas are failing.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

__all__ = ["RetryPolicy", "RetryBudget", "backoff_s"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the cluster's per-query retry loop.

    Attributes
    ----------
    max_attempts:
        Total tries per query (first attempt included).
    base_backoff_s / backoff_multiplier / max_backoff_s:
        Sleep before retry ``n`` is ``base * multiplier**(n-1)``, capped.
    jitter:
        Fraction of each backoff randomized away (``0`` = deterministic
        full backoff, ``0.5`` = uniform in ``[0.5, 1] * backoff``).
    hedge_after_s:
        Launch a speculative duplicate to the next replica when the
        first attempt has not answered after this many seconds
        (``None`` disables hedging).
    budget_ratio / budget_burst:
        Retry budget: retries may never exceed
        ``budget_ratio * first_attempts + budget_burst``.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.005
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter: float = 0.5
    hedge_after_s: float | None = None
    budget_ratio: float = 0.2
    budget_burst: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be non-negative")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ValueError("hedge_after_s must be non-negative or None")
        if self.budget_ratio < 0:
            raise ValueError("budget_ratio must be non-negative")
        if self.budget_burst < 0:
            raise ValueError("budget_burst must be non-negative")


def backoff_s(
    policy: RetryPolicy, retry: int, rng: random.Random | None = None
) -> float:
    """Sleep before the ``retry``-th retry (1-based), jittered via ``rng``.

    With a seeded ``rng`` the sequence is reproducible; ``None`` skips
    jitter entirely (the deterministic upper envelope).
    """
    if retry < 1:
        raise ValueError("retry is 1-based")
    delay = min(
        policy.base_backoff_s * policy.backoff_multiplier ** (retry - 1),
        policy.max_backoff_s,
    )
    if rng is not None and policy.jitter > 0:
        delay *= 1.0 - policy.jitter * rng.random()
    return delay


class RetryBudget:
    """Token bucket capping cluster-wide retry amplification.

    Every first attempt deposits ``ratio`` tokens; every retry withdraws
    one.  ``burst`` tokens are granted up front so a cold cluster can
    still fail over.  When the bucket is empty, :meth:`allow_retry`
    refuses — the query degrades instead of hammering a dying shard.
    """

    def __init__(self, ratio: float = 0.2, burst: int = 3) -> None:
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if burst < 0:
            raise ValueError("burst must be non-negative")
        self.ratio = ratio
        self.burst = burst
        self._lock = threading.Lock()
        self._attempts = 0
        self._retries = 0
        self._denied = 0

    def note_attempt(self) -> None:
        """Record one first attempt (earns ``ratio`` of a retry token)."""
        with self._lock:
            self._attempts += 1

    def allow_retry(self) -> bool:
        """Spend one retry token if any remain; False when exhausted."""
        with self._lock:
            allowed = self._retries < self.ratio * self._attempts + self.burst
            if allowed:
                self._retries += 1
            else:
                self._denied += 1
            return allowed

    def snapshot(self) -> dict:
        """Plain-dict budget state for metrics."""
        with self._lock:
            return {
                "attempts": self._attempts,
                "retries": self._retries,
                "denied": self._denied,
                "ratio": self.ratio,
                "burst": self.burst,
            }
