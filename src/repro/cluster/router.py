"""Deterministic consistent-hash routing of topology keys onto shards.

NomLoc's constraint stack is dominated by topology-dependent state — the
convex decomposition, boundary rows and bisector memos all key off the
(venue, localizer-config) identity that
:func:`repro.serving.cache.topology_key` hashes.  Routing every query for
one topology to the *same* shard keeps that shard's
:class:`~repro.serving.cache.LocalizerCache` hot; consistent hashing
(virtual nodes on a ring) keeps the key→shard map stable when shards are
added or removed, so a resize only re-homes ``~1/num_shards`` of the
keys instead of reshuffling every cache.

Everything here is process-independent: hashes are BLAKE2b over
``repr`` — never Python's salted ``hash()`` — so two routers built with
the same parameters agree on every placement, in any process, forever.
That determinism is what the cluster's bit-exactness invariant stands
on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence

from ..core import LocalizerConfig
from ..geometry import Polygon
from ..serving.cache import topology_key

__all__ = ["stable_hash", "route_key", "ShardRouter"]


def stable_hash(value) -> int:
    """64-bit process-independent hash of ``repr(value)``.

    ``repr`` of the tuples/floats/frozen-dataclasses making up a
    topology key is deterministic; BLAKE2b makes the mapping uniform.
    """
    digest = hashlib.blake2b(
        repr(value).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def route_key(area: Polygon, config: LocalizerConfig | None = None) -> tuple:
    """The routing key of a query: its serving-cache topology identity."""
    return topology_key(area, config or LocalizerConfig())


class ShardRouter:
    """Consistent-hash ring mapping routing keys to shards + replicas.

    Parameters
    ----------
    num_shards:
        Number of shards (disjoint topology-key partitions).
    replicas_per_shard:
        Size of each shard's replica group; :meth:`replica_order` spreads
        primaries across the group per key so one replica is not the
        primary for every key.
    vnodes_per_shard:
        Virtual nodes per shard on the ring; more vnodes → smoother key
        distribution and smaller remap fractions on resize.
    """

    def __init__(
        self,
        num_shards: int = 1,
        replicas_per_shard: int = 1,
        vnodes_per_shard: int = 64,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be positive")
        if vnodes_per_shard < 1:
            raise ValueError("vnodes_per_shard must be positive")
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.vnodes_per_shard = vnodes_per_shard
        ring = sorted(
            (stable_hash(("shard", shard, "vnode", vnode)), shard)
            for shard in range(num_shards)
            for vnode in range(vnodes_per_shard)
        )
        self._ring_hashes = [h for h, _ in ring]
        self._ring_shards = [s for _, s in ring]

    def shard_for(self, key) -> int:
        """The shard owning ``key``: first vnode clockwise on the ring."""
        position = stable_hash(key)
        index = bisect.bisect_right(self._ring_hashes, position) % len(
            self._ring_hashes
        )
        return self._ring_shards[index]

    def replica_order(self, key) -> tuple[int, ...]:
        """Failover preference order of replica indices for ``key``.

        A key-derived rotation of ``0..replicas_per_shard-1``: each key
        has one stable primary (so its constraint caches warm on one
        replica) and a deterministic failover sequence through the rest
        of the group.
        """
        start = stable_hash((key, "replica")) % self.replicas_per_shard
        return tuple(
            (start + offset) % self.replicas_per_shard
            for offset in range(self.replicas_per_shard)
        )

    def route(self, key) -> tuple[int, tuple[int, ...]]:
        """``(shard, replica preference order)`` for one routing key."""
        return self.shard_for(key), self.replica_order(key)

    def placement(self, keys: Sequence) -> dict[int, int]:
        """Keys-per-shard histogram (diagnostics / balance tests)."""
        counts = {shard: 0 for shard in range(self.num_shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
