"""The NomLoc core: PDP proximity, SP constraints, relaxation, localizer."""

from .center import CenterMethod, feasible_polygon, region_center
from .constraints import (
    BOUNDARY_WEIGHT,
    Anchor,
    ConstraintKind,
    ConstraintSystem,
    WeightedConstraint,
    boundary_constraints,
    pairwise_constraints,
)
from .localizer import (
    LocalizerConfig,
    LocationEstimate,
    NomLocLocalizer,
    PieceSolution,
)
from .pdp import (
    CONFIDENCE_FUNCTIONS,
    PROXIMITY_METRICS,
    ProximityJudgement,
    confidence_factor,
    confidence_factor_power,
    confidence_factor_rational,
    estimate_first_tap,
    estimate_first_tap_batch,
    estimate_pdp,
    estimate_pdp_batch,
    estimate_pdp_median,
    estimate_rss,
    judge_proximity,
    proximity_confidence,
)
from .relaxation import RelaxationResult, solve_relaxation
from .system import NomLocSystem, SystemConfig, measure_link_pdp

__all__ = [
    "confidence_factor",
    "confidence_factor_rational",
    "confidence_factor_power",
    "CONFIDENCE_FUNCTIONS",
    "proximity_confidence",
    "estimate_pdp",
    "estimate_pdp_batch",
    "estimate_pdp_median",
    "estimate_rss",
    "estimate_first_tap",
    "estimate_first_tap_batch",
    "PROXIMITY_METRICS",
    "ProximityJudgement",
    "judge_proximity",
    "ConstraintKind",
    "WeightedConstraint",
    "ConstraintSystem",
    "Anchor",
    "BOUNDARY_WEIGHT",
    "pairwise_constraints",
    "boundary_constraints",
    "RelaxationResult",
    "solve_relaxation",
    "CenterMethod",
    "region_center",
    "feasible_polygon",
    "LocalizerConfig",
    "LocationEstimate",
    "PieceSolution",
    "NomLocLocalizer",
    "NomLocSystem",
    "SystemConfig",
    "measure_link_pdp",
]
