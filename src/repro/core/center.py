"""Region-centre estimators for the final feasible region.

The paper "choose[s] the center point of the region as the approximation
result" and obtains it from CVX's interior-point solver ("the center of
the feasible region by using logarithmic barrier functions").  Three
estimators are provided and compared in the ABL-CTR ablation:

* **CENTROID** — exact area centroid of the clipped feasible polygon
  (exact in 2-D; the default);
* **CHEBYSHEV** — centre of the largest inscribed disk (LP);
* **ANALYTIC** — the log-barrier analytic centre (what CVX effectively
  returned to the authors).
"""

from __future__ import annotations

import enum
from typing import Any, Sequence

import numpy as np

from ..geometry import HalfSpace, Point, Polygon, intersect_halfspaces
from ..optimize import analytic_center, chebyshev_center, chebyshev_center_batch

__all__ = [
    "CenterMethod",
    "region_center",
    "region_centers_batch",
    "feasible_polygon",
]


class CenterMethod(enum.Enum):
    """How to turn the feasible region into a point estimate."""

    CENTROID = "centroid"
    CHEBYSHEV = "chebyshev"
    ANALYTIC = "analytic"


def feasible_polygon(
    halfspaces: Sequence[HalfSpace], bound: Polygon
) -> Polygon | None:
    """Exact feasible polygon: the halfspaces clipped against ``bound``."""
    return intersect_halfspaces(halfspaces, bound)


#: Sentinel distinguishing "no precomputed region passed" from a caller
#: that already clipped and found the region empty (``region=None``).
_UNSET: Any = object()


def region_center(
    halfspaces: Sequence[HalfSpace],
    bound: Polygon,
    method: CenterMethod = CenterMethod.CENTROID,
    fallback: np.ndarray | None = None,
    region: Polygon | None | Any = _UNSET,
) -> Point | None:
    """Centre of ``{z : halfspaces} ∩ bound`` by the chosen method.

    Returns ``None`` when the region is empty and no ``fallback`` point is
    given; with a ``fallback`` (typically the relaxation LP's feasible
    point) a degenerate region still yields an estimate.  A caller that
    already clipped the same halfspaces may pass the result as ``region``
    (including ``None`` for "known empty") to skip the redundant clip —
    clipping is deterministic, so the centre is unchanged.
    """
    if region is _UNSET:
        region = feasible_polygon(halfspaces, bound)
    if region is None:
        if fallback is None:
            return None
        return Point(float(fallback[0]), float(fallback[1]))

    if method is CenterMethod.CENTROID:
        return region.centroid()

    # LP-based centres work on the region's own halfspace description --
    # the polygon edges -- which already includes the bound.
    a_arr, b_arr = _region_rows(region)

    if method is CenterMethod.CHEBYSHEV:
        result = chebyshev_center(a_arr, b_arr)
    elif method is CenterMethod.ANALYTIC:
        result = analytic_center(a_arr, b_arr)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown centre method {method!r}")

    if not result.ok:
        # Extremely thin regions can defeat the LP centres; the exact
        # centroid is always available.
        return region.centroid()
    return Point(float(result.x[0]), float(result.x[1]))


def _region_rows(region: Polygon) -> tuple[np.ndarray, np.ndarray]:
    """The region's own halfspace description, one outward row per edge."""
    a = []
    b = []
    for edge in region.edges():
        normal = edge.normal()  # left of CCW direction = inward
        # inward normal n satisfies n . z >= n . p on the region, i.e.
        # (-n) . z <= -(n . p): outward halfspace row.
        p = edge.a
        a.append([-normal.x, -normal.y])
        b.append(-(normal.x * p.x + normal.y * p.y))
    return np.array(a), np.array(b)


def region_centers_batch(
    regions: Sequence[Polygon | None],
    fallbacks: Sequence[np.ndarray],
    method: CenterMethod = CenterMethod.CENTROID,
) -> list[Point]:
    """Centres of many already-clipped regions, LP methods stacked.

    Bit-identical to calling :func:`region_center` per region with the
    matching ``fallback`` and a precomputed ``region`` argument: empty
    regions fall back to their LP feasible point, CENTROID takes each
    polygon's exact centroid, and the LP-based centres (CHEBYSHEV via the
    lockstep :func:`~repro.optimize.chebyshev_center_batch`, ANALYTIC via
    the scalar barrier solve) run on each region's own edge rows with the
    same thin-region centroid fallback.
    """
    centers: list[Point | None] = [None] * len(regions)
    lp_lanes: list[int] = []
    for i, (region, fallback) in enumerate(zip(regions, fallbacks)):
        if region is None:
            centers[i] = Point(float(fallback[0]), float(fallback[1]))
        elif method is CenterMethod.CENTROID:
            centers[i] = region.centroid()
        elif method is CenterMethod.ANALYTIC:
            centers[i] = region_center(
                (), None, method, fallback=fallback, region=region
            )
        else:
            lp_lanes.append(i)
    if lp_lanes:
        rows = [_region_rows(regions[i]) for i in lp_lanes]
        for i, result in zip(lp_lanes, chebyshev_center_batch(rows)):
            if not result.ok:
                centers[i] = regions[i].centroid()
            else:
                centers[i] = Point(float(result.x[0]), float(result.x[1]))
    return centers  # type: ignore[return-value]  # every slot is filled
