"""Constraint construction for SP-based location estimation (Sec. IV-B).

Three constraint families, each a weighted halfspace on the unknown
position ``z``:

* **pairwise** (Eq. 8): one perpendicular-bisector constraint per anchor
  pair, oriented by the PDP proximity judgement, weighted by its
  confidence factor;
* **boundary** (Eq. 9–11): the area-of-interest edges via virtual APs,
  with a large preset weight so they are satisfied "with high priority";
* **nomadic** (Eq. 13–15): for each site the nomadic AP measured from,
  one constraint against every static AP — ``S x (n - 1)`` extra rows.

In the paper's formulation the nomadic constraints assume the object is
closer to the nomadic AP; here the direction of every pairwise row is
decided by the actual PDP comparison, which reduces to the paper's form
when the nomadic AP wins all comparisons.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..geometry import (
    HalfSpace,
    Point,
    Polygon,
    bisector_halfspace,
    boundary_halfspaces,
)
from ..obs import span
from .pdp import confidence_factor, proximity_confidence

__all__ = [
    "ConstraintKind",
    "WeightedConstraint",
    "ConstraintSystem",
    "Anchor",
    "BOUNDARY_WEIGHT",
    "pairwise_constraints",
    "boundary_constraints",
]

#: Preset weight for area-boundary constraints (Sec. IV-B4: "a large
#: weight to guarantee the corresponding constraint satisfied with high
#: priority").
BOUNDARY_WEIGHT = 100.0


class ConstraintKind(enum.Enum):
    """Which family a constraint row belongs to."""

    PAIRWISE = "pairwise"
    BOUNDARY = "boundary"
    NOMADIC = "nomadic"


@dataclass(frozen=True, slots=True)
class Anchor:
    """A position the object's PDP was measured against.

    Static APs contribute one anchor each; a nomadic AP contributes one
    anchor per visited site (with the coordinates it *reported*, which may
    be wrong — Sec. V-E).
    """

    name: str
    position: Point
    pdp: float
    nomadic: bool = False

    def __post_init__(self) -> None:
        if self.pdp <= 0:
            raise ValueError("anchor PDP must be positive")


@dataclass(frozen=True, slots=True)
class WeightedConstraint:
    """One weighted halfspace row of the relaxation LP."""

    halfspace: HalfSpace
    weight: float
    kind: ConstraintKind
    label: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("constraint weight must be positive")


@dataclass(frozen=True)
class ConstraintSystem:
    """An ordered stack of weighted constraints (the LP's ``A z <= b``)."""

    constraints: tuple[WeightedConstraint, ...]

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(A, b, w)`` with rows in constraint order."""
        if not self.constraints:
            return np.zeros((0, 2)), np.zeros(0), np.zeros(0)
        a = np.array(
            [[c.halfspace.ax, c.halfspace.ay] for c in self.constraints]
        )
        b = np.array([c.halfspace.b for c in self.constraints])
        w = np.array([c.weight for c in self.constraints])
        return a, b, w

    def of_kind(self, kind: ConstraintKind) -> list[WeightedConstraint]:
        """Constraints from one family, preserving order."""
        return [c for c in self.constraints if c.kind is kind]

    def extended(self, extra: Sequence[WeightedConstraint]) -> "ConstraintSystem":
        """A new system with ``extra`` appended."""
        return ConstraintSystem(self.constraints + tuple(extra))


def pairwise_constraints(
    anchors: Sequence[Anchor],
    include_nomadic_pairs: bool = False,
    normalize: bool = True,
    confidence_fn=confidence_factor,
    bisector_cache=None,
    quality_weights: Mapping[str, float] | None = None,
) -> list[WeightedConstraint]:
    """Bisector constraints for anchor pairs, oriented by PDP.

    Parameters
    ----------
    anchors:
        All anchors with their measured PDPs.  Pairs where both anchors
        are nomadic sites are skipped unless ``include_nomadic_pairs`` —
        the paper only compares nomadic sites against static APs
        (Eq. 13 contributes ``n - 1`` rows per site).
    normalize:
        Scale each halfspace to a unit normal so LP slack variables are
        measured in metres for every row; without this, rows from
        far-apart anchor pairs get numerically larger coefficients and the
        relaxation trades them off inconsistently.
    confidence_fn:
        Which Eq. 2-3-satisfying ``f`` weights the rows (the paper's
        Eq. 4 by default; see
        :data:`repro.core.pdp.CONFIDENCE_FUNCTIONS`).
    bisector_cache:
        Optional mapping (``get``/``__setitem__``) memoizing the
        normalized bisector halfspace by (near, far) position pair —
        anchor geometries recur across serving queries while the PDPs
        (and hence orientations/weights) change, so only the geometric
        part is cached.  The cached value is exactly what the uncached
        path computes, keeping results bit-identical.
    quality_weights:
        Optional per-anchor link-quality scores in ``(0, 1]``, keyed by
        anchor name (see :mod:`repro.guard`).  A judgement is only as
        trustworthy as its *weaker* measurement, so each row's weight is
        scaled by ``min(q_i, q_j)`` — degraded links argue more softly
        in the relaxation LP instead of being believed at full
        confidence.  ``None`` (and any anchor not in the mapping, which
        defaults to 1.0) leaves weights bit-identical to the ungated
        path.
    """
    with span("constraints.pairwise", anchors=len(anchors)) as sp:
        out: list[WeightedConstraint] = []
        n = len(anchors)
        pdps = [a.pdp for a in anchors]
        for i in range(n):
            a_i = anchors[i]
            p_i = pdps[i]
            for j in range(i + 1, n):
                a_j = anchors[j]
                if a_i.nomadic and a_j.nomadic and not include_nomadic_pairs:
                    continue
                if a_i.position.almost_equals(a_j.position):
                    continue  # coincident anchors give no information
                # judge_proximity, inlined for the serving hot loop:
                # larger PDP wins (ties to the lower index), confidence
                # from the weaker/stronger power ratio — same arithmetic,
                # minus the per-pair judgement object.
                p_j = pdps[j]
                confidence = proximity_confidence(p_i, p_j, confidence_fn)
                if p_i >= p_j:
                    near, far = a_i, a_j
                else:
                    near, far = a_j, a_i
                hs = None
                cache_key = None
                if bisector_cache is not None:
                    cache_key = (
                        near.position.x,
                        near.position.y,
                        far.position.x,
                        far.position.y,
                        normalize,
                    )
                    hs = bisector_cache.get(cache_key)
                if hs is None:
                    hs = bisector_halfspace(near.position, far.position)
                    if normalize:
                        hs = hs.normalized()
                    if bisector_cache is not None:
                        bisector_cache[cache_key] = hs
                kind = (
                    ConstraintKind.NOMADIC
                    if (a_i.nomadic or a_j.nomadic)
                    else ConstraintKind.PAIRWISE
                )
                weight = confidence
                if quality_weights is not None:
                    quality = min(
                        quality_weights.get(a_i.name, 1.0),
                        quality_weights.get(a_j.name, 1.0),
                    )
                    if not 0.0 < quality <= 1.0:
                        raise ValueError(
                            f"quality weight for pair {a_i.name}/{a_j.name} "
                            f"must be in (0, 1], got {quality}"
                        )
                    weight = weight * quality
                out.append(
                    WeightedConstraint(
                        hs,
                        weight,
                        kind,
                        label=f"{near.name}<{far.name}",
                    )
                )
        sp.incr("rows", len(out))
        return out


def boundary_constraints(
    area: Polygon,
    anchor_position: Point | None = None,
    weight: float = BOUNDARY_WEIGHT,
    normalize: bool = True,
) -> list[WeightedConstraint]:
    """Area-boundary constraints via virtual APs (Eq. 9-11).

    ``area`` must be convex (non-convex areas are decomposed first by the
    localizer).  ``anchor_position`` defaults to the area centroid — the
    paper notes any interior site works.
    """
    if not area.is_convex():
        raise ValueError("boundary constraints require a convex area")
    anchor = anchor_position or area.centroid()
    out = []
    for edge_idx, hs in enumerate(boundary_halfspaces(anchor, area)):
        if normalize:
            hs = hs.normalized()
        out.append(
            WeightedConstraint(
                hs, weight, ConstraintKind.BOUNDARY, label=f"edge{edge_idx}"
            )
        )
    return out
