"""Constraint construction for SP-based location estimation (Sec. IV-B).

Three constraint families, each a weighted halfspace on the unknown
position ``z``:

* **pairwise** (Eq. 8): one perpendicular-bisector constraint per anchor
  pair, oriented by the PDP proximity judgement, weighted by its
  confidence factor;
* **boundary** (Eq. 9–11): the area-of-interest edges via virtual APs,
  with a large preset weight so they are satisfied "with high priority";
* **nomadic** (Eq. 13–15): for each site the nomadic AP measured from,
  one constraint against every static AP — ``S x (n - 1)`` extra rows.

In the paper's formulation the nomadic constraints assume the object is
closer to the nomadic AP; here the direction of every pairwise row is
decided by the actual PDP comparison, which reduces to the paper's form
when the nomadic AP wins all comparisons.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from ..geometry import (
    EPS,
    HalfSpace,
    Point,
    Polygon,
    bisector_halfspace,
    boundary_halfspaces,
)
from ..obs import span
from .pdp import confidence_factor, proximity_confidence

__all__ = [
    "ConstraintKind",
    "WeightedConstraint",
    "ConstraintSystem",
    "Anchor",
    "BOUNDARY_WEIGHT",
    "pairwise_constraints",
    "pairwise_constraints_batch",
    "boundary_constraints",
]

#: Preset weight for area-boundary constraints (Sec. IV-B4: "a large
#: weight to guarantee the corresponding constraint satisfied with high
#: priority").
BOUNDARY_WEIGHT = 100.0


class ConstraintKind(enum.Enum):
    """Which family a constraint row belongs to."""

    PAIRWISE = "pairwise"
    BOUNDARY = "boundary"
    NOMADIC = "nomadic"


@dataclass(frozen=True, slots=True)
class Anchor:
    """A position the object's PDP was measured against.

    Static APs contribute one anchor each; a nomadic AP contributes one
    anchor per visited site (with the coordinates it *reported*, which may
    be wrong — Sec. V-E).
    """

    name: str
    position: Point
    pdp: float
    nomadic: bool = False

    def __post_init__(self) -> None:
        if self.pdp <= 0:
            raise ValueError("anchor PDP must be positive")


@dataclass(frozen=True, slots=True)
class WeightedConstraint:
    """One weighted halfspace row of the relaxation LP."""

    halfspace: HalfSpace
    weight: float
    kind: ConstraintKind
    label: str = ""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("constraint weight must be positive")


@dataclass(frozen=True)
class ConstraintSystem:
    """An ordered stack of weighted constraints (the LP's ``A z <= b``)."""

    constraints: tuple[WeightedConstraint, ...]

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(A, b, w)`` with rows in constraint order.

        Memoized: the system is frozen, so the matrices are built once and
        the same arrays are returned on every call (the LP setup, the
        geometry rounds, and the Chebyshev stack all read them).  Callers
        must treat them as read-only.
        """
        cached = self.__dict__.get("_matrices")
        if cached is not None:
            return cached
        if not self.constraints:
            mats = (np.zeros((0, 2)), np.zeros(0), np.zeros(0))
        else:
            a = np.array(
                [[c.halfspace.ax, c.halfspace.ay] for c in self.constraints]
            )
            b = np.array([c.halfspace.b for c in self.constraints])
            w = np.array([c.weight for c in self.constraints])
            mats = (a, b, w)
        object.__setattr__(self, "_matrices", mats)
        return mats

    @classmethod
    def with_matrices(
        cls,
        constraints: tuple[WeightedConstraint, ...],
        a: np.ndarray,
        b: np.ndarray,
        w: np.ndarray,
    ) -> "ConstraintSystem":
        """A system with its :meth:`matrices` cache preseeded.

        The batched assembly path already holds the stacked ``(A, b, w)``
        arrays, so rebuilding them from the row objects would be pure
        waste.  The caller guarantees the arrays match the rows exactly
        (same values, same order) — the preseed is then bit-identical to
        what :meth:`matrices` would build.
        """
        system = cls(constraints)
        object.__setattr__(system, "_matrices", (a, b, w))
        return system

    def of_kind(self, kind: ConstraintKind) -> list[WeightedConstraint]:
        """Constraints from one family, preserving order."""
        return [c for c in self.constraints if c.kind is kind]

    def extended(self, extra: Sequence[WeightedConstraint]) -> "ConstraintSystem":
        """A new system with ``extra`` appended."""
        return ConstraintSystem(self.constraints + tuple(extra))


def pairwise_constraints(
    anchors: Sequence[Anchor],
    include_nomadic_pairs: bool = False,
    normalize: bool = True,
    confidence_fn=confidence_factor,
    bisector_cache=None,
    quality_weights: Mapping[str, float] | None = None,
) -> list[WeightedConstraint]:
    """Bisector constraints for anchor pairs, oriented by PDP.

    Parameters
    ----------
    anchors:
        All anchors with their measured PDPs.  Pairs where both anchors
        are nomadic sites are skipped unless ``include_nomadic_pairs`` —
        the paper only compares nomadic sites against static APs
        (Eq. 13 contributes ``n - 1`` rows per site).
    normalize:
        Scale each halfspace to a unit normal so LP slack variables are
        measured in metres for every row; without this, rows from
        far-apart anchor pairs get numerically larger coefficients and the
        relaxation trades them off inconsistently.
    confidence_fn:
        Which Eq. 2-3-satisfying ``f`` weights the rows (the paper's
        Eq. 4 by default; see
        :data:`repro.core.pdp.CONFIDENCE_FUNCTIONS`).
    bisector_cache:
        Optional mapping (``get``/``__setitem__``) memoizing the
        normalized bisector halfspace by (near, far) position pair —
        anchor geometries recur across serving queries while the PDPs
        (and hence orientations/weights) change, so only the geometric
        part is cached.  The cached value is exactly what the uncached
        path computes, keeping results bit-identical.
    quality_weights:
        Optional per-anchor link-quality scores in ``(0, 1]``, keyed by
        anchor name (see :mod:`repro.guard`).  A judgement is only as
        trustworthy as its *weaker* measurement, so each row's weight is
        scaled by ``min(q_i, q_j)`` — degraded links argue more softly
        in the relaxation LP instead of being believed at full
        confidence.  ``None`` (and any anchor not in the mapping, which
        defaults to 1.0) leaves weights bit-identical to the ungated
        path.
    """
    with span("constraints.pairwise", anchors=len(anchors)) as sp:
        out: list[WeightedConstraint] = []
        n = len(anchors)
        pdps = [a.pdp for a in anchors]
        for i in range(n):
            a_i = anchors[i]
            p_i = pdps[i]
            for j in range(i + 1, n):
                a_j = anchors[j]
                if a_i.nomadic and a_j.nomadic and not include_nomadic_pairs:
                    continue
                if a_i.position.almost_equals(a_j.position):
                    continue  # coincident anchors give no information
                # judge_proximity, inlined for the serving hot loop:
                # larger PDP wins (ties to the lower index), confidence
                # from the weaker/stronger power ratio — same arithmetic,
                # minus the per-pair judgement object.
                p_j = pdps[j]
                confidence = proximity_confidence(p_i, p_j, confidence_fn)
                if p_i >= p_j:
                    near, far = a_i, a_j
                else:
                    near, far = a_j, a_i
                hs = None
                cache_key = None
                if bisector_cache is not None:
                    cache_key = (
                        near.position.x,
                        near.position.y,
                        far.position.x,
                        far.position.y,
                        normalize,
                    )
                    hs = bisector_cache.get(cache_key)
                if hs is None:
                    hs = bisector_halfspace(near.position, far.position)
                    if normalize:
                        hs = hs.normalized()
                    if bisector_cache is not None:
                        bisector_cache[cache_key] = hs
                kind = (
                    ConstraintKind.NOMADIC
                    if (a_i.nomadic or a_j.nomadic)
                    else ConstraintKind.PAIRWISE
                )
                weight = confidence
                if quality_weights is not None:
                    quality = min(
                        quality_weights.get(a_i.name, 1.0),
                        quality_weights.get(a_j.name, 1.0),
                    )
                    if not 0.0 < quality <= 1.0:
                        raise ValueError(
                            f"quality weight for pair {a_i.name}/{a_j.name} "
                            f"must be in (0, 1], got {quality}"
                        )
                    weight = weight * quality
                out.append(
                    WeightedConstraint(
                        hs,
                        weight,
                        kind,
                        label=f"{near.name}<{far.name}",
                    )
                )
        sp.incr("rows", len(out))
        return out


@lru_cache(maxsize=128)
def _pair_template(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Upper-triangle ``(i, j)`` index pairs in the scalar loop's order."""
    ii, jj = np.triu_indices(n, k=1)
    return ii, jj


def pairwise_constraints_batch(
    queries: Sequence[Sequence[Anchor]],
    include_nomadic_pairs: bool = False,
    normalize: bool = True,
    confidence_fn=confidence_factor,
    bisector_cache=None,
    quality_weights: Sequence[Mapping[str, float] | None] | None = None,
) -> list[
    tuple[tuple[WeightedConstraint, ...], tuple[np.ndarray, np.ndarray, np.ndarray]]
]:
    """Bisector constraints for many queries' anchor pairs in array passes.

    Stacks every anchor pair of every query and computes the skip masks
    (both-nomadic, coincident positions), the PDP power ratios, and the
    near/far orientation in vectorized passes; the transcendental
    confidence function and the bisector construction stay scalar per row
    / per distinct pair, because NumPy's SIMD ``pow`` is not bit-identical
    to Python's ``**`` and the bisector normalization must reproduce
    :func:`~repro.geometry.bisector_halfspace` exactly.

    Returns, per query, ``(rows, (a, b, w))``: the same
    :class:`WeightedConstraint` tuple the scalar
    :func:`pairwise_constraints` builds (same halfspaces, weights, kinds,
    labels, order) plus the stacked LP matrices over those rows, ready to
    preseed :meth:`ConstraintSystem.matrices`.

    ``bisector_cache`` keeps its semantics (same keys, same cached
    values); the only observable difference is the *lookup count* — each
    distinct anchor-position pair is consulted once per batch instead of
    once per row, so cache hit/miss statistics differ while every stored
    and returned halfspace stays bit-identical.
    """
    nq = len(queries)
    qw_list: Sequence[Mapping[str, float] | None]
    qw_list = quality_weights if quality_weights is not None else [None] * nq
    if len(qw_list) != nq:
        raise ValueError("quality_weights length must match queries")
    with span("constraints.pairwise_batch", queries=nq) as sp:
        # ---- stack every pair of every query -------------------------
        xi_parts: list[np.ndarray] = []
        yi_parts: list[np.ndarray] = []
        xj_parts: list[np.ndarray] = []
        yj_parts: list[np.ndarray] = []
        pi_parts: list[np.ndarray] = []
        pj_parts: list[np.ndarray] = []
        nomi_parts: list[np.ndarray] = []
        nomj_parts: list[np.ndarray] = []
        pair_meta: list[tuple[int, int, int]] = []  # (query, i, j) per pair
        for q, anchors in enumerate(queries):
            n = len(anchors)
            if n < 2:
                continue  # caller-level validation owns the error message
            px = np.array([a.position.x for a in anchors], dtype=float)
            py = np.array([a.position.y for a in anchors], dtype=float)
            pdp = np.array([a.pdp for a in anchors], dtype=float)
            nom = np.array([a.nomadic for a in anchors], dtype=bool)
            ii, jj = _pair_template(n)
            xi_parts.append(px[ii])
            yi_parts.append(py[ii])
            xj_parts.append(px[jj])
            yj_parts.append(py[jj])
            pi_parts.append(pdp[ii])
            pj_parts.append(pdp[jj])
            nomi_parts.append(nom[ii])
            nomj_parts.append(nom[jj])
            pair_meta.extend(
                (q, int(i), int(j)) for i, j in zip(ii.tolist(), jj.tolist())
            )
        if not pair_meta:
            return [((), (np.zeros((0, 2)), np.zeros(0), np.zeros(0)))] * nq
        xi = np.concatenate(xi_parts)
        yi = np.concatenate(yi_parts)
        xj = np.concatenate(xj_parts)
        yj = np.concatenate(yj_parts)
        p_i = np.concatenate(pi_parts)
        p_j = np.concatenate(pj_parts)
        nom_i = np.concatenate(nomi_parts)
        nom_j = np.concatenate(nomj_parts)

        # ---- skip masks (same predicates as the scalar loop) ---------
        keep = ~(
            (np.abs(xi - xj) <= EPS) & (np.abs(yi - yj) <= EPS)
        )  # Point.almost_equals
        if not include_nomadic_pairs:
            keep &= ~(nom_i & nom_j)
        kept = np.flatnonzero(keep)
        if kept.size == 0:
            return [((), (np.zeros((0, 2)), np.zeros(0), np.zeros(0)))] * nq
        xi, yi, xj, yj = xi[kept], yi[kept], xj[kept], yj[kept]
        p_i, p_j = p_i[kept], p_j[kept]
        nomadic_row = (nom_i | nom_j)[kept]
        meta = [pair_meta[k] for k in kept.tolist()]

        # ---- proximity confidence ------------------------------------
        # min/max reproduce the scalar ``sorted((p_i, p_j))`` exactly;
        # the confidence function runs per row on Python floats because
        # its ``2.0 ** (-x)`` is not bit-identical to np.power.
        ratio = np.minimum(p_i, p_j) / np.maximum(p_i, p_j)
        confidence = [confidence_fn(r) for r in ratio.tolist()]
        near_is_i = p_i >= p_j

        # ---- distinct (near, far) pairs -> halfspaces ----------------
        nx = np.where(near_is_i, xi, xj)
        ny = np.where(near_is_i, yi, yj)
        fx = np.where(near_is_i, xj, xi)
        fy = np.where(near_is_i, yj, yi)
        pair_rows = np.column_stack((nx, ny, fx, fy))
        distinct, inverse = np.unique(pair_rows, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        halfspaces: list[HalfSpace] = []
        for dnx, dny, dfx, dfy in distinct.tolist():
            hs = None
            if bisector_cache is not None:
                cache_key = (dnx, dny, dfx, dfy, normalize)
                hs = bisector_cache.get(cache_key)
            if hs is None:
                hs = bisector_halfspace(Point(dnx, dny), Point(dfx, dfy))
                if normalize:
                    hs = hs.normalized()
                if bisector_cache is not None:
                    bisector_cache[cache_key] = hs
            halfspaces.append(hs)
        hs_ax = np.array([h.ax for h in halfspaces])
        hs_ay = np.array([h.ay for h in halfspaces])
        hs_b = np.array([h.b for h in halfspaces])
        row_ax = hs_ax[inverse]
        row_ay = hs_ay[inverse]
        row_b = hs_b[inverse]

        # ---- weights (quality gating stays scalar for error parity) --
        weights: list[float] = confidence
        needs_quality = any(qw is not None for qw in qw_list)
        if needs_quality:
            weights = []
            for conf, (q, i, j) in zip(confidence, meta):
                qw = qw_list[q]
                if qw is None:
                    weights.append(conf)
                    continue
                anchors = queries[q]
                name_i = anchors[i].name
                name_j = anchors[j].name
                quality = min(qw.get(name_i, 1.0), qw.get(name_j, 1.0))
                if not 0.0 < quality <= 1.0:
                    raise ValueError(
                        f"quality weight for pair {name_i}/{name_j} "
                        f"must be in (0, 1], got {quality}"
                    )
                weights.append(conf * quality)

        # ---- materialize rows + per-query matrices -------------------
        nomadic_list = nomadic_row.tolist()
        rows: list[WeightedConstraint] = []
        for r, (q, i, j) in enumerate(meta):
            anchors = queries[q]
            if near_is_i[r]:
                near_name, far_name = anchors[i].name, anchors[j].name
            else:
                near_name, far_name = anchors[j].name, anchors[i].name
            rows.append(
                WeightedConstraint(
                    halfspaces[inverse[r]],
                    weights[r],
                    ConstraintKind.NOMADIC
                    if nomadic_list[r]
                    else ConstraintKind.PAIRWISE,
                    label=f"{near_name}<{far_name}",
                )
            )
        w_arr = np.array(weights)
        out: list[
            tuple[
                tuple[WeightedConstraint, ...],
                tuple[np.ndarray, np.ndarray, np.ndarray],
            ]
        ] = []
        start = 0
        row_q = [q for q, _, _ in meta]
        for q in range(nq):
            end = start
            while end < len(meta) and row_q[end] == q:
                end += 1
            a_q = np.column_stack((row_ax[start:end], row_ay[start:end]))
            out.append(
                (
                    tuple(rows[start:end]),
                    (a_q, row_b[start:end].copy(), w_arr[start:end].copy()),
                )
            )
            start = end
        sp.incr("rows", len(rows))
        return out


def boundary_constraints(
    area: Polygon,
    anchor_position: Point | None = None,
    weight: float = BOUNDARY_WEIGHT,
    normalize: bool = True,
) -> list[WeightedConstraint]:
    """Area-boundary constraints via virtual APs (Eq. 9-11).

    ``area`` must be convex (non-convex areas are decomposed first by the
    localizer).  ``anchor_position`` defaults to the area centroid — the
    paper notes any interior site works.
    """
    if not area.is_convex():
        raise ValueError("boundary constraints require a convex area")
    anchor = anchor_position or area.centroid()
    out = []
    for edge_idx, hs in enumerate(boundary_halfspaces(anchor, area)):
        if normalize:
            hs = hs.normalized()
        out.append(
            WeightedConstraint(
                hs, weight, ConstraintKind.BOUNDARY, label=f"edge{edge_idx}"
            )
        )
    return out
