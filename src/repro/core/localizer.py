"""SP-based location estimation (Sec. IV-B): the NomLoc localizer.

Pipeline per location query:

1. build pairwise bisector constraints from the anchors' PDPs (Eq. 8 and,
   for nomadic measurement sites, Eq. 13);
2. for each convex piece of the area of interest, add the piece's
   boundary constraints (Eq. 9) and solve the weighted relaxation LP
   (Eq. 19);
3. clip the relaxed halfspaces into the exact feasible polygon and take
   its centre; pieces with (near-)co-optimal relaxation cost are merged
   by area-weighted centroid, following the paper's "merge the areas with
   feasible solutions".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..geometry import (
    Point,
    Polygon,
    decompose_convex,
    distance_point_to_segment,
    intersect_halfspaces_batch,
)
from ..obs import span
from .center import (
    CenterMethod,
    feasible_polygon,
    region_center,
    region_centers_batch,
)
from .constraints import (
    BOUNDARY_WEIGHT,
    Anchor,
    ConstraintSystem,
    WeightedConstraint,
    boundary_constraints,
    pairwise_constraints,
    pairwise_constraints_batch,
)
from .relaxation import (
    _SLACK_TOL,
    RelaxationResult,
    solve_relaxation,
    solve_relaxation_batch,
)

__all__ = [
    "LocalizerConfig",
    "PieceSolution",
    "LocationEstimate",
    "NomLocLocalizer",
    "PieceMapper",
]

#: Strategy running ``solve_piece`` over every piece index.  The default
#: is a plain sequential loop; a serving layer can substitute a worker
#: pool — every strategy must preserve piece order so results stay
#: bit-identical to the sequential path.
PieceMapper = Callable[
    [Callable[[int], "PieceSolution"], Sequence[int]],
    Iterable["PieceSolution"],
]


@dataclass(frozen=True)
class LocalizerConfig:
    """Tunable knobs of the SP localizer.

    Attributes
    ----------
    center_method:
        Region-centre estimator (ablated in ABL-CTR).
    boundary_weight:
        Relaxation weight of the area-boundary constraints.
    include_nomadic_pairs:
        Also compare nomadic measurement sites against each other.  The
        paper's Eq. 13 only compares them against static APs, but PDPs of
        the *same* device measured from different sites are the most
        directly comparable measurements in the system, and without the
        site-site rows one erroneous site-vs-static judgement can leave a
        feasible-but-wrong region that nothing contradicts.  Default on;
        ablated in ABL-PAIRS.
    cost_merge_tolerance:
        Pieces whose relaxation cost is within this of the best are
        merged into the final estimate.
    confidence_fn:
        Name of the confidence function weighting the pairwise rows (a
        key of :data:`repro.core.pdp.CONFIDENCE_FUNCTIONS`; the paper's
        Eq. 4 by default).
    """

    center_method: CenterMethod = CenterMethod.CENTROID
    boundary_weight: float = BOUNDARY_WEIGHT
    include_nomadic_pairs: bool = True
    cost_merge_tolerance: float = 1e-6
    confidence_fn: str = "paper"

    def __post_init__(self) -> None:
        if self.boundary_weight <= 0:
            raise ValueError("boundary weight must be positive")
        if self.cost_merge_tolerance < 0:
            raise ValueError("merge tolerance must be non-negative")
        from .pdp import CONFIDENCE_FUNCTIONS

        if self.confidence_fn not in CONFIDENCE_FUNCTIONS:
            raise ValueError(
                f"unknown confidence function {self.confidence_fn!r}; "
                f"available: {sorted(CONFIDENCE_FUNCTIONS)}"
            )
        # Resolve once at construction: the serving hot loop calls
        # resolve_confidence_fn per query, and the registry import +
        # dict lookup showed up in profiles.  Not a dataclass field, so
        # equality/repr/pickling of the config are unaffected.
        object.__setattr__(
            self, "_confidence_impl", CONFIDENCE_FUNCTIONS[self.confidence_fn]
        )

    def resolve_confidence_fn(self):
        """The callable behind :attr:`confidence_fn` (cached at init)."""
        return self._confidence_impl


@dataclass(frozen=True)
class PieceSolution:
    """Relaxation outcome on one convex piece of the area."""

    piece_index: int
    piece: Polygon
    relaxation: RelaxationResult
    region: Polygon | None
    center: Point

    @property
    def cost(self) -> float:
        return self.relaxation.cost


class _LazyPieceSolution(PieceSolution):
    """A piece solution whose geometry is computed on first access.

    The batched locate path only ever *uses* the region/centre of the
    co-optimal winner pieces (``estimate_from_solutions`` reads losing
    pieces' cost alone), so losing pieces skip the polygon clip and
    centring entirely.  Diagnostics stay available: ``region``/``center``
    are data descriptors that materialize through the localizer's scalar
    geometry path on first read — the identical code the eager path runs,
    so the values are bit-identical, just late.

    Pickling materializes into a plain eager :class:`PieceSolution`
    (process pools ship solutions across workers; a thunk would not
    survive the trip).
    """

    def __init__(
        self,
        piece_index: int,
        piece: Polygon,
        relaxation: RelaxationResult,
        localizer: "NomLocLocalizer",
    ) -> None:
        # The parent dataclass is frozen; bypass its __setattr__.
        object.__setattr__(self, "piece_index", piece_index)
        object.__setattr__(self, "piece", piece)
        object.__setattr__(self, "relaxation", relaxation)
        object.__setattr__(self, "_localizer", localizer)
        object.__setattr__(self, "_geometry", None)

    def _materialized(self) -> tuple[Polygon | None, Point]:
        geometry = self._geometry
        if geometry is None:
            eager = self._localizer._solution_from_relaxation(
                self.piece_index, self.relaxation
            )
            geometry = (eager.region, eager.center)
            object.__setattr__(self, "_geometry", geometry)
        return geometry

    @property  # shadows the dataclass field: descriptors win over __dict__
    def region(self) -> Polygon | None:
        return self._materialized()[0]

    @property
    def center(self) -> Point:
        return self._materialized()[1]

    def __reduce__(self):
        return (
            PieceSolution,
            (
                self.piece_index,
                self.piece,
                self.relaxation,
                self.region,
                self.center,
            ),
        )


@dataclass(frozen=True)
class LocationEstimate:
    """Final output of one localization query.

    Attributes
    ----------
    position:
        The estimated object location.
    relaxation_cost:
        ``w . t`` of the winning piece (0 when fully feasible).
    region:
        Feasible polygon of the winning piece (None if degenerate).
    pieces:
        Per-piece diagnostics, winning piece(s) first is NOT guaranteed;
        order follows the convex decomposition.
    num_constraints:
        Rows in the winning piece's LP.
    confidence:
        Measurement-layer confidence in ``(0, 1]``: 1.0 when every link
        passed gating at full quality, lower when the guard layer
        down-weighted or dropped degraded links (see
        :mod:`repro.guard`).  Estimates from the ungated path always
        report 1.0.
    degradation_reasons:
        Why the confidence is below 1.0 — the sorted, deduplicated
        union of per-link gating reasons (``"nan-burst"``,
        ``"ap-outage"``, ...).  Empty for clean queries.
    """

    position: Point
    relaxation_cost: float
    region: Polygon | None
    pieces: tuple[PieceSolution, ...]
    num_constraints: int
    confidence: float = 1.0
    degradation_reasons: tuple[str, ...] = ()

    @property
    def was_feasible(self) -> bool:
        return self.relaxation_cost <= 1e-6

    @property
    def confidence_radius_m(self) -> float:
        """Radius of a disk with the feasible region's area.

        A self-reported uncertainty: the SP estimate cannot be pinned
        down more precisely than its cell, so the equivalent-disk radius
        is an honest error bar an application can act on (e.g. "the
        suspect is within ~r of here").  Infinity when the region is
        degenerate/unknown.
        """
        if self.region is None:
            return float("inf")
        return math.sqrt(self.region.area() / math.pi)

    def error_to(self, truth: Point) -> float:
        """Euclidean localization error against a ground-truth position."""
        return self.position.distance_to(truth)


class NomLocLocalizer:
    """Calibration-free SP localizer over a (possibly non-convex) area.

    Parameters
    ----------
    area:
        The area of interest; decomposed into convex pieces once.
    config:
        Behavioural knobs; defaults reproduce the paper.
    """

    def __init__(self, area: Polygon, config: LocalizerConfig | None = None) -> None:
        self.area = area
        self.config = config or LocalizerConfig()
        self.pieces: list[Polygon] = decompose_convex(area)
        # Clipping bound: the area's bounding box with head-room so mildly
        # relaxed boundary constraints still produce a region.
        xmin, ymin, xmax, ymax = area.bounding_box()
        margin = 0.25 * max(xmax - xmin, ymax - ymin) + 1.0
        self._bound = Polygon.rectangle(
            xmin - margin, ymin - margin, xmax + margin, ymax + margin
        )
        # Per-piece boundary rows (virtual-AP mirrors, Eq. 9-11) depend
        # only on the topology, never on a query's PDPs — build each once
        # and reuse it for every subsequent locate().
        self._boundary_rows: list[tuple[WeightedConstraint, ...] | None] = [
            None
        ] * len(self.pieces)
        # Matching (A, b, w) stacks per piece, for preseeding assembled
        # systems' matrices caches in the batched path.
        self._boundary_mats: list[
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ] = [None] * len(self.pieces)

    # ------------------------------------------------------------------
    # Constraint assembly, factored so a serving layer can cache the
    # topology-dependent prefix and rebuild only the PDP-dependent rows.
    # ------------------------------------------------------------------
    def build_shared_constraints(
        self,
        anchors: Sequence[Anchor],
        bisector_cache=None,
        quality_weights: Mapping[str, float] | None = None,
    ) -> tuple[WeightedConstraint, ...]:
        """The PDP-dependent pairwise/nomadic rows shared by every piece.

        ``bisector_cache`` optionally memoizes the geometric bisectors by
        anchor-position pair (see
        :func:`~repro.core.constraints.pairwise_constraints`);
        ``quality_weights`` optionally scales each row by the weaker
        anchor's link-quality score (the guard layer's degradation-aware
        hook — ``None`` keeps weights bit-identical to the ungated
        path).
        """
        if len(anchors) < 2:
            raise ValueError("need at least two anchors to partition space")
        with span("constraints.build_shared", anchors=len(anchors)) as sp:
            shared = pairwise_constraints(
                anchors,
                include_nomadic_pairs=self.config.include_nomadic_pairs,
                confidence_fn=self.config.resolve_confidence_fn(),
                bisector_cache=bisector_cache,
                quality_weights=quality_weights,
            )
            if not shared:
                raise ValueError(
                    "no usable anchor pairs (all anchors coincident or filtered)"
                )
            sp.incr("rows", len(shared))
            return tuple(shared)

    def piece_boundary_rows(self, index: int) -> tuple[WeightedConstraint, ...]:
        """The cached boundary rows of one convex piece."""
        rows = self._boundary_rows[index]
        if rows is None:
            rows = tuple(
                boundary_constraints(
                    self.pieces[index], weight=self.config.boundary_weight
                )
            )
            self._boundary_rows[index] = rows
        return rows

    def warm(self) -> "NomLocLocalizer":
        """Precompute every piece's boundary rows (for cache priming)."""
        for index in range(len(self.pieces)):
            self.piece_boundary_rows(index)
        return self

    def _piece_boundary_matrices(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(A, b, w)`` stack of one piece's boundary rows."""
        mats = self._boundary_mats[index]
        if mats is None:
            mats = ConstraintSystem(self.piece_boundary_rows(index)).matrices()
            self._boundary_mats[index] = mats
        return mats

    def assemble_piece_system(
        self,
        index: int,
        shared: Sequence[WeightedConstraint],
        shared_matrices: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> ConstraintSystem:
        """Full LP stack of one piece: shared rows + cached boundary rows.

        ``shared_matrices`` optionally carries the precomputed ``(A, b,
        w)`` stack of the shared rows (the batched assembly already has
        it); the assembled system's matrices cache is then preseeded by
        concatenating it with the piece's cached boundary stack —
        bit-identical to rebuilding from the row objects, without
        iterating them again per piece per query.
        """
        rows = tuple(shared) + self.piece_boundary_rows(index)
        if shared_matrices is None:
            return ConstraintSystem(rows)
        a_sh, b_sh, w_sh = shared_matrices
        a_bd, b_bd, w_bd = self._piece_boundary_matrices(index)
        return ConstraintSystem.with_matrices(
            rows,
            np.concatenate([a_sh, a_bd]),
            np.concatenate([b_sh, b_bd]),
            np.concatenate([w_sh, w_bd]),
        )

    # ------------------------------------------------------------------
    def locate(
        self,
        anchors: Sequence[Anchor],
        piece_mapper: PieceMapper | None = None,
        quality_weights: Mapping[str, float] | None = None,
    ) -> LocationEstimate:
        """Estimate the object's position from anchor PDPs.

        Requires at least two anchors (one bisector); realistic use has
        four static APs plus the nomadic sites.  ``piece_mapper``
        optionally runs the independent per-piece solves through a worker
        pool; it must preserve piece order.  ``quality_weights``
        optionally down-weights rows touching degraded links (see
        :meth:`build_shared_constraints`).
        """
        shared = self.build_shared_constraints(
            anchors, quality_weights=quality_weights
        )
        solver = lambda idx: self.solve_piece(idx, shared)  # noqa: E731
        indices = range(len(self.pieces))
        if piece_mapper is None:
            solutions = [solver(idx) for idx in indices]
        else:
            solutions = list(piece_mapper(solver, indices))
        return self.estimate_from_solutions(solutions)

    def build_shared_constraints_batch(
        self,
        queries: Sequence[Sequence[Anchor]],
        quality_weights: Sequence[Mapping[str, float] | None] | None = None,
        bisector_cache=None,
    ) -> list[
        tuple[
            tuple[WeightedConstraint, ...],
            tuple[np.ndarray, np.ndarray, np.ndarray],
        ]
    ]:
        """Shared pairwise rows for many queries via the stacked assembly.

        Per query, the returned rows are bit-identical to
        :meth:`build_shared_constraints`; the accompanying ``(A, b, w)``
        arrays preseed the piece systems' matrices caches.  Queries are
        validated in order, so the first offending query raises the same
        error the scalar per-query loop would have raised first.
        """
        with span("constraints.build_batch", queries=len(queries)) as sp:
            assembled = pairwise_constraints_batch(
                queries,
                include_nomadic_pairs=self.config.include_nomadic_pairs,
                confidence_fn=self.config.resolve_confidence_fn(),
                bisector_cache=bisector_cache,
                quality_weights=quality_weights,
            )
            total = 0
            for anchors, (rows, _mats) in zip(queries, assembled):
                if len(anchors) < 2:
                    raise ValueError(
                        "need at least two anchors to partition space"
                    )
                if not rows:
                    raise ValueError(
                        "no usable anchor pairs "
                        "(all anchors coincident or filtered)"
                    )
                total += len(rows)
            sp.incr("rows", total)
            return assembled

    def locate_batch(
        self,
        queries: Sequence[Sequence[Anchor]],
        quality_weights: Sequence[Mapping[str, float] | None] | None = None,
        bisector_cache=None,
    ) -> list[LocationEstimate]:
        """Estimate positions for many queries in stacked NumPy passes.

        The whole non-LP pipeline is batched alongside the stacked
        relaxation LPs: constraint assembly runs through
        :meth:`build_shared_constraints_batch` (one array pass over every
        anchor pair of every query), every ``(query, piece)`` LP solves
        through :func:`solve_relaxation_batch`, and region geometry runs
        winner-only — pieces within ``cost_merge_tolerance`` of their
        query's best cost clip/centre through
        :func:`~repro.geometry.intersect_halfspaces_batch` and
        :func:`~repro.core.center.region_centers_batch`, while losing
        pieces get lazy solutions whose region/centre materialize only if
        a diagnostic reads them.  Estimates are **bit-identical** to
        calling :meth:`locate` per query in order.
        """
        if not queries:
            return []
        weights: Sequence[Mapping[str, float] | None]
        weights = quality_weights or [None] * len(queries)
        if len(weights) != len(queries):
            raise ValueError("quality_weights length must match queries")
        shareds = self.build_shared_constraints_batch(
            queries, quality_weights=weights, bisector_cache=bisector_cache
        )
        indices = list(range(len(self.pieces)))
        with span(
            "lp.solve_batch", queries=len(queries), pieces=len(indices)
        ) as sp:
            systems = []
            for shared, mats in shareds:
                for index in indices:
                    systems.append(
                        self.assemble_piece_system(
                            index, shared, shared_matrices=mats
                        )
                    )
            sp.incr("rows", sum(len(s) for s in systems))
            relaxations = solve_relaxation_batch(systems)
        npieces = len(indices)
        groups = [
            list(zip(indices, relaxations[qi * npieces : (qi + 1) * npieces]))
            for qi in range(len(queries))
        ]
        solution_groups = self._winner_lazy_solutions(groups)
        return [
            self.estimate_from_solutions(solutions)
            for solutions in solution_groups
        ]

    def estimate_from_solutions(
        self, solutions: Sequence[PieceSolution]
    ) -> LocationEstimate:
        """Merge per-piece solutions into the final estimate."""
        if not solutions:
            raise ValueError(
                "estimate_from_solutions needs at least one piece solution; "
                "localize at least one topology piece before merging"
            )
        with span("merge", pieces=len(solutions)) as sp:
            best_cost = min(s.cost for s in solutions)
            winners = [
                s
                for s in solutions
                if s.cost <= best_cost + self.config.cost_merge_tolerance
            ]
            sp.incr("winners", len(winners))
            merged_position = self.project_into_area(_merge_centers(winners))
            winner = winners[0]
            return LocationEstimate(
                position=merged_position,
                relaxation_cost=best_cost,
                region=winner.region,
                pieces=tuple(solutions),
                num_constraints=len(winner.relaxation.system),
            )

    def project_into_area(self, p: Point) -> Point:
        """Guarantee in-venue estimates.

        Slightly relaxed boundary rows (the degeneracy fallback) can put a
        centre a few centimetres outside; project it to the nearest
        boundary point in that case.
        """
        if self.area.contains(p):
            return p
        best_edge = min(
            self.area.edges(), key=lambda e: distance_point_to_segment(p, e)
        )
        d = best_edge.b - best_edge.a
        denom = d.x * d.x + d.y * d.y
        if denom <= 0:
            return best_edge.a
        t = ((p.x - best_edge.a.x) * d.x + (p.y - best_edge.a.y) * d.y) / denom
        t = max(0.0, min(1.0, t))
        return best_edge.a + d * t

    # ------------------------------------------------------------------
    def solve_piece(
        self,
        index: int,
        shared: Sequence[WeightedConstraint],
    ) -> PieceSolution:
        """Solve one convex piece's relaxation LP and centre its region.

        Pieces are independent of each other, so a serving layer may call
        this concurrently for different indices (and different queries):
        it only reads immutable state after the first boundary-row build.
        """
        with span("lp.solve", piece=index) as sp:
            system = self.assemble_piece_system(index, shared)
            sp.incr("rows", len(system))
            relaxation = solve_relaxation(system)
            return self._solution_from_relaxation(index, relaxation)

    def solve_pieces_batch(
        self,
        indices: Sequence[int],
        shared: Sequence[WeightedConstraint],
    ) -> list[PieceSolution]:
        """Solve many pieces' relaxation LPs in one stacked pass.

        Same results as calling :meth:`solve_piece` per index — the
        batched relaxation is bit-identical to the sequential one — but
        the LPs are stacked by shape so N solves advance per NumPy call
        instead of per Python-level pivot loop, and geometry runs
        winner-only (losing pieces' region/centre materialize lazily on
        access, with identical values).

        Emits the ``lp.solve_pieces`` span: :meth:`locate_batch` owns the
        ``lp.solve_batch`` name, and the two carry different attribute
        sets, so sharing one name would corrupt per-stage aggregation.
        """
        with span("lp.solve_pieces", pieces=len(indices)) as sp:
            systems = [self.assemble_piece_system(i, shared) for i in indices]
            sp.incr("rows", sum(len(s) for s in systems))
            relaxations = solve_relaxation_batch(systems)
        groups = [list(zip(indices, relaxations))]
        return self._winner_lazy_solutions(groups)[0]

    def _winner_lazy_solutions(
        self,
        groups: Sequence[Sequence[tuple[int, RelaxationResult]]],
    ) -> list[list[PieceSolution]]:
        """Winner-only geometry over many queries' piece relaxations.

        ``groups`` holds one ``(piece_index, relaxation)`` list per query.
        Pieces within ``cost_merge_tolerance`` of their query's best cost
        get eager regions/centres through one cross-query batched clip +
        centring pass; the rest become :class:`_LazyPieceSolution`.  The
        winner predicate is exactly the one
        :meth:`estimate_from_solutions` applies, so every region/centre
        that method reads is eager and bit-identical to the scalar path.
        """
        with span(
            "geometry.batch", queries=len(groups)
        ) as sp:
            tol = self.config.cost_merge_tolerance
            solutions: list[list[PieceSolution | None]] = [
                [None] * len(group) for group in groups
            ]
            winner_slots: list[tuple[int, int]] = []
            winner_relaxations: list[RelaxationResult] = []
            for gi, group in enumerate(groups):
                best = min(r.cost for _, r in group)
                for si, (index, relaxation) in enumerate(group):
                    if relaxation.cost <= best + tol:
                        winner_slots.append((gi, si))
                        winner_relaxations.append(relaxation)
                    else:
                        solutions[gi][si] = _LazyPieceSolution(
                            index, self.pieces[index], relaxation, self
                        )
            regions = self._regions_batch(winner_relaxations)
            centers = region_centers_batch(
                regions,
                [r.feasible_point for r in winner_relaxations],
                self.config.center_method,
            )
            sp.incr("winners", len(winner_slots))
            sp.incr("lazy", sum(len(g) for g in groups) - len(winner_slots))
            for (gi, si), relaxation, region, center in zip(
                winner_slots, winner_relaxations, regions, centers
            ):
                index = groups[gi][si][0]
                solutions[gi][si] = PieceSolution(
                    index, self.pieces[index], relaxation, region, center
                )
        return solutions  # type: ignore[return-value]  # every slot filled

    def _regions_batch(
        self, relaxations: Sequence[RelaxationResult]
    ) -> list[Polygon | None]:
        """Batched candidate-round clipping, one lane per relaxation.

        Replays :meth:`_solution_from_relaxation`'s candidate ladder —
        satisfied rows, satisfied+ε, relaxed rows, relaxed+ε — directly on
        each system's ``(A, b)`` arrays (no HalfSpace objects), clipping
        all still-unresolved lanes per round through
        :func:`~repro.geometry.intersect_halfspaces_batch`.  The array
        arithmetic mirrors ``HalfSpace.relaxed`` exactly (``b + t``, then
        ``+ ε`` as a second add), so regions are bit-identical to the
        scalar rounds.
        """
        epsilon = 0.05  # metres (rows are unit-normalized)
        n = len(relaxations)
        regions: list[Polygon | None] = [None] * n
        pending = list(range(n))
        sat_systems: list[tuple[np.ndarray, np.ndarray] | None] = [None] * n

        def lane_rows(li: int, round_idx: int) -> tuple[np.ndarray, np.ndarray]:
            relaxation = relaxations[li]
            if round_idx < 2:
                cached = sat_systems[li]
                if cached is None:
                    a, b, _w = relaxation.system.matrices()
                    mask = relaxation.slacks <= _SLACK_TOL
                    cached = (a[mask], b[mask])
                    sat_systems[li] = cached
                a_r, b_r = cached
            else:
                a_r, b_r, _w = relaxation.system.matrices()
                b_r = b_r + relaxation.slacks
            if round_idx % 2 == 1:
                b_r = b_r + epsilon
            return a_r, b_r

        for round_idx in range(4):
            if not pending:
                break
            clipped = intersect_halfspaces_batch(
                [lane_rows(li, round_idx) for li in pending], self._bound
            )
            still = []
            for li, region in zip(pending, clipped):
                if region is not None:
                    regions[li] = region
                else:
                    still.append(li)
            pending = still
        return regions

    def _solution_from_relaxation(
        self, index: int, relaxation: RelaxationResult
    ) -> PieceSolution:
        """Geometry half of a piece solve: centre the relaxed region.

        Shared by the scalar and batched paths so both produce identical
        :class:`PieceSolution` objects from identical relaxations.
        """
        piece = self.pieces[index]
        # Centre over the rows the relaxation kept: the minimally
        # relaxed full stack is typically degenerate (conflicting rows
        # just touch), while the satisfied sub-system usually has
        # proper interior.  If even the satisfied rows are degenerate
        # (e.g. opposing ties pin a line), inflate them slightly to
        # recover a thin but centreable region rather than falling
        # back to an arbitrary LP vertex.
        epsilon = 0.05  # metres (rows are unit-normalized)

        def candidate_sets():
            # Lazy: the satisfied set usually clips to a proper region on
            # the first try, so the relaxed/inflated variants (and their
            # HalfSpace constructions) are typically never built.
            satisfied = relaxation.satisfied_halfspaces()
            yield satisfied
            yield [h.relaxed(epsilon) for h in satisfied]
            relaxed = relaxation.relaxed_halfspaces()
            yield relaxed
            yield [h.relaxed(epsilon) for h in relaxed]

        halfspaces = None
        region = None
        for candidate in candidate_sets():
            if halfspaces is None:
                halfspaces = candidate  # default if every clip fails
            region = feasible_polygon(candidate, self._bound)
            if region is not None:
                halfspaces = candidate
                break
        center = region_center(
            halfspaces,
            self._bound,
            self.config.center_method,
            fallback=relaxation.feasible_point,
            region=region,
        )
        if center is None:
            # The LP relaxation's feasible point doubles as the center
            # fallback, so this is unreachable for any solvable piece —
            # raise (not assert) so the guard survives ``python -O``.
            raise RuntimeError(
                f"no center estimate for piece {index}: region_center "
                "returned None despite the relaxation fallback"
            )
        return PieceSolution(index, piece, relaxation, region, center)


def _merge_centers(winners: Sequence[PieceSolution]) -> Point:
    """Area-weighted merge of co-optimal pieces' centres."""
    if len(winners) == 1:
        return winners[0].center
    total_area = 0.0
    sx = sy = 0.0
    for sol in winners:
        weight = sol.region.area() if sol.region is not None else 0.0
        if weight <= 0:
            weight = 1e-9
        total_area += weight
        sx += sol.center.x * weight
        sy += sol.center.y * weight
    return Point(sx / total_area, sy / total_area)
