"""PDP-based proximity determination (Sec. IV-A).

The power of the direct path (PDP) of each AP-object link is approximated
by the maximum tap power of the channel impulse response; larger PDP means
closer.  Each pairwise judgement carries the paper's confidence factor

    w_ij = f(P_i / P_j),   f(x) = 2^-x (0 < x <= 1),  1 - 2^(-1/x) (x > 1)

which satisfies f(x) + f(1/x) = 1 and f(1) = 1/2: equal PDPs are a coin
flip, and the *smaller* the power ratio the more confident the judgement
in favour of the stronger AP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..channel.cir import delay_profile, tap_powers_batch
from ..channel.csi import CSIMeasurement

__all__ = [
    "InvalidMeasurementError",
    "confidence_factor",
    "confidence_factor_rational",
    "confidence_factor_power",
    "CONFIDENCE_FUNCTIONS",
    "proximity_confidence",
    "estimate_pdp",
    "estimate_pdp_batch",
    "estimate_pdp_skip_invalid",
    "estimate_pdp_median",
    "estimate_rss",
    "estimate_first_tap",
    "estimate_first_tap_batch",
    "PROXIMITY_METRICS",
    "ProximityJudgement",
    "judge_proximity",
]


class InvalidMeasurementError(ValueError):
    """A CSI batch carried non-finite (NaN/Inf) channel estimates.

    Raised by the PDP estimators instead of letting a corrupted packet
    poison the mean silently — a single NaN subcarrier turns the whole
    link's PDP into NaN, which then flows as an apparently valid weight
    into the relaxation LP.  The guard layer catches degraded batches
    earlier (see :mod:`repro.guard`); this exception is the last line of
    defence for callers that bypass it.
    """


def confidence_factor(x: float) -> float:
    """The paper's ``f`` function (Eq. 4).

    Decreasing in ``x``: ``f(0+) -> 1``, ``f(1) = 1/2``, ``f(inf) -> 0``.
    Interpreting ``x`` as the (weaker PDP) / (stronger PDP) ratio, the
    value is the confidence that the stronger AP really is the nearer one.
    """
    if x <= 0:
        raise ValueError("power ratio must be positive")
    if x <= 1.0:
        return 2.0 ** (-x)
    return 1.0 - 2.0 ** (-1.0 / x)


def confidence_factor_rational(x: float) -> float:
    """Alternative ``f``: ``f(x) = 1 / (1 + x)``.

    The paper notes "there exists a wide variety of f function[s]" with
    the Eq. 2-3 properties; this is the simplest rational member
    (``1/(1+x) + 1/(1+1/x) = 1`` identically).  Less aggressive than the
    paper's choice near ``x = 0``.
    """
    if x <= 0:
        raise ValueError("power ratio must be positive")
    return 1.0 / (1.0 + x)


def confidence_factor_power(x: float, k: float = 2.0) -> float:
    """Alternative ``f``: ``f(x) = 1 / (1 + x^k)``.

    Satisfies Eqs. 2-3 for any ``k > 0``; larger ``k`` sharpens the
    transition around ``x = 1`` (ties get decided faster).
    """
    if x <= 0:
        raise ValueError("power ratio must be positive")
    if k <= 0:
        raise ValueError("exponent must be positive")
    return 1.0 / (1.0 + x**k)


#: Named registry of Eq. 2-3-satisfying confidence functions, for the
#: ABL-CONF ablation and for :class:`~repro.core.LocalizerConfig`.
CONFIDENCE_FUNCTIONS = {
    "paper": confidence_factor,
    "rational": confidence_factor_rational,
    "power2": confidence_factor_power,
}


def proximity_confidence(pdp_i: float, pdp_j: float, fn=confidence_factor) -> float:
    """Confidence that the larger-PDP AP is the nearer one.

    Symmetric in its arguments: the ratio fed to ``fn`` is
    ``min(P) / max(P) <= 1``, so the result lives in ``[1/2, 1)`` — 1/2 for
    indistinguishable powers, approaching 1 as the disparity grows.
    ``fn`` may be any Eq. 2-3-satisfying confidence function (see
    :data:`CONFIDENCE_FUNCTIONS`).
    """
    if pdp_i <= 0 or pdp_j <= 0:
        raise ValueError("PDP values must be positive")
    lo, hi = sorted((pdp_i, pdp_j))
    return fn(lo / hi)


def estimate_pdp(measurements: Iterable[CSIMeasurement]) -> float:
    """Estimate a link's PDP from a batch of CSI snapshots.

    Per packet: IFFT to the CIR and take the maximum tap power (the
    paper's estimator).  Across packets: average, which exploits CSI's
    temporal stability to suppress fading and noise — the prototype
    "collects thousands of packages at each site" for the same reason.

    Raises
    ------
    InvalidMeasurementError
        When any packet's tap powers are non-finite (a NaN/Inf burst in
        the CSI): one poisoned packet would otherwise turn the link's
        whole mean into NaN silently.  Use
        :func:`estimate_pdp_skip_invalid` to tolerate such packets.
    """
    total = 0.0
    count = 0
    for m in measurements:
        value = delay_profile(m).max_power()
        if not math.isfinite(value):
            raise InvalidMeasurementError(
                f"non-finite tap power in packet {count}; reject the "
                "packet or use estimate_pdp_skip_invalid"
            )
        total += value
        count += 1
    if count == 0:
        raise ValueError("need at least one CSI measurement")
    return total / count


def estimate_rss(measurements: Iterable[CSIMeasurement]) -> float:
    """RSS link strength: the firmware's coarse per-packet RSSI, averaged.

    The alternative the paper argues *against* (Sec. I: "we use
    fine-grained channel state information (CSI) rather than coarse
    received signal strength (RSS)").  RSSI sums the direct path *and*
    every reflection and arrives jittered by AGC error and dB
    quantization, so it is both multipath-inflated and temporally
    unstable.  Provided for the ABL-METRIC ablation.
    """
    total = 0.0
    count = 0
    for m in measurements:
        total += m.rssi_mw()
        count += 1
    if count == 0:
        raise ValueError("need at least one CSI measurement")
    return total / count


def estimate_first_tap(measurements: Iterable[CSIMeasurement]) -> float:
    """First-tap power, averaged.

    The naive "earliest arrival is the direct path" estimator; misleading
    under NLOS exactly as the paper warns for TOA (the direct tap is
    crushed while reflections persist).  Provided for ABL-METRIC.
    """
    total = 0.0
    count = 0
    for m in measurements:
        total += delay_profile(m).first_tap_power()
        count += 1
    if count == 0:
        raise ValueError("need at least one CSI measurement")
    return total / count


def _tap_power_rows(
    measurements: Sequence[CSIMeasurement],
) -> np.ndarray | None:
    """``(packets, n_fft)`` tap-power matrix via one stacked IFFT.

    Returns ``None`` for batches mixing OFDM configs (cannot be stacked)
    — callers then fall back to the per-measurement reference path,
    which computes the same values one IFFT at a time.
    """
    try:
        return tap_powers_batch(measurements)
    except ValueError:
        return None


def estimate_pdp_batch(measurements: Iterable[CSIMeasurement]) -> float:
    """Vectorized :func:`estimate_pdp`: one stacked IFFT per link batch.

    Bit-identical to the scalar estimator (the row maxima are the same
    floats and are accumulated in the same order); this is the estimator
    the anchor-building fast path uses, with the scalar loop kept as the
    reference implementation.  Like the scalar path it raises
    :class:`InvalidMeasurementError` on non-finite inputs — checking the
    per-packet maxima catches any NaN/Inf in the batch, since a single
    non-finite tap power propagates to its row maximum.
    """
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    rows = _tap_power_rows(ms)
    if rows is None:
        return estimate_pdp(ms)
    maxima = rows.max(axis=1)
    if not np.isfinite(maxima).all():
        bad = int(np.flatnonzero(~np.isfinite(maxima))[0])
        raise InvalidMeasurementError(
            f"non-finite tap power in packet {bad}; reject the packet "
            "or use estimate_pdp_skip_invalid"
        )
    total = 0.0
    for value in maxima:
        total += float(value)
    return total / len(ms)


def estimate_pdp_skip_invalid(
    measurements: Iterable[CSIMeasurement],
) -> float:
    """PDP estimate tolerating non-finite packets: skip, then average.

    The guard layer's estimator: packets whose tap powers are NaN/Inf
    (firmware glitches, interference bursts) are dropped and the mean is
    taken over the finite remainder — accumulated sequentially in packet
    order, so with zero invalid packets the result is bit-identical to
    :func:`estimate_pdp_batch`.

    Raises
    ------
    ValueError
        On an empty batch.
    InvalidMeasurementError
        When *every* packet is invalid — there is no salvageable signal
        and the link must be rejected, not averaged.
    """
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    rows = _tap_power_rows(ms)
    if rows is None:
        maxima = np.array([delay_profile(m).max_power() for m in ms])
    else:
        maxima = rows.max(axis=1)
    total = 0.0
    count = 0
    for value in maxima:
        if math.isfinite(value):
            total += float(value)
            count += 1
    if count == 0:
        raise InvalidMeasurementError(
            "every packet in the batch is non-finite; link must be rejected"
        )
    return total / count


def estimate_first_tap_batch(
    measurements: Iterable[CSIMeasurement],
) -> float:
    """Vectorized :func:`estimate_first_tap` (bit-identical)."""
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    rows = _tap_power_rows(ms)
    if rows is None:
        return estimate_first_tap(ms)
    total = 0.0
    for value in rows[:, 0]:
        total += float(value)
    return total / len(ms)


def estimate_pdp_median(measurements: Iterable[CSIMeasurement]) -> float:
    """Median-of-packets PDP: robust to bursty interference.

    The mean estimator of :func:`estimate_pdp` is sensitive to occasional
    packets whose channel estimate was corrupted by a co-channel
    collision; the median discards those outliers at the cost of slightly
    higher variance on clean links.  Computed from the stacked tap-power
    matrix when the batch shares one OFDM config.
    """
    ms = list(measurements)
    if not ms:
        raise ValueError("need at least one CSI measurement")
    rows = _tap_power_rows(ms)
    if rows is None:
        values = [delay_profile(m).max_power() for m in ms]
        return float(np.median(values))
    return float(np.median(rows.max(axis=1)))


#: Link-strength estimators usable as the proximity metric.  ``pdp`` and
#: ``first_tap`` point at the batched implementations — bit-identical to
#: their scalar references, one stacked IFFT per link instead of one per
#: packet.
PROXIMITY_METRICS = {
    "pdp": estimate_pdp_batch,
    "pdp_median": estimate_pdp_median,
    "rss": estimate_rss,
    "first_tap": estimate_first_tap_batch,
}


@dataclass(frozen=True, slots=True)
class ProximityJudgement:
    """Outcome of comparing the object's PDP towards two anchors.

    Attributes
    ----------
    near_index, far_index:
        Indices (into the caller's anchor list) of the judged-nearer and
        judged-farther anchor.
    confidence:
        The paper's ``w`` for this judgement, in ``[1/2, 1)``.
    pdp_near, pdp_far:
        The PDP estimates that produced the judgement.
    """

    near_index: int
    far_index: int
    confidence: float
    pdp_near: float
    pdp_far: float


def judge_proximity(
    pdps: Sequence[float],
    index_i: int,
    index_j: int,
    fn=confidence_factor,
) -> ProximityJudgement:
    """Judge which of two anchors the object is closer to, from PDPs."""
    if index_i == index_j:
        raise ValueError("cannot compare an anchor with itself")
    p_i, p_j = pdps[index_i], pdps[index_j]
    confidence = proximity_confidence(p_i, p_j, fn)
    if p_i >= p_j:
        return ProximityJudgement(index_i, index_j, confidence, p_i, p_j)
    return ProximityJudgement(index_j, index_i, confidence, p_j, p_i)
