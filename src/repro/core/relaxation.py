"""The weighted constraint-relaxation LP (Eq. 19).

Erroneous proximity judgements can make the raw constraint stack
infeasible, so NomLoc solves

    minimize   w . t
    subject to A z - t <= b,   t >= 0

retaining high-weight constraints and sacrificing cheap ones.  When the
stack is feasible the optimum has ``t = 0`` and the problem reduces to the
pure feasibility LP of Eq. 16.  The relaxed slacks then define the final
*feasible region* ``{z : A z <= b + t*}``, whose centre becomes the
location estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import HalfSpace
from ..optimize import LPStatus, solve_lp, solve_lp_batch
from ..optimize.linprog import InequalityLP
from .constraints import ConstraintSystem

__all__ = ["RelaxationResult", "solve_relaxation", "solve_relaxation_batch"]

#: Slacks below this are treated as exactly satisfied constraints.
_SLACK_TOL = 1e-7


@dataclass(frozen=True)
class RelaxationResult:
    """Solution of the relaxation LP over one constraint system.

    Attributes
    ----------
    feasible_point:
        The LP's ``z`` — some point inside the relaxed region.
    slacks:
        Optimal ``t`` per constraint (0 for satisfied rows).
    cost:
        ``w . t``; 0 iff the original stack was feasible.
    system:
        The constraint system the LP was built from.
    """

    feasible_point: np.ndarray
    slacks: np.ndarray
    cost: float
    system: ConstraintSystem

    @property
    def was_feasible(self) -> bool:
        """True when no constraint needed relaxing (Eq. 16 had a solution)."""
        return self.cost <= _SLACK_TOL

    def violated_labels(self) -> list[str]:
        """Labels of constraints the optimum had to break."""
        return [
            c.label
            for c, t in zip(self.system.constraints, self.slacks)
            if t > _SLACK_TOL
        ]

    def relaxed_halfspaces(self) -> list[HalfSpace]:
        """Every row loosened by its slack.

        Note that this region is often *degenerate*: two directly
        conflicting rows relaxed minimally just touch, leaving a region of
        zero width.  Centering should normally use
        :meth:`satisfied_halfspaces` instead.
        """
        return [
            c.halfspace.relaxed(float(max(t, 0.0)))
            for c, t in zip(self.system.constraints, self.slacks)
        ]

    def satisfied_halfspaces(self) -> list[HalfSpace]:
        """The rows the optimum kept (``t_i = 0``), unrelaxed.

        Sacrificed rows (``t_i > 0``) correspond to proximity judgements
        the LP decided were erroneous; dropping them leaves the consistent
        sub-system whose feasible region has proper interior, which is
        what the location estimate should be the centre of.
        """
        return [
            c.halfspace
            for c, t in zip(self.system.constraints, self.slacks)
            if t <= _SLACK_TOL
        ]


#: Row count beyond which the dense from-scratch tableau becomes the
#: bottleneck and the solve is routed to a sparse interior-point backend.
#: Paper-scale deployments (4 APs + a handful of nomadic sites) stay well
#: below this.
_LARGE_SYSTEM_ROWS = 80


def solve_relaxation(system: ConstraintSystem) -> RelaxationResult:
    """Solve Eq. 19 for a constraint system.

    Paper-scale systems (a handful of APs plus nomadic sites: tens of
    rows) are solved by the from-scratch two-phase simplex.  Large
    systems — many nomadic APs or long site histories — are routed to a
    sparse interior-point backend (scipy's HiGHS), matching the paper's
    own reliance on an interior-point solver for scalability
    (Sec. IV-B4).  Both paths solve the identical LP; tests cross-check
    them on shared instances.

    Raises
    ------
    ValueError
        If the system is empty.
    RuntimeError
        If the LP solver fails — it should not, since the relaxed problem
        is always feasible (any ``z`` works with big enough ``t``) and
        bounded below by 0.
    """
    if len(system) == 0:
        raise ValueError("cannot relax an empty constraint system")
    a, b, w = system.matrices()
    m = len(system)

    if m > _LARGE_SYSTEM_ROWS:
        return _solve_relaxation_sparse(system, a, b, w)

    # Variables: [z_x, z_y (free), t_1..t_m (nonneg)].
    c = np.concatenate([[0.0, 0.0], w])
    a_lp = np.hstack([a, -np.eye(m)])
    nonneg = np.array([False, False] + [True] * m)

    result = solve_lp(c, a_lp, b, nonneg)
    if result.status is not LPStatus.OPTIMAL:
        raise RuntimeError(
            f"relaxation LP unexpectedly failed: {result.status} "
            f"({result.message})"
        )
    z = result.x[:2]
    t = np.maximum(result.x[2:], 0.0)
    return RelaxationResult(z, t, float(result.objective), system)


def solve_relaxation_batch(
    systems: Sequence[ConstraintSystem],
) -> list[RelaxationResult]:
    """Solve Eq. 19 for many constraint systems in stacked NumPy passes.

    Systems are grouped by row count (the stacked-tableau shape) and each
    group is handed to :func:`~repro.optimize.solve_lp_batch`; singleton
    groups and systems above :data:`_LARGE_SYSTEM_ROWS` fall back to
    :func:`solve_relaxation`.  Every returned
    :class:`RelaxationResult` is **bit-identical** to what
    :func:`solve_relaxation` produces for that system alone — the LP
    construction is the same code and the batched simplex replays each
    problem's scalar pivot sequence (see :mod:`repro.optimize.batched`).
    """
    results: list[RelaxationResult | None] = [None] * len(systems)
    groups: dict[int, list[int]] = {}
    for i, system in enumerate(systems):
        m = len(system)
        if m == 0:
            raise ValueError("cannot relax an empty constraint system")
        if m > _LARGE_SYSTEM_ROWS:
            results[i] = solve_relaxation(system)
        else:
            groups.setdefault(m, []).append(i)
    for m, idxs in groups.items():
        if len(idxs) == 1:
            results[idxs[0]] = solve_relaxation(systems[idxs[0]])
            continue
        nonneg = np.array([False, False] + [True] * m)
        neg_eye = -np.eye(m)  # shared across the group: hstack copies it
        problems = []
        for i in idxs:
            a, b, w = systems[i].matrices()
            c = np.concatenate([[0.0, 0.0], w])
            a_lp = np.hstack([a, neg_eye])
            problems.append(InequalityLP(c, a_lp, b, nonneg))
        for i, result in zip(idxs, solve_lp_batch(problems)):
            if result.status is not LPStatus.OPTIMAL:
                raise RuntimeError(
                    f"relaxation LP unexpectedly failed: {result.status} "
                    f"({result.message})"
                )
            z = result.x[:2]
            t = np.maximum(result.x[2:], 0.0)
            results[i] = RelaxationResult(
                z, t, float(result.objective), systems[i]
            )
    return results  # type: ignore[return-value]  # every slot is filled


def _solve_relaxation_sparse(
    system: ConstraintSystem, a: np.ndarray, b: np.ndarray, w: np.ndarray
) -> RelaxationResult:
    """Large-system path: sparse interior-point via scipy (HiGHS)."""
    from scipy import sparse
    from scipy.optimize import linprog

    m = len(system)
    c = np.concatenate([[0.0, 0.0], w])
    a_ub = sparse.hstack(
        [sparse.csr_matrix(a), -sparse.eye(m, format="csr")], format="csr"
    )
    bounds = [(None, None), (None, None)] + [(0, None)] * m
    result = linprog(c, A_ub=a_ub, b_ub=b, bounds=bounds, method="highs")
    if result.status != 0:
        raise RuntimeError(
            f"sparse relaxation LP failed: status {result.status} "
            f"({result.message})"
        )
    z = result.x[:2]
    t = np.maximum(result.x[2:], 0.0)
    return RelaxationResult(z, t, float(result.fun), system)
