"""End-to-end NomLoc system: scenario + channel + mobility + localizer.

This is the top of the public API: point a :class:`NomLocSystem` at a
:class:`~repro.environment.Scenario` and ask where an object standing at
some position would be localized.  The system

1. has the object ping every AP (static APs at their fixed positions, the
   nomadic AP from every site its Markov walk visits),
2. estimates each link's PDP from the simulated CSI batches,
3. attaches the nomadic AP's *reported* coordinates (optionally corrupted
   by a position-error model, Sec. V-E), and
4. runs the SP localizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..channel import (
    AntennaPattern,
    CSISynthesizer,
    LinkSimulator,
    PropagationModel,
    ShadowingModel,
)
from ..environment import APSpec, Scenario
from ..geometry import Point
from ..mobility import (
    MarkovMobilityModel,
    MobilityPattern,
    MobilityTrace,
    PositionErrorModel,
    generate_trace,
)
from ..channel.csi import CSIMeasurement
from ..mobility.traces import TraceStep
from .constraints import Anchor
from .localizer import LocalizerConfig, LocationEstimate, NomLocLocalizer
from .pdp import PROXIMITY_METRICS, estimate_pdp_batch

__all__ = ["SystemConfig", "LinkRecord", "NomLocSystem", "measure_link_pdp"]


@dataclass(frozen=True)
class SystemConfig:
    """Measurement-campaign parameters.

    Attributes
    ----------
    packets_per_link:
        CSI snapshots collected per AP-object link (the prototype pings
        in the thousands; a few dozen already stabilize the PDP mean).
    trace_steps:
        Length of the nomadic AP's Markov walk per localization query.
    position_error:
        Error model applied to the nomadic AP's reported coordinates.
    use_nomadic:
        False pins nomadic APs at home — the static-deployment baseline.
    proximity_metric:
        Link-strength estimator driving the proximity judgements: the
        paper's ``"pdp"`` (max CIR tap power), coarse ``"rss"`` (total
        power), or naive ``"first_tap"``.  Ablated in ABL-METRIC.
    """

    packets_per_link: int = 30
    trace_steps: int = 12
    position_error: PositionErrorModel = field(
        default_factory=lambda: PositionErrorModel(0.0)
    )
    use_nomadic: bool = True
    proximity_metric: str = "pdp"

    def __post_init__(self) -> None:
        if self.packets_per_link < 1:
            raise ValueError("packets_per_link must be at least 1")
        if self.trace_steps < 1:
            raise ValueError("trace_steps must be at least 1")
        if self.proximity_metric not in PROXIMITY_METRICS:
            raise ValueError(
                f"unknown proximity metric {self.proximity_metric!r}; "
                f"available: {sorted(PROXIMITY_METRICS)}"
            )

    def resolve_metric(self):
        """The estimator callable behind :attr:`proximity_metric`."""
        return PROXIMITY_METRICS[self.proximity_metric]

    def with_error_range(self, er_m: float) -> "SystemConfig":
        """Copy with a different position error range (the ER sweep)."""
        return replace(self, position_error=PositionErrorModel(er_m))


@dataclass(frozen=True)
class LinkRecord:
    """One link's raw measurement batch, before PDP estimation.

    The seam the guard layer plugs into: :meth:`NomLocSystem.\
gather_link_records` stops *before* collapsing each batch into a PDP
    scalar, so fault injection, sanity checks and quality gating can see
    the per-packet CSI (see :mod:`repro.guard`).  ``device_gain`` and
    ``antenna_gain`` are the linear power gains the ungated path
    multiplies into the PDP estimate, kept separate (and applied in that
    order) so both paths stay bit-identical.
    """

    name: str
    position: Point
    measurements: tuple[CSIMeasurement, ...]
    device_gain: float = 1.0
    antenna_gain: float = 1.0
    nomadic: bool = False

    def estimate(self, estimator=estimate_pdp_batch) -> float:
        """The link's gained PDP estimate, as the ungated path computes it."""
        pdp = estimator(self.measurements)
        pdp *= self.device_gain
        pdp *= self.antenna_gain
        return pdp

    def to_anchor(self, estimator=estimate_pdp_batch) -> Anchor:
        """Collapse the batch into the anchor the localizer consumes."""
        return Anchor(
            self.name, self.position, self.estimate(estimator), self.nomadic
        )


def measure_link_pdp(
    sim: LinkSimulator,
    tx: Point,
    rx: Point,
    packets: int,
    rng: np.random.Generator,
    estimator=estimate_pdp_batch,
) -> float:
    """Estimate a link's strength from a batch of simulated packets.

    ``estimator`` defaults to the paper's PDP (max CIR tap power, the
    vectorized stacked-IFFT implementation — bit-identical to the scalar
    :func:`~repro.core.pdp.estimate_pdp` reference); any member of
    :data:`repro.core.pdp.PROXIMITY_METRICS` works.
    """
    batch = sim.measure_batch(tx, rx, packets, rng)
    return estimator(batch)


class NomLocSystem:
    """The deployable NomLoc stack over one scenario.

    Parameters
    ----------
    scenario:
        Venue, AP deployment, and evaluation sites.
    config:
        Measurement-campaign parameters.
    localizer_config:
        SP localizer knobs.
    synthesizer:
        Override the CSI synthesizer (defaults to the scenario's
        path-loss exponent with standard fading and noise).
    """

    def __init__(
        self,
        scenario: Scenario,
        config: SystemConfig | None = None,
        localizer_config: LocalizerConfig | None = None,
        synthesizer: CSISynthesizer | None = None,
        shadowing: ShadowingModel | None = None,
        device_offsets_db: dict[str, float] | None = None,
        antennas: dict[str, AntennaPattern] | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or SystemConfig()
        if synthesizer is None:
            synthesizer = CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            )
        self.link_sim = LinkSimulator(
            scenario.plan, synthesizer, shadowing=shadowing
        )
        self.localizer = NomLocLocalizer(
            scenario.plan.boundary, localizer_config
        )
        # Per-AP receive-chain gain offsets (device heterogeneity): real
        # deployments mix hardware, so PDPs measured by different devices
        # carry systematic dB offsets.  Keyed by AP name; unlisted APs are
        # nominal.  A nomadic AP's offset follows it to every site — which
        # is why same-device site-pair comparisons are immune (ABL-HETERO).
        offsets = device_offsets_db or {}
        unknown = set(offsets) - {ap.name for ap in scenario.aps}
        if unknown:
            raise ValueError(f"device offsets for unknown APs: {sorted(unknown)}")
        self.device_offsets_db = offsets
        # Per-AP antenna pattern (link-level directional gain towards the
        # object); unlisted APs are omnidirectional, as in the paper.
        antennas = antennas or {}
        unknown = set(antennas) - {ap.name for ap in scenario.aps}
        if unknown:
            raise ValueError(f"antennas for unknown APs: {sorted(unknown)}")
        self.antennas = antennas

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def gather_anchors(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> list[Anchor]:
        """Collect one localization query's anchor set.

        Static APs always contribute; nomadic APs contribute one anchor
        per distinct visited site when ``config.use_nomadic``, else a
        single anchor pinned at home.
        """
        metric = self.config.resolve_metric()
        return [
            record.to_anchor(metric)
            for record in self.gather_link_records(
                object_position, rng, pattern
            )
        ]

    def gather_link_records(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> list[LinkRecord]:
        """One query's raw per-link measurement batches (the guard seam).

        Identical measurement campaign to :meth:`gather_anchors` — same
        AP iteration order, same mobility walk, same RNG draw order — but
        stopping before PDP estimation, so the guard layer can inject
        faults and gate links at the channel boundary.
        ``gather_anchors`` is implemented on top of this and stays
        bit-identical to the historical path.
        """
        records: list[LinkRecord] = []
        for ap in self.scenario.aps:
            if ap.nomadic and self.config.use_nomadic:
                records.extend(
                    self._nomadic_records(ap, object_position, rng, pattern)
                )
            else:
                batch = self.link_sim.measure_batch(
                    object_position,
                    ap.position,
                    self.config.packets_per_link,
                    rng,
                )
                records.append(
                    LinkRecord(
                        ap.name,
                        ap.position,
                        tuple(batch),
                        device_gain=self._device_gain(ap.name),
                        antenna_gain=self._antenna_gain(
                            ap.name, ap.position, object_position
                        ),
                    )
                )
        return records

    def _device_gain(self, ap_name: str) -> float:
        """Linear power gain of one AP's receive chain."""
        offset = self.device_offsets_db.get(ap_name, 0.0)
        return 10.0 ** (offset / 10.0)

    def _antenna_gain(
        self, ap_name: str, ap_position: Point, object_position: Point
    ) -> float:
        """Linear directional gain of the AP's antenna towards the object."""
        pattern = self.antennas.get(ap_name)
        if pattern is None:
            return 1.0
        return 10.0 ** (
            pattern.gain_towards_db(ap_position, object_position) / 10.0
        )

    def _nomadic_records(
        self,
        ap: APSpec,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None,
    ) -> list[LinkRecord]:
        trace = self._walk(ap, rng, pattern)
        records = []
        for step in trace.unique_steps():
            # Physics happen at the TRUE position; the constraint uses the
            # REPORTED one.
            batch = self.link_sim.measure_batch(
                object_position,
                step.true_position,
                self.config.packets_per_link,
                rng,
            )
            records.append(
                LinkRecord(
                    f"{ap.name}@s{step.site_index}",
                    step.reported_position,
                    tuple(batch),
                    device_gain=self._device_gain(ap.name),
                    antenna_gain=self._antenna_gain(
                        ap.name, step.true_position, object_position
                    ),
                    nomadic=True,
                )
            )
        return records

    def _walk(
        self,
        ap: APSpec,
        rng: np.random.Generator,
        pattern: MobilityPattern | None,
    ) -> MobilityTrace:
        model = MarkovMobilityModel(ap.sites)
        if pattern is None:
            return generate_trace(
                model,
                self.config.trace_steps,
                rng,
                self.config.position_error,
            )
        indices = pattern.generate(self.config.trace_steps, rng)
        steps = []
        for idx in indices:
            true_pos = ap.sites[idx]
            steps.append(
                TraceStep(
                    idx,
                    true_pos,
                    self.config.position_error.perturb(true_pos, rng),
                )
            )
        return MobilityTrace(tuple(steps))

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------
    def locate(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> LocationEstimate:
        """One full localization query for an object at ``object_position``."""
        anchors = self.gather_anchors(object_position, rng, pattern)
        return self.localizer.locate(anchors)

    def locate_from_anchors(
        self, anchors: Sequence[Anchor]
    ) -> LocationEstimate:
        """Run only the SP stage on externally gathered anchors."""
        return self.localizer.locate(anchors)

    def localization_error(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> float:
        """Euclidean error of one localization query."""
        return self.locate(object_position, rng, pattern).error_to(
            object_position
        )
