"""Dataset recording, persistence, and offline replay."""

from .csi_traces import load_csi_batch, save_csi_batch
from .dataset import (
    AnchorRecord,
    Dataset,
    QueryRecord,
    record_dataset,
    replay_dataset,
)

__all__ = [
    "AnchorRecord",
    "QueryRecord",
    "Dataset",
    "record_dataset",
    "replay_dataset",
    "save_csi_batch",
    "load_csi_batch",
]
