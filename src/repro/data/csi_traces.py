"""Raw CSI trace export/import (NPZ).

For analyses that need subcarrier-level data (not just PDPs) — e.g.
studying alternative PDP estimators offline — CSI snapshot batches can be
saved to compressed ``.npz`` archives and round-tripped losslessly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..channel import CSIMeasurement, OFDMConfig

__all__ = ["save_csi_batch", "load_csi_batch"]


def save_csi_batch(
    path: str | Path, measurements: Sequence[CSIMeasurement]
) -> None:
    """Persist a batch of same-layout CSI snapshots to ``path``.

    All snapshots must share one OFDM configuration (one link's batch
    always does).
    """
    if not measurements:
        raise ValueError("cannot save an empty batch")
    cfg = measurements[0].config
    for m in measurements[1:]:
        if m.config != cfg:
            raise ValueError("all snapshots must share one OFDM config")
    csi = np.stack([m.csi for m in measurements])
    np.savez_compressed(
        Path(path),
        csi=csi,
        n_fft=np.array([cfg.n_fft]),
        bandwidth_hz=np.array([cfg.bandwidth_hz]),
        carrier_hz=np.array([cfg.carrier_hz]),
        active_subcarriers=np.array(cfg.active_subcarriers),
    )


def load_csi_batch(path: str | Path) -> list[CSIMeasurement]:
    """Load a batch previously written by :func:`save_csi_batch`."""
    with np.load(Path(path)) as archive:
        cfg = OFDMConfig(
            n_fft=int(archive["n_fft"][0]),
            bandwidth_hz=float(archive["bandwidth_hz"][0]),
            carrier_hz=float(archive["carrier_hz"][0]),
            active_subcarriers=tuple(
                int(s) for s in archive["active_subcarriers"]
            ),
        )
        return [CSIMeasurement(row, cfg) for row in archive["csi"]]
