"""Measurement datasets: record once, re-localize offline.

Real CSI systems separate *collection* (expensive: hardware, people
moving APs) from *algorithm iteration* (cheap: re-run the solver on the
recorded traces).  This module gives the reproduction the same workflow:
record the anchor observations of a measurement campaign into a
:class:`Dataset`, persist it as JSON, and replay it through any localizer
configuration without touching the channel simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core import Anchor, LocalizerConfig, NomLocLocalizer, NomLocSystem
from ..environment import Scenario, get_scenario
from ..geometry import Point

__all__ = ["AnchorRecord", "QueryRecord", "Dataset", "record_dataset", "replay_dataset"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class AnchorRecord:
    """One anchor observation inside a recorded query."""

    name: str
    x: float
    y: float
    pdp: float
    nomadic: bool

    @classmethod
    def from_anchor(cls, anchor: Anchor) -> "AnchorRecord":
        """Capture a live :class:`~repro.core.Anchor` for persistence."""
        return cls(
            anchor.name,
            anchor.position.x,
            anchor.position.y,
            anchor.pdp,
            anchor.nomadic,
        )

    def to_anchor(self) -> Anchor:
        """Rehydrate the live :class:`~repro.core.Anchor`."""
        return Anchor(self.name, Point(self.x, self.y), self.pdp, self.nomadic)


@dataclass(frozen=True)
class QueryRecord:
    """One localization query: ground truth plus the observed anchors."""

    truth_x: float
    truth_y: float
    anchors: tuple[AnchorRecord, ...]

    def __post_init__(self) -> None:
        if len(self.anchors) < 2:
            raise ValueError("a query record needs at least two anchors")

    @property
    def truth(self) -> Point:
        return Point(self.truth_x, self.truth_y)


@dataclass(frozen=True)
class Dataset:
    """A recorded measurement campaign over one scenario."""

    scenario_name: str
    queries: tuple[QueryRecord, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("a dataset needs at least one query")

    def __len__(self) -> int:
        return len(self.queries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a stable, versioned JSON document."""
        doc = {
            "format_version": _FORMAT_VERSION,
            "scenario": self.scenario_name,
            "metadata": self.metadata,
            "queries": [
                {
                    "truth": [q.truth_x, q.truth_y],
                    "anchors": [
                        {
                            "name": a.name,
                            "position": [a.x, a.y],
                            "pdp": a.pdp,
                            "nomadic": a.nomadic,
                        }
                        for a in q.anchors
                    ],
                }
                for q in self.queries
            ],
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Dataset":
        """Parse a dataset document, validating the format version."""
        doc = json.loads(text)
        version = doc.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        queries = []
        for q in doc["queries"]:
            anchors = tuple(
                AnchorRecord(
                    a["name"],
                    float(a["position"][0]),
                    float(a["position"][1]),
                    float(a["pdp"]),
                    bool(a["nomadic"]),
                )
                for a in q["anchors"]
            )
            queries.append(
                QueryRecord(float(q["truth"][0]), float(q["truth"][1]), anchors)
            )
        return cls(doc["scenario"], tuple(queries), doc.get("metadata", {}))

    def save(self, path: str | Path) -> None:
        """Write the dataset to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Read a dataset previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def record_dataset(
    system: NomLocSystem,
    repetitions: int = 1,
    seed: int = 0,
    sites: tuple[Point, ...] | None = None,
) -> Dataset:
    """Run a measurement campaign and capture the anchor observations.

    Each (site, repetition) pair gets independent, reproducible
    randomness — the same scheme as the evaluation runner.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    scenario = system.scenario
    sites = sites if sites is not None else scenario.test_sites
    queries = []
    for site_idx, site in enumerate(sites):
        for rep in range(repetitions):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, site_idx, rep])
            )
            anchors = system.gather_anchors(site, rng)
            queries.append(
                QueryRecord(
                    site.x,
                    site.y,
                    tuple(AnchorRecord.from_anchor(a) for a in anchors),
                )
            )
    return Dataset(
        scenario.name,
        tuple(queries),
        metadata={
            "repetitions": repetitions,
            "seed": seed,
            "packets_per_link": system.config.packets_per_link,
        },
    )


def replay_dataset(
    dataset: Dataset,
    localizer_config: LocalizerConfig | None = None,
    scenario: Scenario | None = None,
) -> list[float]:
    """Re-localize every recorded query; returns per-query errors.

    No channel simulation happens — this is the offline algorithm-
    iteration loop.  ``scenario`` defaults to the registry entry named in
    the dataset.
    """
    scenario = scenario or get_scenario(dataset.scenario_name)
    localizer = NomLocLocalizer(scenario.plan.boundary, localizer_config)
    errors = []
    for query in dataset.queries:
        anchors = [a.to_anchor() for a in query.anchors]
        estimate = localizer.locate(anchors)
        errors.append(estimate.error_to(query.truth))
    return errors
