"""Shared durability primitives (WAL SQLite) for the serving stack.

Two subsystems persist state today — the gateway's measurement ledger
(:mod:`repro.gateway.store`) and the session layer's crash-consistent
tracking store (:mod:`repro.sessions.durable`) — and both need exactly
the same SQLite discipline: WAL journaling, an explicit ``synchronous``
level so "committed" means "fsynced", serialized ``BEGIN IMMEDIATE``
writers, a schema-version gate that fails loudly on incompatible files,
and checkpoint-on-close.  :class:`WalDatabase` owns that discipline
once; the stores own only their schemas and queries.
"""

from .wal import WalDatabase, WalError

__all__ = ["WalDatabase", "WalError"]
