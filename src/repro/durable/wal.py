"""`WalDatabase`: the WAL SQLite boilerplate every durable store shares.

Durability contract, in one sentence: **a mutation run through
:meth:`WalDatabase.write` has committed to a WAL-journaled,
``synchronous``-controlled SQLite database before the call returns**,
so at the default ``"FULL"`` level an acknowledgement backed by such a
commit survives a SIGKILL at any instant.

What lives here (and only here):

* connection setup — WAL journal mode, the ``synchronous`` pragma
  (validated, never silently relaxed), foreign keys on, autocommit mode
  so every transaction is an explicit ``BEGIN IMMEDIATE`` block;
* writer serialization — one internal lock plus a dedicated immediate
  transaction per mutation, so concurrent threads never interleave
  partial writes while WAL readers go straight through;
* the schema-version gate — a ``schema_version`` table checked at open;
  a file written by an incompatible store fails loudly instead of being
  corrupted;
* lifecycle — ``checkpoint()`` (WAL truncate, fsync included),
  idempotent ``close()``, context-manager support.

Stores (:class:`repro.gateway.store.MeasurementLedger`,
:class:`repro.sessions.durable.SessionStore`) subclass or wrap this and
contribute just their ``CREATE TABLE`` statements and queries.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Callable, TypeVar

__all__ = ["WalDatabase", "WalError"]

_T = TypeVar("_T")

#: Accepted ``PRAGMA synchronous`` levels.
_SYNC_LEVELS = ("OFF", "NORMAL", "FULL", "EXTRA")


class WalError(RuntimeError):
    """The database file is unusable (wrong schema version, closed, ...)."""


class WalDatabase:
    """One WAL-journaled SQLite file, safe for multi-threaded writers.

    Parameters
    ----------
    path:
        Database file path (parent directories are created).
        ``":memory:"`` is accepted for tests that only need the schema
        logic.
    schema:
        ``;``-separated DDL statements, applied inside the opening
        transaction (``executescript`` would auto-commit and break the
        all-or-nothing init, so statements run individually).
    schema_version:
        Version stamped into (and checked against) the file's
        ``schema_version`` table.
    synchronous:
        SQLite ``PRAGMA synchronous`` level; the default ``"FULL"`` is
        what makes a committed write mean "on disk".  Benchmarks may
        relax it to ``"NORMAL"`` explicitly — never silently.
    error_cls:
        Exception type raised for lifecycle/schema trouble, so each
        store keeps its own error vocabulary (defaults to
        :class:`WalError`).
    """

    def __init__(
        self,
        path: str | Path,
        schema: str,
        schema_version: int,
        synchronous: str = "FULL",
        error_cls: type[Exception] = WalError,
    ) -> None:
        if synchronous.upper() not in _SYNC_LEVELS:
            raise ValueError(f"unknown synchronous level {synchronous!r}")
        self.path = str(path)
        self._error_cls = error_cls
        self._schema_version = schema_version
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # autocommit mode (isolation_level=None): transactions are
        # explicit BEGIN IMMEDIATE blocks in write(), nothing implicit.
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA synchronous={synchronous.upper()}")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._closed = False
        self._init_schema(schema)

    # ------------------------------------------------------------------
    # Schema / lifecycle
    # ------------------------------------------------------------------
    def _init_schema(self, schema: str) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS schema_version ("
                    "version INTEGER NOT NULL)"
                )
                for statement in schema.split(";"):
                    if statement.strip():
                        self._conn.execute(statement)
                row = self._conn.execute(
                    "SELECT version FROM schema_version"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO schema_version(version) VALUES (?)",
                        (self._schema_version,),
                    )
                elif row[0] != self._schema_version:
                    raise self._error_cls(
                        f"database {self.path!r} has schema version "
                        f"{row[0]}, this store requires "
                        f"{self._schema_version}"
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def schema_version(self) -> int:
        """The version recorded in the database file."""
        row = self._conn.execute("SELECT version FROM schema_version").fetchone()
        if row is None:  # pragma: no cover - _init_schema guarantees a row
            raise self._error_cls("database has no schema_version row")
        return int(row[0])

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._closed

    def checkpoint(self) -> None:
        """Flush the WAL into the main database file (fsync included)."""
        with self._lock:
            self.check_open()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        """Checkpoint and close the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            finally:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "WalDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def check_open(self) -> None:
        """Raise the store's error type once :meth:`close` has run."""
        if self._closed:
            raise self._error_cls("store is closed")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def write(self, fn: Callable[[sqlite3.Connection], _T]) -> _T:
        """Run one mutation inside a serialized BEGIN IMMEDIATE block.

        ``fn`` receives the raw connection; when it returns, the
        transaction commits (a WAL frame, fsynced per the configured
        ``synchronous`` level).  Any exception rolls the whole mutation
        back and propagates.
        """
        with self._lock:
            self.check_open()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                result = fn(self._conn)
                self._conn.execute("COMMIT")
                return result
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def query(self, sql: str, params: tuple = ()) -> list[tuple]:
        """One read-only statement (WAL readers don't block writers)."""
        return self._conn.execute(sql, params).fetchall()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection, for read paths that build cursors."""
        return self._conn
