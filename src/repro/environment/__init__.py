"""Indoor venues: floor plans and the paper's two evaluation scenarios."""

from .floorplan import FloorPlan, Obstacle, Wall
from .loader import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .scenarios import (
    SCENARIOS,
    APSpec,
    Scenario,
    build_lab,
    build_lobby,
    build_office,
    get_scenario,
)

__all__ = [
    "FloorPlan",
    "Wall",
    "Obstacle",
    "APSpec",
    "Scenario",
    "build_lab",
    "build_lobby",
    "build_office",
    "get_scenario",
    "SCENARIOS",
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]
