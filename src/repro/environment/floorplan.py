"""Floor plans: the physical world the RF simulator traces paths through.

A :class:`FloorPlan` is the polygonal *area of interest* (the region NomLoc
bounds the feasible set to), plus interior :class:`Wall` segments and
:class:`Obstacle` polygons that block, reflect, and scatter radio paths.
The boundary edges are themselves reflective walls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..channel.materials import CONCRETE, Material
from ..geometry import (
    Point,
    Polygon,
    Segment,
    decompose_convex,
    segments_intersect,
)

__all__ = ["Wall", "Obstacle", "FloorPlan"]


@dataclass(frozen=True, slots=True)
class Wall:
    """An interior wall segment with an RF material."""

    segment: Segment
    material: Material = CONCRETE

    def blocks(self, path: Segment) -> bool:
        """True when ``path`` crosses this wall."""
        return segments_intersect(path, self.segment)


@dataclass(frozen=True, slots=True)
class Obstacle:
    """A clutter object (desk, server rack, cabinet...) as a polygon."""

    polygon: Polygon
    material: Material
    name: str = ""

    def blocks(self, path: Segment) -> bool:
        """True when ``path`` passes through the obstacle's interior."""
        return self.polygon.segment_crosses_interior(path)

    def scatter_point(self) -> Point:
        """Representative point where diffuse scattering originates."""
        return self.polygon.centroid()


@dataclass(frozen=True)
class FloorPlan:
    """Complete physical description of an indoor venue.

    Attributes
    ----------
    name:
        Venue identifier (e.g. ``"lab"``).
    boundary:
        Simple polygon bounding the area of interest.  Its edges double as
        reflective walls of ``boundary_material``.
    walls:
        Interior wall segments.
    obstacles:
        Clutter polygons inside the boundary.
    boundary_material:
        Material of the perimeter walls.
    """

    name: str
    boundary: Polygon
    walls: tuple[Wall, ...] = field(default_factory=tuple)
    obstacles: tuple[Obstacle, ...] = field(default_factory=tuple)
    boundary_material: Material = CONCRETE

    def __post_init__(self) -> None:
        for obstacle in self.obstacles:
            for v in obstacle.polygon.vertices:
                if not self.boundary.contains(v):
                    raise ValueError(
                        f"obstacle {obstacle.name or obstacle.polygon!r} "
                        "extends outside the boundary"
                    )

    # ------------------------------------------------------------------
    # RF-facing queries
    # ------------------------------------------------------------------
    def reflective_walls(self) -> list[Wall]:
        """All wall surfaces: the boundary edges plus interior walls."""
        boundary_walls = [
            Wall(edge, self.boundary_material) for edge in self.boundary.edges()
        ]
        return boundary_walls + list(self.walls)

    def blocking_walls(self, path: Segment) -> list[Wall]:
        """Interior walls crossed by ``path``."""
        return [w for w in self.walls if w.blocks(path)]

    def blocking_obstacles(self, path: Segment) -> list[Obstacle]:
        """Obstacles whose interior the path passes through."""
        return [o for o in self.obstacles if o.blocks(path)]

    def is_los(self, a: Point, b: Point) -> bool:
        """True when the straight path from ``a`` to ``b`` is unobstructed."""
        path = Segment(a, b)
        return not self.blocking_walls(path) and not self.blocking_obstacles(path)

    def penetration_loss_db(self, path: Segment) -> float:
        """Total one-way through-material loss along ``path`` in dB."""
        loss = sum(w.material.penetration_loss_db for w in self.blocking_walls(path))
        loss += sum(
            o.material.penetration_loss_db for o in self.blocking_obstacles(path)
        )
        return loss

    # ------------------------------------------------------------------
    # Geometry-facing queries
    # ------------------------------------------------------------------
    def contains(self, p: Point, boundary: bool = True) -> bool:
        """True when ``p`` is within the area of interest."""
        return self.boundary.contains(p, boundary=boundary)

    def convex_pieces(self) -> list[Polygon]:
        """Convex decomposition of the boundary (Sec. IV-B2)."""
        return decompose_convex(self.boundary)

    def clutter_density(self) -> float:
        """Fraction of the venue area occupied by obstacles (0..1)."""
        area = self.boundary.area()
        if area <= 0:
            return 0.0
        return min(1.0, sum(o.polygon.area() for o in self.obstacles) / area)
