"""Scenario serialization: define venues as JSON documents.

Users deploy NomLoc in their own buildings; this module lets a complete
scenario — boundary, walls, clutter, AP deployment, test sites — be
declared in a JSON file and round-tripped losslessly.  Materials are
referenced by name from :data:`repro.channel.materials.MATERIALS`.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..channel.materials import MATERIALS, Material
from ..geometry import Point, Polygon, Segment
from .floorplan import FloorPlan, Obstacle, Wall
from .scenarios import APSpec, Scenario

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_scenario",
    "load_scenario",
]

_FORMAT_VERSION = 1


def _point(p: Point) -> list[float]:
    return [p.x, p.y]


def _coords(points) -> list[list[float]]:
    return [_point(p) for p in points]


def _material_name(material: Material) -> str:
    if material.name not in MATERIALS:
        raise ValueError(
            f"material {material.name!r} is not registered; custom "
            "materials cannot be serialized"
        )
    return material.name


def _lookup_material(name: str) -> Material:
    try:
        return MATERIALS[name]
    except KeyError:
        raise ValueError(
            f"unknown material {name!r}; available: {sorted(MATERIALS)}"
        ) from None


def scenario_to_dict(scenario: Scenario) -> dict:
    """Serialize a scenario to a JSON-compatible dictionary."""
    plan = scenario.plan
    return {
        "format_version": _FORMAT_VERSION,
        "name": scenario.name,
        "path_loss_exponent": scenario.path_loss_exponent,
        "plan": {
            "boundary": _coords(plan.boundary.vertices),
            "boundary_material": _material_name(plan.boundary_material),
            "walls": [
                {
                    "a": _point(w.segment.a),
                    "b": _point(w.segment.b),
                    "material": _material_name(w.material),
                }
                for w in plan.walls
            ],
            "obstacles": [
                {
                    "polygon": _coords(o.polygon.vertices),
                    "material": _material_name(o.material),
                    "name": o.name,
                }
                for o in plan.obstacles
            ],
        },
        "aps": [
            {
                "name": ap.name,
                "position": _point(ap.position),
                "nomadic": ap.nomadic,
                "sites": _coords(ap.sites),
            }
            for ap in scenario.aps
        ],
        "test_sites": _coords(scenario.test_sites),
    }


def scenario_from_dict(doc: dict) -> Scenario:
    """Build a scenario from a dictionary written by :func:`scenario_to_dict`.

    Validation (sites inside the venue, nomadic site counts, obstacle
    containment...) is performed by the :class:`Scenario` and
    :class:`FloorPlan` constructors.
    """
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported scenario format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    plan_doc = doc["plan"]
    boundary = Polygon.from_coords(
        [(float(x), float(y)) for x, y in plan_doc["boundary"]]
    )
    walls = tuple(
        Wall(
            Segment(
                Point(float(w["a"][0]), float(w["a"][1])),
                Point(float(w["b"][0]), float(w["b"][1])),
            ),
            _lookup_material(w["material"]),
        )
        for w in plan_doc.get("walls", [])
    )
    obstacles = tuple(
        Obstacle(
            Polygon.from_coords(
                [(float(x), float(y)) for x, y in o["polygon"]]
            ),
            _lookup_material(o["material"]),
            o.get("name", ""),
        )
        for o in plan_doc.get("obstacles", [])
    )
    plan = FloorPlan(
        doc["name"],
        boundary,
        walls,
        obstacles,
        _lookup_material(plan_doc.get("boundary_material", "concrete")),
    )
    aps = tuple(
        APSpec(
            ap["name"],
            Point(float(ap["position"][0]), float(ap["position"][1])),
            nomadic=bool(ap.get("nomadic", False)),
            sites=tuple(
                Point(float(x), float(y)) for x, y in ap.get("sites", [])
            ),
        )
        for ap in doc["aps"]
    )
    test_sites = tuple(
        Point(float(x), float(y)) for x, y in doc["test_sites"]
    )
    return Scenario(
        doc["name"],
        plan,
        aps,
        test_sites,
        float(doc["path_loss_exponent"]),
    )


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write a scenario to ``path`` as indented JSON."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True)
    )


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario previously written by :func:`save_scenario`."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
