"""The paper's two experimental venues (Fig. 6), reconstructed.

The exact HKUST floor plans are not published; these layouts preserve the
properties the evaluation depends on:

* **Lab** — a rectangular academic lab, dense with equipment (PCs, server
  racks, cabinets), four APs near the corners, AP 1 nomadic among
  ``{P1, P2, P3}``, ten test sites.  Heavy clutter creates NLOS links and
  rich multipath.
* **Lobby** — a larger, open, L-shaped (non-convex) lobby with a sparse AP
  layout, twelve test sites, AP 1 nomadic among ``{P1, P2, P3}``.

A :class:`Scenario` bundles the floor plan, the AP deployment, the nomadic
site set and the test sites, and carries the venue-appropriate path-loss
exponent for the channel simulator (which the *localizer* never sees —
NomLoc stays calibration-free).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..channel.materials import CONCRETE, DRYWALL, METAL, WOOD, Material
from ..geometry import Point, Polygon, Segment
from .floorplan import FloorPlan, Obstacle, Wall

__all__ = [
    "APSpec",
    "Scenario",
    "build_lab",
    "build_lobby",
    "build_office",
    "get_scenario",
    "SCENARIOS",
]


@dataclass(frozen=True)
class APSpec:
    """One access point in a deployment.

    Attributes
    ----------
    name:
        Identifier (``"AP1"``...).
    position:
        Home position of the AP.
    nomadic:
        True when the AP moves among ``sites`` during measurement.
    sites:
        Discrete measurement sites the nomadic AP walks among (includes
        its home position as the walk's starting state).
    """

    name: str
    position: Point
    nomadic: bool = False
    sites: tuple[Point, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.nomadic and len(self.sites) < 2:
            raise ValueError("a nomadic AP needs at least two sites")
        if not self.nomadic and self.sites:
            raise ValueError("a static AP must not declare sites")

    def all_sites(self) -> tuple[Point, ...]:
        """Every position the AP can measure from."""
        return self.sites if self.nomadic else (self.position,)


@dataclass(frozen=True)
class Scenario:
    """A venue plus its AP deployment and evaluation sites."""

    name: str
    plan: FloorPlan
    aps: tuple[APSpec, ...]
    test_sites: tuple[Point, ...]
    path_loss_exponent: float

    def __post_init__(self) -> None:
        for ap in self.aps:
            for site in ap.all_sites():
                self._check_site(site, ap.name)
        for site in self.test_sites:
            self._check_site(site, "test site")
        names = [ap.name for ap in self.aps]
        if len(set(names)) != len(names):
            raise ValueError("AP names must be unique")

    def _check_site(self, site: Point, owner: str) -> None:
        if not self.plan.contains(site):
            raise ValueError(f"{owner} site {site} outside the venue")
        for obstacle in self.plan.obstacles:
            if obstacle.polygon.contains(site, boundary=False):
                raise ValueError(
                    f"{owner} site {site} is inside obstacle "
                    f"{obstacle.name or obstacle.polygon!r}"
                )

    @property
    def static_aps(self) -> tuple[APSpec, ...]:
        return tuple(ap for ap in self.aps if not ap.nomadic)

    @property
    def nomadic_aps(self) -> tuple[APSpec, ...]:
        return tuple(ap for ap in self.aps if ap.nomadic)

    def dense_sites(self, spacing_m: float, margin: float = 0.3) -> tuple[Point, ...]:
        """A dense, obstacle-free evaluation grid over the venue.

        The paper's SLV is defined as an area integral (Eq. 20-21) and
        sampled at ``p`` sites (Eq. 22); the hand-picked ``test_sites``
        match the prototype's measurement sites, while this grid
        approximates the integral itself.
        """
        if spacing_m <= 0:
            raise ValueError("spacing must be positive")
        points = self.plan.boundary.grid_points(spacing_m, margin=margin)
        return tuple(
            p
            for p in points
            if not any(
                o.polygon.contains(p, boundary=False)
                for o in self.plan.obstacles
            )
        )

    def static_variant(self) -> "Scenario":
        """The corresponding static deployment benchmark.

        Nomadic APs are pinned at their home positions — this is the
        baseline Figs. 8 and 9 compare NomLoc against.
        """
        pinned = tuple(
            APSpec(ap.name, ap.position) if ap.nomadic else ap for ap in self.aps
        )
        return Scenario(
            f"{self.name}-static",
            self.plan,
            pinned,
            self.test_sites,
            self.path_loss_exponent,
        )


def _rack(
    x: float, y: float, w: float, h: float, material: Material, name: str
) -> Obstacle:
    return Obstacle(Polygon.rectangle(x, y, x + w, y + h), material, name)


def build_lab() -> Scenario:
    """The cluttered Lab scenario (Fig. 6a analogue): 12 m x 8 m."""
    boundary = Polygon.rectangle(0.0, 0.0, 12.0, 8.0)
    obstacles = (
        _rack(2.0, 2.6, 2.4, 0.9, WOOD, "desk-row-west"),
        _rack(5.2, 2.6, 2.4, 0.9, WOOD, "desk-row-mid"),
        _rack(8.4, 2.6, 2.4, 0.9, WOOD, "desk-row-east"),
        _rack(2.0, 4.9, 2.4, 0.9, WOOD, "desk-row-west-2"),
        _rack(5.2, 4.9, 2.4, 0.9, WOOD, "desk-row-mid-2"),
        _rack(9.8, 5.6, 1.0, 2.0, METAL, "server-rack"),
        _rack(0.3, 4.4, 0.8, 1.8, METAL, "cabinet-west"),
        _rack(5.6, 0.3, 1.8, 0.7, WOOD, "bench-south"),
    )
    walls = (
        Wall(Segment(Point(7.6, 4.9), Point(7.6, 8.0)), DRYWALL),
    )
    plan = FloorPlan("lab", boundary, walls, obstacles, CONCRETE)
    aps = (
        APSpec(
            "AP1",
            Point(1.0, 1.0),
            nomadic=True,
            sites=(Point(1.0, 1.0), Point(4.6, 4.1), Point(7.0, 1.6), Point(8.8, 4.4)),
        ),
        APSpec("AP2", Point(11.0, 1.0)),
        APSpec("AP3", Point(11.2, 7.2)),
        APSpec("AP4", Point(0.8, 7.2)),
    )
    test_sites = (
        Point(1.6, 2.0),
        Point(3.2, 1.6),
        Point(6.2, 1.8),
        Point(9.4, 1.4),
        Point(10.6, 4.0),
        Point(6.4, 4.2),
        Point(3.0, 4.2),
        Point(1.4, 6.2),
        Point(4.6, 6.6),
        Point(8.6, 7.0),
    )
    return Scenario("lab", plan, aps, test_sites, path_loss_exponent=2.8)


def build_lobby() -> Scenario:
    """The open L-shaped Lobby scenario (Fig. 6b analogue)."""
    boundary = Polygon.from_coords(
        [(0, 0), (25, 0), (25, 10), (12, 10), (12, 20), (0, 20)]
    )
    obstacles = (
        _rack(6.0, 4.0, 0.8, 0.8, CONCRETE, "pillar-a"),
        _rack(17.0, 4.0, 0.8, 0.8, CONCRETE, "pillar-b"),
        _rack(6.0, 13.0, 0.8, 0.8, CONCRETE, "pillar-c"),
        _rack(2.5, 8.5, 2.0, 1.0, WOOD, "reception-desk"),
    )
    plan = FloorPlan("lobby", boundary, (), obstacles, CONCRETE)
    aps = (
        APSpec(
            "AP1",
            Point(1.5, 1.5),
            nomadic=True,
            sites=(
                Point(1.5, 1.5),
                Point(10.0, 5.0),
                Point(4.0, 11.5),
                Point(8.0, 17.0),
            ),
        ),
        APSpec("AP2", Point(23.5, 1.5)),
        APSpec("AP3", Point(23.0, 8.5)),
        APSpec("AP4", Point(1.5, 18.5)),
    )
    test_sites = (
        Point(3.0, 3.0),
        Point(8.0, 2.0),
        Point(13.0, 3.0),
        Point(18.0, 2.0),
        Point(22.0, 5.0),
        Point(19.5, 8.0),
        Point(14.0, 7.0),
        Point(9.0, 8.5),
        Point(4.0, 6.5),
        Point(2.5, 12.0),
        Point(8.5, 14.0),
        Point(5.0, 18.0),
    )
    return Scenario("lobby", plan, aps, test_sites, path_loss_exponent=2.2)


def build_office() -> Scenario:
    """An office corridor venue (ours; not in the paper).

    A central corridor flanked by drywall offices — the wall-dominated
    propagation regime neither paper venue exercises: most AP-object
    links cross one or more partitions, so NLOS comes from walls rather
    than clutter.  Useful as a third evaluation point and as a template
    for users modelling their own buildings.
    """
    boundary = Polygon.rectangle(0.0, 0.0, 24.0, 12.0)
    # Corridor spans y in [5, 7]; offices above and below, 4 m wide, with
    # 1.2 m door gaps onto the corridor.
    walls = []
    for x in (4.0, 8.0, 12.0, 16.0, 20.0):
        walls.append(Wall(Segment(Point(x, 0.0), Point(x, 5.0)), DRYWALL))
        walls.append(Wall(Segment(Point(x, 7.0), Point(x, 12.0)), DRYWALL))
    for x0 in (0.0, 4.0, 8.0, 12.0, 16.0, 20.0):
        # Office front walls with a door gap at the right side of each bay.
        walls.append(
            Wall(Segment(Point(x0, 5.0), Point(x0 + 2.8, 5.0)), DRYWALL)
        )
        walls.append(
            Wall(Segment(Point(x0, 7.0), Point(x0 + 2.8, 7.0)), DRYWALL)
        )
    obstacles = (
        _rack(1.0, 1.0, 1.8, 0.8, WOOD, "desk-sw"),
        _rack(13.2, 10.2, 1.8, 0.8, WOOD, "desk-n"),
        _rack(21.0, 1.2, 0.9, 1.8, METAL, "printer-se"),
    )
    plan = FloorPlan("office", boundary, tuple(walls), obstacles, CONCRETE)
    aps = (
        APSpec(
            "AP1",
            Point(1.0, 6.0),
            nomadic=True,
            sites=(
                Point(1.0, 6.0),
                Point(7.0, 6.0),
                Point(13.0, 6.0),
                Point(19.0, 6.0),
            ),
        ),
        APSpec("AP2", Point(23.0, 6.0)),
        APSpec("AP3", Point(6.0, 11.0)),
        APSpec("AP4", Point(18.0, 1.0)),
    )
    test_sites = (
        Point(2.0, 2.5),
        Point(6.0, 2.0),
        Point(10.0, 2.8),
        Point(14.0, 2.0),
        Point(18.5, 3.2),
        Point(22.0, 9.0),
        Point(17.5, 10.0),
        Point(10.0, 9.5),
        Point(6.2, 9.0),
        Point(2.0, 10.0),
        Point(12.0, 6.0),
    )
    return Scenario("office", plan, aps, test_sites, path_loss_exponent=3.0)


SCENARIOS = {"lab": build_lab, "lobby": build_lobby, "office": build_office}


def get_scenario(name: str) -> Scenario:
    """Look up a built-in scenario by name (``"lab"`` or ``"lobby"``)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory()
