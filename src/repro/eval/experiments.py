"""The paper's evaluation experiments (Figs. 3, 7, 8, 9, 10) + ablations.

Each function reproduces one figure of Sec. V as structured data; the
``benchmarks/`` harness times them and renders the paper-style rows.  All
experiments are deterministic given their seed.

Absolute numbers come from the simulated substrate, not the authors' HKUST
testbed, so the assertions in the benchmark suite check the *shape* of
each result (orderings, crossovers, dominance), not the raw values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from typing import Sequence

import numpy as np

from ..baselines import (
    FingerprintLocalizer,
    SequenceLocalizer,
    StaticSPLocalizer,
    TrilaterationLocalizer,
    WeightedCentroidLocalizer,
)
from ..channel import DelayProfile
from ..core import (
    CenterMethod,
    LocalizerConfig,
    NomLocSystem,
    SystemConfig,
    measure_link_pdp,
)
from ..environment import get_scenario
from ..extensions import PatternBoundLocalizer, lobby_with_nomadic_count
from ..geometry import Point
from ..mobility import (
    HotspotPattern,
    MobilityPattern,
    PatrolPattern,
    SweepPattern,
)
from .metrics import ErrorCDF, ErrorStats
from .runner import run_campaign

__all__ = [
    "ExperimentConfig",
    "Fig3Result",
    "fig3_delay_profiles",
    "Fig7Result",
    "fig7_pdp_accuracy",
    "Fig8Result",
    "fig8_slv",
    "Fig9Result",
    "fig9_error_cdf",
    "Fig10Result",
    "fig10_position_error",
    "ablation_antennas",
    "ablation_center_methods",
    "ablation_interference",
    "ablation_confidence_functions",
    "ablation_device_heterogeneity",
    "ablation_proximity_metric",
    "ablation_bandwidth",
    "ablation_site_count",
    "ablation_nomadic_pairs",
    "ablation_shadowing",
    "ext_multi_nomadic",
    "ext_mobility_patterns",
    "baseline_comparison",
    "EXTRA_LAB_SITES",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared workload sizing for the experiment suite.

    Defaults are sized so the full benchmark harness finishes in minutes;
    crank ``repetitions`` and ``packets_per_link`` up for smoother curves.
    ``workers`` fans each campaign's sites out over a process pool
    (``0`` = sequential); results are bit-identical either way because
    every query's RNG is keyed only by (seed, site, repetition).
    """

    repetitions: int = 3
    packets_per_link: int = 15
    trace_steps: int = 12
    seed: int = 0
    workers: int = 0

    def system_config(self, **overrides) -> SystemConfig:
        """A :class:`SystemConfig` sized by this experiment config."""
        base = SystemConfig(
            packets_per_link=self.packets_per_link,
            trace_steps=self.trace_steps,
        )
        return replace(base, **overrides) if overrides else base


DEFAULT = ExperimentConfig()


# ----------------------------------------------------------------------
# Fig. 3 — channel response delay profile, LOS vs NLOS
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig3Result:
    """Averaged delay profiles of one LOS and one NLOS Lab link."""

    los_profile: DelayProfile
    nlos_profile: DelayProfile
    los_link: tuple[Point, Point]
    nlos_link: tuple[Point, Point]

    def first_tap_ratio(self) -> float:
        """NLOS first-tap amplitude relative to LOS (<< 1 expected)."""
        return float(
            self.nlos_profile.amplitudes[0] / self.los_profile.amplitudes[0]
        )


def fig3_delay_profiles(
    config: ExperimentConfig = DEFAULT, packets: int = 60
) -> Fig3Result:
    """Reproduce Fig. 3: CIR delay profiles of a LOS and an NLOS link.

    Picks a comparable-length LOS/NLOS link pair from the Lab scenario and
    averages per-tap amplitudes over ``packets`` snapshots.
    """
    scenario = get_scenario("lab")
    system = NomLocSystem(scenario, config.system_config())
    sim = system.link_sim
    candidates = [
        (ap.position, site)
        for ap in scenario.aps
        for site in scenario.test_sites
        if 3.0 <= ap.position.distance_to(site) <= 9.0
    ]
    los_link = next(
        (ap, s) for ap, s in candidates if sim.is_los(ap, s)
    )
    nlos_link = next(
        (ap, s) for ap, s in candidates if not sim.is_los(ap, s)
    )

    def averaged(link: tuple[Point, Point]) -> DelayProfile:
        rng = np.random.default_rng(config.seed)
        profiles = [
            sim.measure_delay_profile(link[1], link[0], rng)
            for _ in range(packets)
        ]
        amps = np.mean([p.amplitudes for p in profiles], axis=0)
        return DelayProfile(profiles[0].delays_s, amps).truncated(1.5e-6)

    return Fig3Result(averaged(los_link), averaged(nlos_link), los_link, nlos_link)


# ----------------------------------------------------------------------
# Fig. 7 — PDP-based proximity determination accuracy per site
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    """Per-site proximity accuracy for one scenario."""

    scenario: str
    site_accuracies: tuple[float, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.site_accuracies))

    def fraction_above(self, threshold: float) -> float:
        """Fraction of sites whose accuracy exceeds ``threshold``."""
        return float(
            np.mean([a > threshold for a in self.site_accuracies])
        )


def fig7_pdp_accuracy(
    scenario_name: str,
    config: ExperimentConfig = DEFAULT,
    rounds: int = 10,
) -> Fig7Result:
    """Reproduce Fig. 7: PDP proximity accuracy at every test site.

    Each round independently re-measures all four AP links and judges the
    C(4,2) = 6 pairs against ground-truth distances; a site's accuracy is
    the fraction of correct judgements over all rounds.
    """
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, config.system_config())
    ap_positions = [ap.position for ap in scenario.aps]
    accuracies = []
    for site_idx, site in enumerate(scenario.test_sites):
        correct = 0
        total = 0
        for rnd in range(rounds):
            rng = np.random.default_rng(
                np.random.SeedSequence([config.seed, site_idx, rnd])
            )
            pdps = [
                measure_link_pdp(
                    system.link_sim, site, p, config.packets_per_link, rng
                )
                for p in ap_positions
            ]
            for i, j in combinations(range(len(ap_positions)), 2):
                truth = site.distance_to(ap_positions[i]) <= site.distance_to(
                    ap_positions[j]
                )
                judged = pdps[i] >= pdps[j]
                correct += truth == judged
                total += 1
        accuracies.append(correct / total)
    return Fig7Result(scenario_name, tuple(accuracies))


# ----------------------------------------------------------------------
# Fig. 8 — spatial localizability variance, static vs nomadic
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Result:
    """SLV of both deployments in both scenarios."""

    slv: dict[str, dict[str, float]]  # scenario -> {"static"|"nomadic": slv}
    stats: dict[str, dict[str, ErrorStats]]

    def reduction(self, scenario: str) -> float:
        """Relative SLV reduction achieved by the nomadic deployment."""
        s = self.slv[scenario]
        if s["static"] <= 0:
            return 0.0
        return 1.0 - s["nomadic"] / s["static"]


def fig8_slv(
    config: ExperimentConfig = DEFAULT,
    scenario_names: Sequence[str] = ("lab", "lobby"),
) -> Fig8Result:
    """Reproduce Fig. 8: SLV comparison in the Lab and the Lobby."""
    slv_out: dict[str, dict[str, float]] = {}
    stats_out: dict[str, dict[str, ErrorStats]] = {}
    for name in scenario_names:
        scenario = get_scenario(name)
        nomadic = NomLocSystem(scenario, config.system_config())
        static = NomLocSystem(
            scenario, config.system_config(use_nomadic=False)
        )
        nom_res = run_campaign(
            nomadic,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            f"{name}-nomadic",
            workers=config.workers,
        )
        sta_res = run_campaign(
            static,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            f"{name}-static",
            workers=config.workers,
        )
        slv_out[name] = {
            "static": sta_res.stats.slv,
            "nomadic": nom_res.stats.slv,
        }
        stats_out[name] = {"static": sta_res.stats, "nomadic": nom_res.stats}
    return Fig8Result(slv_out, stats_out)


# ----------------------------------------------------------------------
# Fig. 9 — error CDF, static vs nomadic
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9Result:
    """Error CDFs of both deployments in one scenario."""

    scenario: str
    static_cdf: ErrorCDF
    nomadic_cdf: ErrorCDF


def fig9_error_cdf(
    scenario_name: str, config: ExperimentConfig = DEFAULT
) -> Fig9Result:
    """Reproduce Fig. 9: CDF of per-site mean error, static vs nomadic."""
    scenario = get_scenario(scenario_name)
    nomadic = NomLocSystem(scenario, config.system_config())
    static = NomLocSystem(scenario, config.system_config(use_nomadic=False))
    nom = run_campaign(
        nomadic,
        scenario.test_sites,
        config.repetitions,
        config.seed,
        workers=config.workers,
    )
    sta = run_campaign(
        static,
        scenario.test_sites,
        config.repetitions,
        config.seed,
        workers=config.workers,
    )
    return Fig9Result(scenario_name, sta.cdf, nom.cdf)


# ----------------------------------------------------------------------
# Fig. 10 — nomadic AP position error sweep
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Result:
    """Error CDFs for each position-error range (ER)."""

    scenario: str
    cdfs: dict[float, ErrorCDF]

    def mean_at(self, er: float) -> float:
        """Mean per-site error at one error range."""
        return self.cdfs[er].mean

    def degradation(self, er: float) -> float:
        """Mean-error increase at ``er`` relative to ER = 0."""
        return self.mean_at(er) - self.mean_at(0.0)


def fig10_position_error(
    scenario_name: str,
    config: ExperimentConfig = DEFAULT,
    error_ranges: Sequence[float] = (0.0, 1.0, 2.0, 3.0),
) -> Fig10Result:
    """Reproduce Fig. 10: robustness to nomadic position error."""
    scenario = get_scenario(scenario_name)
    cdfs = {}
    for er in error_ranges:
        system = NomLocSystem(
            scenario, config.system_config().with_error_range(er)
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        cdfs[float(er)] = result.cdf
    return Fig10Result(scenario_name, cdfs)


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

def ablation_center_methods(
    scenario_name: str = "lab", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """ABL-CTR: centroid vs Chebyshev vs analytic region centres."""
    scenario = get_scenario(scenario_name)
    out = {}
    for method in CenterMethod:
        system = NomLocSystem(
            scenario,
            config.system_config(),
            LocalizerConfig(center_method=method),
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[method.value] = result.stats
    return out


#: Additional nomadic measurement sites for the Lab, appended to the
#: deployment's own site set for the S-sweep (all obstacle-free).
EXTRA_LAB_SITES = (Point(2.6, 6.6), Point(10.4, 2.0), Point(6.2, 6.6))


def ablation_site_count(
    config: ExperimentConfig = DEFAULT,
    site_counts: Sequence[int] = (0, 2, 3, 4, 5, 7),
) -> dict[int, ErrorStats]:
    """ABL-SITES: accuracy vs the number of nomadic measurement sites S.

    ``S = 0`` is the static deployment; larger S extends the Lab site set
    with :data:`EXTRA_LAB_SITES`.
    """
    base = get_scenario("lab")
    nomadic_ap = base.nomadic_aps[0]
    all_sites = nomadic_ap.sites + EXTRA_LAB_SITES
    out = {}
    for count in site_counts:
        if count > len(all_sites):
            raise ValueError(
                f"S={count} exceeds the {len(all_sites)} available sites"
            )
        if count == 0:
            system = NomLocSystem(
                base, config.system_config(use_nomadic=False)
            )
        else:
            sites = all_sites[:count]
            aps = tuple(
                replace(ap, nomadic=count >= 2, sites=sites if count >= 2 else ())
                if ap.name == nomadic_ap.name
                else ap
                for ap in base.aps
            )
            variant = replace(base, aps=aps)
            # Walk long enough to visit every site with high probability.
            system = NomLocSystem(
                variant,
                config.system_config(trace_steps=max(config.trace_steps, 4 * count)),
            )
        result = run_campaign(
            system,
            base.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[count] = result.stats
    return out


def ablation_proximity_metric(
    scenario_name: str = "lab", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """ABL-METRIC: PDP vs RSS vs first-tap as the proximity metric.

    The paper's central motivation for CSI over RSS (Sec. I): coarse
    total-power RSS is corrupted by multipath, and first-tap (TOA-style)
    estimation is misled by NLOS.
    """
    from ..core.pdp import PROXIMITY_METRICS

    scenario = get_scenario(scenario_name)
    out = {}
    for name in PROXIMITY_METRICS:
        system = NomLocSystem(
            scenario, config.system_config(proximity_metric=name)
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[name] = result.stats
    return out


def ablation_bandwidth(
    scenario_name: str = "lab",
    config: ExperimentConfig = DEFAULT,
    bandwidths_mhz: Sequence[float] = (5.0, 10.0, 20.0, 40.0),
) -> dict[float, ErrorStats]:
    """ABL-BW: channel bandwidth vs localization accuracy.

    Sec. III-B credits "the 20 MHz bandwidth of [the] 802.11n system" for
    resolving multipath: wider channels give finer CIR tap resolution
    (50 ns at 20 MHz), separating the direct path from reflections.  This
    sweep re-runs the system at several bandwidths, scaling the active
    subcarrier set with the FFT occupancy.
    """
    from ..channel import CSISynthesizer, OFDMConfig, PropagationModel

    scenario = get_scenario(scenario_name)
    out = {}
    for bw in bandwidths_mhz:
        ofdm = OFDMConfig(bandwidth_hz=bw * 1e6)
        synthesizer = CSISynthesizer(
            propagation=PropagationModel(
                path_loss_exponent=scenario.path_loss_exponent
            ),
            ofdm=ofdm,
        )
        system = NomLocSystem(
            scenario, config.system_config(), synthesizer=synthesizer
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[float(bw)] = result.stats
    return out


def ablation_interference(
    scenario_name: str = "lab",
    config: ExperimentConfig = DEFAULT,
    burst_probability: float = 0.3,
    burst_power_dbm: float = -10.0,
) -> dict[str, ErrorStats]:
    """ABL-INTF: bursty co-channel interference, mean vs median PDP.

    Three conditions: a clean channel with the paper's mean-of-packets
    PDP, the same estimator under strong collision bursts, and the robust
    median-of-packets variant under the same bursts.  The IFFT's
    processing gain absorbs moderate interference for free; overwhelming
    bursts favour the median.
    """
    from ..channel import CSISynthesizer, NoiseModel, PropagationModel

    scenario = get_scenario(scenario_name)

    def make_system(bursty: bool, metric: str) -> NomLocSystem:
        noise = NoiseModel(
            burst_probability=burst_probability if bursty else 0.0,
            burst_power_dbm=burst_power_dbm,
        )
        synthesizer = CSISynthesizer(
            propagation=PropagationModel(
                path_loss_exponent=scenario.path_loss_exponent
            ),
            noise=noise,
        )
        return NomLocSystem(
            scenario,
            config.system_config(proximity_metric=metric),
            synthesizer=synthesizer,
        )

    conditions = {
        "clean/mean": make_system(False, "pdp"),
        "bursty/mean": make_system(True, "pdp"),
        "bursty/median": make_system(True, "pdp_median"),
    }
    out = {}
    for label, system in conditions.items():
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[label] = result.stats
    return out


def ablation_antennas(
    scenario_name: str = "lab", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """ABL-ANT: omni vs sector antennas on the static APs.

    The paper's routers are omnidirectional.  Sector antennas make the
    received power direction-dependent, breaking the PDP-vs-distance
    monotonicity NomLoc's judgements rest on: inward-facing sectors (all
    boresights towards the venue centre) are nearly harmless, while
    mis-pointed sectors (facing away) are the worst case.
    """
    import math

    from ..channel import AntennaPattern

    scenario = get_scenario(scenario_name)
    centre = scenario.plan.boundary.centroid()

    def pointing(ap, inward: bool) -> AntennaPattern:
        az = math.degrees(
            math.atan2(centre.y - ap.position.y, centre.x - ap.position.x)
        )
        if not inward:
            az += 180.0
        return AntennaPattern(
            boresight_deg=az, front_gain_db=6.0, back_loss_db=12.0
        )

    configs = {
        "omni": {},
        "sector-inward": {
            ap.name: pointing(ap, True) for ap in scenario.static_aps
        },
        "sector-outward": {
            ap.name: pointing(ap, False) for ap in scenario.static_aps
        },
    }
    out = {}
    for label, antennas in configs.items():
        system = NomLocSystem(
            scenario, config.system_config(), antennas=antennas
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[label] = result.stats
    return out


def ablation_device_heterogeneity(
    scenario_name: str = "lab",
    config: ExperimentConfig = DEFAULT,
    offset_sigmas_db: Sequence[float] = (0.0, 2.0, 4.0),
) -> dict[float, dict[str, ErrorStats]]:
    """ABL-HETERO: per-device gain offsets vs the constraint formulation.

    Real deployments mix hardware, so PDPs from different APs carry
    systematic dB offsets that corrupt *cross-device* proximity
    judgements.  A nomadic AP's offset follows it to every site, so
    same-device site-pair comparisons are immune — this sweep shows the
    generalized formulation (site pairs on) degrading more slowly than
    the paper-literal one (site-vs-static comparisons only).
    """
    scenario = get_scenario(scenario_name)
    draws_per_sigma = 3  # average out the luck of one offset realization
    out: dict[float, dict[str, ErrorStats]] = {}
    for sigma in offset_sigmas_db:
        per_label_errors: dict[str, list[float]] = {
            "paper-literal": [],
            "generalized": [],
        }
        for draw in range(draws_per_sigma if sigma > 0 else 1):
            rng = np.random.default_rng(
                np.random.SeedSequence([config.seed + 1000, draw])
            )
            offsets = {
                ap.name: float(rng.normal(0.0, sigma)) if sigma > 0 else 0.0
                for ap in scenario.aps
            }
            for label, flag in (
                ("paper-literal", False),
                ("generalized", True),
            ):
                system = NomLocSystem(
                    scenario,
                    config.system_config(),
                    LocalizerConfig(include_nomadic_pairs=flag),
                    device_offsets_db=offsets,
                )
                result = run_campaign(
                    system,
                    scenario.test_sites,
                    config.repetitions,
                    config.seed,
                    workers=config.workers,
                )
                per_label_errors[label].extend(result.per_site_means())
        out[float(sigma)] = {
            label: ErrorStats.from_errors(errors)
            for label, errors in per_label_errors.items()
        }
    return out


def ablation_confidence_functions(
    scenario_name: str = "lab", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """ABL-CONF: choice of the Eq. 2-3 confidence function.

    The paper picks one specific ``f`` (Eq. 4) from "a wide variety";
    this sweep runs the registered alternatives.
    """
    from ..core.pdp import CONFIDENCE_FUNCTIONS

    scenario = get_scenario(scenario_name)
    out = {}
    for name in CONFIDENCE_FUNCTIONS:
        system = NomLocSystem(
            scenario,
            config.system_config(),
            LocalizerConfig(confidence_fn=name),
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[name] = result.stats
    return out


def ablation_shadowing(
    scenario_name: str = "lab",
    config: ExperimentConfig = DEFAULT,
    sigmas_db: Sequence[float] = (0.0, 2.0, 4.0, 6.0),
) -> dict[float, ErrorStats]:
    """ABL-SHADOW: robustness to correlated log-normal shadow fading.

    Shadowing perturbs the distance-vs-PDP ordering that all of NomLoc
    rests on; this sweep quantifies how gracefully accuracy degrades as
    the shadowing standard deviation grows.
    """
    from ..channel import ShadowingModel

    scenario = get_scenario(scenario_name)
    out = {}
    for sigma in sigmas_db:
        system = NomLocSystem(
            scenario,
            config.system_config(),
            shadowing=ShadowingModel(sigma_db=sigma, seed=config.seed),
        )
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[float(sigma)] = result.stats
    return out


def ablation_nomadic_pairs(
    config: ExperimentConfig = DEFAULT,
    scenario_names: Sequence[str] = ("lab", "lobby"),
) -> dict[str, dict[str, ErrorStats]]:
    """ABL-PAIRS: paper-literal Eq. 13 vs generalized site-pair rows."""
    out: dict[str, dict[str, ErrorStats]] = {}
    for name in scenario_names:
        scenario = get_scenario(name)
        out[name] = {}
        for label, flag in (("paper-literal", False), ("generalized", True)):
            system = NomLocSystem(
                scenario,
                config.system_config(),
                LocalizerConfig(include_nomadic_pairs=flag),
            )
            result = run_campaign(
                system,
                scenario.test_sites,
                config.repetitions,
                config.seed,
                workers=config.workers,
            )
            out[name][label] = result.stats
    return out


# ----------------------------------------------------------------------
# Extensions (paper future work)
# ----------------------------------------------------------------------

def ext_multi_nomadic(
    config: ExperimentConfig = DEFAULT,
    counts: Sequence[int] = (1, 2, 3),
) -> dict[int, ErrorStats]:
    """EXT-MULTI: aggregate multiple nomadic APs in the Lobby."""
    base = get_scenario("lobby")
    out = {}
    for count in counts:
        scenario = lobby_with_nomadic_count(base, count)
        system = NomLocSystem(scenario, config.system_config())
        result = run_campaign(
            system,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[count] = result.stats
    return out


def ext_mobility_patterns(
    scenario_name: str = "lobby", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """EXT-PATTERN: impact of the nomadic AP's movement pattern."""
    scenario = get_scenario(scenario_name)
    num_sites = len(scenario.nomadic_aps[0].sites)
    patterns: dict[str, MobilityPattern | None] = {
        "markov": None,  # the paper's default walk
        "patrol": PatrolPattern(num_sites),
        "sweep": SweepPattern(num_sites),
        "hotspot": HotspotPattern(num_sites, hotspot=0, bias=0.7),
    }
    out = {}
    for label, pattern in patterns.items():
        system = NomLocSystem(scenario, config.system_config())
        localizer = PatternBoundLocalizer(system, pattern)
        result = run_campaign(
            localizer,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[label] = result.stats
    return out


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------

def baseline_comparison(
    scenario_name: str = "lab", config: ExperimentConfig = DEFAULT
) -> dict[str, ErrorStats]:
    """BASE-CMP: NomLoc against the conventional localization families."""
    scenario = get_scenario(scenario_name)
    sys_cfg = config.system_config()
    rng = np.random.default_rng(config.seed)
    localizers = {
        "nomloc": NomLocSystem(scenario, sys_cfg),
        "static-sp": StaticSPLocalizer(scenario, sys_cfg),
        "trilateration": TrilaterationLocalizer(
            scenario, sys_cfg, rng=np.random.default_rng(rng.integers(2**63))
        ),
        "fingerprint": FingerprintLocalizer(
            scenario, sys_cfg, rng=np.random.default_rng(rng.integers(2**63))
        ),
        "weighted-centroid": WeightedCentroidLocalizer(scenario, sys_cfg),
        "sequence": SequenceLocalizer(scenario, sys_cfg),
    }
    out = {}
    for name, localizer in localizers.items():
        result = run_campaign(
            localizer,
            scenario.test_sites,
            config.repetitions,
            config.seed,
            workers=config.workers,
        )
        out[name] = result.stats
    return out
