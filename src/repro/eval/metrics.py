"""Evaluation metrics: SLV (Eq. 22), error statistics, error CDFs.

These are the two quantities Sec. V-A defines: *spatial localizability
variance* — the variance of per-site mean errors over the sampled sites —
and *accuracy* as the CDF of mean error across distinct sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["slv", "ErrorStats", "ErrorCDF"]


def slv(per_site_mean_errors: Sequence[float]) -> float:
    """Spatial localizability variance (Eq. 22).

    ``SLV = (1/p) * sum_i (e_i - e_bar)^2`` over the ``p`` sample sites'
    mean errors.
    """
    e = np.asarray(per_site_mean_errors, dtype=float)
    if e.size == 0:
        raise ValueError("SLV of an empty error set is undefined")
    return float(np.mean((e - e.mean()) ** 2))


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of a localization-error sample."""

    mean: float
    median: float
    p90: float
    maximum: float
    slv: float
    count: int

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> "ErrorStats":
        e = np.asarray(errors, dtype=float)
        if e.size == 0:
            raise ValueError("cannot summarize an empty error set")
        if np.any(e < 0):
            raise ValueError("errors must be non-negative")
        return cls(
            mean=float(e.mean()),
            median=float(np.median(e)),
            p90=float(np.percentile(e, 90)),
            maximum=float(e.max()),
            slv=slv(e),
            count=int(e.size),
        )


@dataclass(frozen=True)
class ErrorCDF:
    """Empirical CDF of localization errors.

    Attributes
    ----------
    samples:
        Sorted error values.
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        s = np.sort(np.asarray(self.samples, dtype=float))
        if s.size == 0:
            raise ValueError("CDF needs at least one sample")
        if s[0] < 0:
            raise ValueError("errors must be non-negative")
        object.__setattr__(self, "samples", s)

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> "ErrorCDF":
        return cls(np.asarray(errors, dtype=float))

    def at(self, error_m: float) -> float:
        """``P(error <= error_m)``."""
        return float(np.searchsorted(self.samples, error_m, side="right")) / len(
            self.samples
        )

    def percentile(self, q: float) -> float:
        """Error value at the ``q``-th percentile (0..100)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        return float(np.percentile(self.samples, q))

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def series(self, max_error: float | None = None, points: int = 21):
        """``(error, cdf)`` pairs for plotting/printing a Fig. 9/10 curve."""
        if points < 2:
            raise ValueError("need at least two points")
        hi = max_error if max_error is not None else float(self.samples[-1])
        xs = np.linspace(0.0, max(hi, 1e-9), points)
        return [(float(x), self.at(float(x))) for x in xs]

    def dominates(self, other: "ErrorCDF", grid_points: int = 50) -> bool:
        """True when this CDF is everywhere >= ``other`` (better or equal)."""
        hi = max(float(self.samples[-1]), float(other.samples[-1]))
        xs = np.linspace(0.0, hi, grid_points)
        return all(self.at(float(x)) >= other.at(float(x)) - 1e-12 for x in xs)
