"""Plain-text rendering of experiment results.

The benchmark harness uses these to print/persist the same rows and series
the paper's figures plot.
"""

from __future__ import annotations

from typing import Sequence

from ..channel import DelayProfile
from .metrics import ErrorCDF, ErrorStats

__all__ = [
    "format_table",
    "format_stats_table",
    "format_cdf_table",
    "format_delay_profile",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(v.ljust(w) for v, w in zip(row, widths))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_stats_table(stats_by_name: dict[str, ErrorStats]) -> str:
    """One row of summary statistics per named configuration."""
    rows = [
        [name, s.mean, s.median, s.p90, s.maximum, s.slv]
        for name, s in stats_by_name.items()
    ]
    return format_table(
        ["config", "mean(m)", "median(m)", "p90(m)", "max(m)", "SLV"], rows
    )


def format_cdf_table(
    cdfs_by_name: dict[str, ErrorCDF],
    max_error: float | None = None,
    points: int = 11,
) -> str:
    """CDF curves side by side, one row per error value."""
    if not cdfs_by_name:
        raise ValueError("need at least one CDF")
    hi = max_error
    if hi is None:
        hi = max(float(c.samples[-1]) for c in cdfs_by_name.values())
    names = list(cdfs_by_name)
    first_series = cdfs_by_name[names[0]].series(hi, points)
    rows = []
    for idx, (x, _) in enumerate(first_series):
        row: list[object] = [f"{x:.2f}"]
        for name in names:
            row.append(cdfs_by_name[name].series(hi, points)[idx][1])
        rows.append(row)
    return format_table(["error(m)"] + names, rows)


def format_delay_profile(
    profile: DelayProfile, label: str, max_taps: int = 16
) -> str:
    """A Fig. 3-style delay/amplitude series."""
    rows = [
        [f"{d * 1e6:.2f}", f"{a:.3e}"]
        for d, a in zip(
            profile.delays_s[:max_taps], profile.amplitudes[:max_taps]
        )
    ]
    return f"{label}\n" + format_table(["delay(us)", "amplitude"], rows)
