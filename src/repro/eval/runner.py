"""Campaign runner: per-site mean errors for any localizer.

The paper's metrics are computed from the *mean error per test site*
(Eq. 22 and the "CDF of the mean error across distinct sites"), so a
campaign runs each localizer ``repetitions`` times per site with
independent randomness and averages.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from ..geometry import Point
from ..obs import capture, get_tracer, is_enabled, span
from .metrics import ErrorCDF, ErrorStats

__all__ = [
    "Localizer",
    "CampaignWorkerError",
    "SiteFailure",
    "SiteResult",
    "CampaignResult",
    "run_campaign",
    "run_campaign_via_service",
]


class CampaignWorkerError(RuntimeError):
    """A campaign query crashed, with enough context to replay it.

    A bare exception from deep inside a worker process is useless for a
    multi-hour campaign — you need the failing ``(site, repetition)``
    pair and the seed to reproduce the exact query in isolation::

        rng = np.random.default_rng(
            np.random.SeedSequence([seed, site_index, repetition])
        )
        localizer.localization_error(site, rng)

    Attributes
    ----------
    site_index, site, repetition, seed:
        Coordinates of the failing query in the campaign's seed grid.
    """

    def __init__(
        self,
        site_index: int,
        site: Point,
        repetition: int,
        seed: int,
        message: str,
    ) -> None:
        super().__init__(
            f"campaign query failed at site {site_index} "
            f"({site.x:g}, {site.y:g}), repetition {repetition}, "
            f"seed {seed}: {message} — replay with "
            f"SeedSequence([{seed}, {site_index}, {repetition}])"
        )
        self.site_index = site_index
        self.site = site
        self.repetition = repetition
        self.seed = seed


@dataclass(frozen=True)
class SiteFailure:
    """One site a partial-results campaign could not measure.

    Attributes
    ----------
    site_index, site:
        Which site failed.
    repetition, seed:
        The first failing query's coordinates in the seed grid (see
        :class:`CampaignWorkerError` for the replay recipe).
    error:
        ``"ExcType: message"`` of the original exception.
    """

    site_index: int
    site: Point
    repetition: int
    seed: int
    error: str


class Localizer(Protocol):
    """Anything that can report a localization error for a query."""

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float: ...


@dataclass(frozen=True)
class SiteResult:
    """Errors collected at one test site."""

    site: Point
    errors: tuple[float, ...]

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.errors))


@dataclass(frozen=True)
class CampaignResult:
    """All per-site results of one campaign.

    ``failed_sites`` is non-empty only for campaigns run with
    ``partial_results=True`` that actually lost sites; ``sites`` then
    holds the successful remainder and every summary statistic is
    computed over it alone — an explicitly partial answer, never a
    silently wrong one.
    """

    name: str
    sites: tuple[SiteResult, ...]
    failed_sites: tuple[SiteFailure, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every site was measured."""
        return not self.failed_sites

    def per_site_means(self) -> list[float]:
        """Mean error per site, in site order (successful sites only)."""
        return [s.mean_error for s in self.sites]

    @property
    def stats(self) -> ErrorStats:
        """Summary over per-site mean errors (the paper's granularity)."""
        return ErrorStats.from_errors(self.per_site_means())

    @property
    def cdf(self) -> ErrorCDF:
        """CDF of per-site mean errors (Fig. 9 / Fig. 10 curves)."""
        return ErrorCDF.from_errors(self.per_site_means())


def _site_errors(
    localizer: Localizer,
    site_idx: int,
    site: Point,
    repetitions: int,
    seed: int,
) -> tuple[list[float], SiteFailure | None]:
    """One site's error vector, under an ``eval.site`` span.

    Randomness is derived from ``SeedSequence([seed, site_idx, rep])``
    alone — never from process or thread identity — which is what makes
    the parallel campaign path bit-identical to the sequential one.

    A query exception stops the site at the failing repetition and is
    returned as a :class:`SiteFailure` record instead of propagating —
    the caller decides between fail-fast (wrap it in a
    :class:`CampaignWorkerError`) and partial-results mode, and a plain
    record crosses process boundaries where an exception chain may not
    pickle.
    """
    with span("eval.site", site=site_idx):
        errors: list[float] = []
        for rep in range(repetitions):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, site_idx, rep])
            )
            try:
                errors.append(float(localizer.localization_error(site, rng)))
            except Exception as exc:  # noqa: BLE001 - reported, not dropped
                failure = SiteFailure(
                    site_idx,
                    site,
                    rep,
                    seed,
                    f"{type(exc).__name__}: {exc}",
                )
                return errors, failure
    return errors, None


def _site_task(payload) -> tuple[list[float], SiteFailure | None, list[dict]]:
    """Worker-process entry point: one site's outcome plus its spans.

    The worker traces into its own private tracer (when the parent was
    tracing) and ships the finished spans back as ``to_dict`` records for
    the parent to :meth:`~repro.obs.Tracer.adopt` — worker span ids are
    process-local and meaningless to the parent.
    """
    localizer, site_idx, site, repetitions, seed, traced = payload
    if not traced:
        errors, failure = _site_errors(
            localizer, site_idx, site, repetitions, seed
        )
        return errors, failure, []
    with capture() as tracer:
        errors, failure = _site_errors(
            localizer, site_idx, site, repetitions, seed
        )
    return errors, failure, [s.to_dict() for s in tracer.finished()]


def _run_sites_parallel(
    localizer: Localizer,
    sites: Sequence[Point],
    repetitions: int,
    seed: int,
    workers: int,
    campaign_span,
) -> list[tuple[Point, list[float], SiteFailure | None]]:
    """Fan sites out over a process pool; merge results in site order.

    Uses the ``fork`` start method where available (cheap, inherits the
    parent's imports) and falls back to the platform default elsewhere —
    either way ``localizer`` must be picklable.  Each worker's span batch
    is adopted separately: worker tracers all number spans from 1, so
    mixing two batches in one adopt call would cross their parent links.

    Sites are submitted individually (not ``pool.map``) so one failing
    site never cancels the healthy remainder — every site's outcome,
    failure record included, comes back for the caller to rule on.
    """
    traced = is_enabled()
    payloads = [
        (localizer, site_idx, site, repetitions, seed, traced)
        for site_idx, site in enumerate(sites)
    ]
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        mp_context = None
    with ProcessPoolExecutor(
        max_workers=min(workers, len(sites)), mp_context=mp_context
    ) as pool:
        futures = [pool.submit(_site_task, p) for p in payloads]
        outcomes = [f.result() for f in futures]
    tracer = get_tracer()
    parent_id = getattr(campaign_span, "span_id", None)
    merged = []
    for site, (errors, failure, records) in zip(sites, outcomes):
        if tracer is not None and records:
            tracer.adopt(records, parent_id=parent_id)
        merged.append((site, errors, failure))
    return merged


def run_campaign(
    localizer: Localizer,
    sites: Sequence[Point],
    repetitions: int = 3,
    seed: int = 0,
    name: str = "campaign",
    workers: int | None = None,
    partial_results: bool = False,
) -> CampaignResult:
    """Measure ``localizer`` over every site, ``repetitions`` times each.

    Randomness is derived deterministically from ``seed`` per (site,
    repetition), so campaigns are reproducible and two localizers run with
    the same seed see identically seeded queries.

    ``workers`` (``None``/``0`` = sequential) distributes whole sites
    over a process pool.  Sites are mutually independent and each query's
    RNG is keyed only by ``(seed, site, repetition)``, so the parallel
    result is bit-identical to the sequential one for any worker count;
    ``localizer`` must be picklable.  Worker-side spans are merged back
    into the parent tracer under the campaign span.

    A query exception normally aborts the campaign with a
    :class:`CampaignWorkerError` naming the failing ``(site,
    repetition)`` pair and seed.  With ``partial_results=True`` the
    failing site is dropped to :attr:`CampaignResult.failed_sites`
    instead and every healthy site is still measured — the mode for
    long overnight sweeps where one poisoned site must not cost the
    other hundred.

    Raises
    ------
    CampaignWorkerError
        On the first failing query, unless ``partial_results`` is set.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if not sites:
        raise ValueError("need at least one test site")
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    with span(
        "eval.campaign",
        campaign=name,
        sites=len(sites),
        repetitions=repetitions,
        workers=workers or 0,
    ) as sp:
        if workers:
            outcomes = _run_sites_parallel(
                localizer, sites, repetitions, seed, workers, sp
            )
            sp.incr("queries", repetitions * len(sites))
        else:
            outcomes = []
            for site_idx, site in enumerate(sites):
                errors, failure = _site_errors(
                    localizer, site_idx, site, repetitions, seed
                )
                sp.incr("queries", len(errors) + (1 if failure else 0))
                outcomes.append((site, errors, failure))
                if failure is not None and not partial_results:
                    break  # fail fast; no point measuring the rest
        results = []
        failures = []
        for site, errors, failure in outcomes:
            if failure is None:
                results.append(SiteResult(site, tuple(errors)))
                continue
            if not partial_results:
                raise CampaignWorkerError(
                    failure.site_index,
                    failure.site,
                    failure.repetition,
                    failure.seed,
                    failure.error,
                )
            failures.append(failure)
        if failures:
            sp.incr("failed_sites", len(failures))
        return CampaignResult(name, tuple(results), tuple(failures))


def run_campaign_via_service(
    service,
    gather: Callable[[Point, np.random.Generator], Sequence],
    sites: Sequence[Point],
    repetitions: int = 3,
    seed: int = 0,
    name: str = "campaign",
) -> CampaignResult:
    """Run a campaign through a serving backend (service or cluster).

    ``service`` is anything exposing ``batch(anchor_sets) -> responses``
    whose responses answer ``error_to(truth)`` — a
    :class:`~repro.serving.LocalizationService` or a whole
    :class:`~repro.cluster.LocalizationCluster`.  Measurement stays
    client-side (``gather(site, rng) -> anchors``, e.g.
    :meth:`repro.core.NomLocSystem.gather_anchors`) while every solve is
    batched through the backend — the deployment split of a real NomLoc
    deployment.  Per-(site, repetition) randomness matches
    :func:`run_campaign` exactly, so a backend wrapping the same
    localizer config reproduces the direct campaign's errors
    bit-for-bit (modulo flagged degraded answers).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if not sites:
        raise ValueError("need at least one test site")
    queries: list[tuple[int, Point]] = []
    anchor_sets = []
    with span(
        "eval.campaign",
        campaign=name,
        sites=len(sites),
        repetitions=repetitions,
    ):
        with span("eval.measure", queries=len(sites) * repetitions):
            for site_idx, site in enumerate(sites):
                for rep in range(repetitions):
                    rng = np.random.default_rng(
                        np.random.SeedSequence([seed, site_idx, rep])
                    )
                    queries.append((site_idx, site))
                    anchor_sets.append(tuple(gather(site, rng)))
        responses = service.batch(anchor_sets)
    per_site_errors: dict[int, list[float]] = {i: [] for i in range(len(sites))}
    for (site_idx, site), response in zip(queries, responses):
        per_site_errors[site_idx].append(float(response.error_to(site)))
    results = [
        SiteResult(site, tuple(per_site_errors[site_idx]))
        for site_idx, site in enumerate(sites)
    ]
    return CampaignResult(name, tuple(results))
