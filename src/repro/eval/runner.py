"""Campaign runner: per-site mean errors for any localizer.

The paper's metrics are computed from the *mean error per test site*
(Eq. 22 and the "CDF of the mean error across distinct sites"), so a
campaign runs each localizer ``repetitions`` times per site with
independent randomness and averages.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from ..geometry import Point
from ..obs import capture, get_tracer, is_enabled, span
from .metrics import ErrorCDF, ErrorStats

__all__ = [
    "Localizer",
    "SiteResult",
    "CampaignResult",
    "run_campaign",
    "run_campaign_via_service",
]


class Localizer(Protocol):
    """Anything that can report a localization error for a query."""

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float: ...


@dataclass(frozen=True)
class SiteResult:
    """Errors collected at one test site."""

    site: Point
    errors: tuple[float, ...]

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.errors))


@dataclass(frozen=True)
class CampaignResult:
    """All per-site results of one campaign."""

    name: str
    sites: tuple[SiteResult, ...]

    def per_site_means(self) -> list[float]:
        """Mean error per site, in site order."""
        return [s.mean_error for s in self.sites]

    @property
    def stats(self) -> ErrorStats:
        """Summary over per-site mean errors (the paper's granularity)."""
        return ErrorStats.from_errors(self.per_site_means())

    @property
    def cdf(self) -> ErrorCDF:
        """CDF of per-site mean errors (Fig. 9 / Fig. 10 curves)."""
        return ErrorCDF.from_errors(self.per_site_means())


def _site_errors(
    localizer: Localizer,
    site_idx: int,
    site: Point,
    repetitions: int,
    seed: int,
) -> list[float]:
    """One site's error vector, under an ``eval.site`` span.

    Randomness is derived from ``SeedSequence([seed, site_idx, rep])``
    alone — never from process or thread identity — which is what makes
    the parallel campaign path bit-identical to the sequential one.
    """
    with span("eval.site", site=site_idx):
        errors = []
        for rep in range(repetitions):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, site_idx, rep])
            )
            errors.append(float(localizer.localization_error(site, rng)))
    return errors


def _site_task(payload) -> tuple[list[float], list[dict]]:
    """Worker-process entry point: one site's errors plus its spans.

    The worker traces into its own private tracer (when the parent was
    tracing) and ships the finished spans back as ``to_dict`` records for
    the parent to :meth:`~repro.obs.Tracer.adopt` — worker span ids are
    process-local and meaningless to the parent.
    """
    localizer, site_idx, site, repetitions, seed, traced = payload
    if not traced:
        return _site_errors(localizer, site_idx, site, repetitions, seed), []
    with capture() as tracer:
        errors = _site_errors(localizer, site_idx, site, repetitions, seed)
    return errors, [s.to_dict() for s in tracer.finished()]


def _run_sites_parallel(
    localizer: Localizer,
    sites: Sequence[Point],
    repetitions: int,
    seed: int,
    workers: int,
    campaign_span,
) -> list[SiteResult]:
    """Fan sites out over a process pool; merge results in site order.

    Uses the ``fork`` start method where available (cheap, inherits the
    parent's imports) and falls back to the platform default elsewhere —
    either way ``localizer`` must be picklable.  Each worker's span batch
    is adopted separately: worker tracers all number spans from 1, so
    mixing two batches in one adopt call would cross their parent links.
    """
    traced = is_enabled()
    payloads = [
        (localizer, site_idx, site, repetitions, seed, traced)
        for site_idx, site in enumerate(sites)
    ]
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        mp_context = None
    with ProcessPoolExecutor(
        max_workers=min(workers, len(sites)), mp_context=mp_context
    ) as pool:
        outcomes = list(pool.map(_site_task, payloads))
    tracer = get_tracer()
    parent_id = getattr(campaign_span, "span_id", None)
    results = []
    for site, (errors, records) in zip(sites, outcomes):
        if tracer is not None and records:
            tracer.adopt(records, parent_id=parent_id)
        results.append(SiteResult(site, tuple(errors)))
    return results


def run_campaign(
    localizer: Localizer,
    sites: Sequence[Point],
    repetitions: int = 3,
    seed: int = 0,
    name: str = "campaign",
    workers: int | None = None,
) -> CampaignResult:
    """Measure ``localizer`` over every site, ``repetitions`` times each.

    Randomness is derived deterministically from ``seed`` per (site,
    repetition), so campaigns are reproducible and two localizers run with
    the same seed see identically seeded queries.

    ``workers`` (``None``/``0`` = sequential) distributes whole sites
    over a process pool.  Sites are mutually independent and each query's
    RNG is keyed only by ``(seed, site, repetition)``, so the parallel
    result is bit-identical to the sequential one for any worker count;
    ``localizer`` must be picklable.  Worker-side spans are merged back
    into the parent tracer under the campaign span.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if not sites:
        raise ValueError("need at least one test site")
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    with span(
        "eval.campaign",
        campaign=name,
        sites=len(sites),
        repetitions=repetitions,
        workers=workers or 0,
    ) as sp:
        if workers:
            results = _run_sites_parallel(
                localizer, sites, repetitions, seed, workers, sp
            )
            sp.incr("queries", repetitions * len(sites))
        else:
            results = []
            for site_idx, site in enumerate(sites):
                errors = _site_errors(
                    localizer, site_idx, site, repetitions, seed
                )
                results.append(SiteResult(site, tuple(errors)))
                sp.incr("queries", repetitions)
        return CampaignResult(name, tuple(results))


def run_campaign_via_service(
    service,
    gather: Callable[[Point, np.random.Generator], Sequence],
    sites: Sequence[Point],
    repetitions: int = 3,
    seed: int = 0,
    name: str = "campaign",
) -> CampaignResult:
    """Run a campaign through a serving backend (service or cluster).

    ``service`` is anything exposing ``batch(anchor_sets) -> responses``
    whose responses answer ``error_to(truth)`` — a
    :class:`~repro.serving.LocalizationService` or a whole
    :class:`~repro.cluster.LocalizationCluster`.  Measurement stays
    client-side (``gather(site, rng) -> anchors``, e.g.
    :meth:`repro.core.NomLocSystem.gather_anchors`) while every solve is
    batched through the backend — the deployment split of a real NomLoc
    deployment.  Per-(site, repetition) randomness matches
    :func:`run_campaign` exactly, so a backend wrapping the same
    localizer config reproduces the direct campaign's errors
    bit-for-bit (modulo flagged degraded answers).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if not sites:
        raise ValueError("need at least one test site")
    queries: list[tuple[int, Point]] = []
    anchor_sets = []
    with span(
        "eval.campaign",
        campaign=name,
        sites=len(sites),
        repetitions=repetitions,
    ):
        with span("eval.measure", queries=len(sites) * repetitions):
            for site_idx, site in enumerate(sites):
                for rep in range(repetitions):
                    rng = np.random.default_rng(
                        np.random.SeedSequence([seed, site_idx, rep])
                    )
                    queries.append((site_idx, site))
                    anchor_sets.append(tuple(gather(site, rng)))
        responses = service.batch(anchor_sets)
    per_site_errors: dict[int, list[float]] = {i: [] for i in range(len(sites))}
    for (site_idx, site), response in zip(queries, responses):
        per_site_errors[site_idx].append(float(response.error_to(site)))
    results = [
        SiteResult(site, tuple(per_site_errors[site_idx]))
        for site_idx, site in enumerate(sites)
    ]
    return CampaignResult(name, tuple(results))
