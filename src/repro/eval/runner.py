"""Campaign runner: per-site mean errors for any localizer.

The paper's metrics are computed from the *mean error per test site*
(Eq. 22 and the "CDF of the mean error across distinct sites"), so a
campaign runs each localizer ``repetitions`` times per site with
independent randomness and averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..geometry import Point
from .metrics import ErrorCDF, ErrorStats

__all__ = ["Localizer", "SiteResult", "CampaignResult", "run_campaign"]


class Localizer(Protocol):
    """Anything that can report a localization error for a query."""

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float: ...


@dataclass(frozen=True)
class SiteResult:
    """Errors collected at one test site."""

    site: Point
    errors: tuple[float, ...]

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.errors))


@dataclass(frozen=True)
class CampaignResult:
    """All per-site results of one campaign."""

    name: str
    sites: tuple[SiteResult, ...]

    def per_site_means(self) -> list[float]:
        """Mean error per site, in site order."""
        return [s.mean_error for s in self.sites]

    @property
    def stats(self) -> ErrorStats:
        """Summary over per-site mean errors (the paper's granularity)."""
        return ErrorStats.from_errors(self.per_site_means())

    @property
    def cdf(self) -> ErrorCDF:
        """CDF of per-site mean errors (Fig. 9 / Fig. 10 curves)."""
        return ErrorCDF.from_errors(self.per_site_means())


def run_campaign(
    localizer: Localizer,
    sites: Sequence[Point],
    repetitions: int = 3,
    seed: int = 0,
    name: str = "campaign",
) -> CampaignResult:
    """Measure ``localizer`` over every site, ``repetitions`` times each.

    Randomness is derived deterministically from ``seed`` per (site,
    repetition), so campaigns are reproducible and two localizers run with
    the same seed see identically seeded queries.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    if not sites:
        raise ValueError("need at least one test site")
    results = []
    for site_idx, site in enumerate(sites):
        errors = []
        for rep in range(repetitions):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, site_idx, rep])
            )
            errors.append(float(localizer.localization_error(site, rng)))
        results.append(SiteResult(site, tuple(errors)))
    return CampaignResult(name, tuple(results))
