"""Statistical inference over campaign results.

"Nomadic beats static" claims deserve uncertainty estimates: this module
provides bootstrap confidence intervals and an exact paired sign test
(both from scratch) plus a one-call comparison of two campaigns run on
the same sites with the same seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .runner import CampaignResult

__all__ = ["bootstrap_ci", "paired_sign_test", "ComparisonResult", "compare_campaigns"]


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Parameters
    ----------
    values:
        The sample (e.g. per-site mean errors).
    statistic:
        Function of a 1-D array (mean by default).
    confidence:
        Interval mass, e.g. 0.95.
    """
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        raise ValueError("need at least two values to bootstrap")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("need at least 10 resamples")
    rng = np.random.default_rng(seed)
    stats = np.empty(n_resamples)
    n = data.size
    for k in range(n_resamples):
        stats[k] = float(statistic(data[rng.integers(0, n, n)]))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def paired_sign_test(
    a: Sequence[float], b: Sequence[float], tie_tolerance: float = 1e-9
) -> float:
    """Exact two-sided sign test on paired samples.

    Tests the null "P(a_i < b_i) = 1/2" by the binomial distribution of
    the sign of the differences (ties dropped).  Returns the two-sided
    p-value.  Small-sample exact — no normal approximation.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    diffs = a - b
    signs = diffs[np.abs(diffs) > tie_tolerance]
    n = signs.size
    if n == 0:
        return 1.0
    wins = int(np.sum(signs < 0))  # a smaller than b
    # Two-sided exact binomial tail around n/2.
    k = min(wins, n - wins)
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2.0**n
    return float(min(1.0, 2.0 * tail))


@dataclass(frozen=True)
class ComparisonResult:
    """Paired comparison of two campaigns over the same sites.

    Attributes
    ----------
    mean_difference:
        ``mean(a) - mean(b)`` of per-site mean errors (negative = a
        better).
    ci_low, ci_high:
        Bootstrap CI of the mean difference.
    p_value:
        Two-sided exact sign-test p-value.
    a_better_sites, b_better_sites:
        Site counts each system won.
    """

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float
    a_better_sites: int
    b_better_sites: int

    @property
    def significant(self) -> bool:
        """True at the conventional 0.05 level."""
        return self.p_value < 0.05


def compare_campaigns(
    a: CampaignResult,
    b: CampaignResult,
    confidence: float = 0.95,
    seed: int = 0,
) -> ComparisonResult:
    """Statistically compare two campaigns run over identical sites.

    Both campaigns must have been produced by
    :func:`~repro.eval.runner.run_campaign` with the same site list (and
    ideally the same seed, so queries are paired by randomness too).
    """
    if len(a.sites) != len(b.sites):
        raise ValueError("campaigns cover different numbers of sites")
    for sa, sb in zip(a.sites, b.sites):
        if sa.site != sb.site:
            raise ValueError("campaigns cover different sites")
    ea = np.asarray(a.per_site_means())
    eb = np.asarray(b.per_site_means())
    diffs = ea - eb
    lo, hi = bootstrap_ci(diffs, np.mean, confidence, seed=seed)
    return ComparisonResult(
        mean_difference=float(diffs.mean()),
        ci_low=lo,
        ci_high=hi,
        p_value=paired_sign_test(ea, eb),
        a_better_sites=int(np.sum(diffs < 0)),
        b_better_sites=int(np.sum(diffs > 0)),
    )
