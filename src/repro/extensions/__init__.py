"""Paper future-work extensions: multi-nomadic aggregation, pattern study."""

from .multi_nomadic import (
    LOBBY_UPGRADES,
    lobby_with_nomadic_count,
    upgrade_to_nomadic,
)
from .pattern_study import PatternBoundLocalizer

__all__ = [
    "upgrade_to_nomadic",
    "lobby_with_nomadic_count",
    "LOBBY_UPGRADES",
    "PatternBoundLocalizer",
]
