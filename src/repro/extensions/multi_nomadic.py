"""Multiple nomadic APs (paper future work, Sec. VI).

"An potential direction for future work is effectively aggregating
multiple nomadic APs."  This module upgrades static APs of an existing
scenario into nomadic ones with their own site sets; the SP localizer
aggregates all of their measurement sites without modification, since
every site is just another anchor.
"""

from __future__ import annotations

from dataclasses import replace

from ..environment import APSpec, Scenario
from ..geometry import Point

__all__ = ["upgrade_to_nomadic", "lobby_with_nomadic_count", "LOBBY_UPGRADES"]

#: Site sets used when upgrading the Lobby's static APs (obstacle-free,
#: spread along each AP's arm of the L).
LOBBY_UPGRADES: dict[str, tuple[Point, ...]] = {
    "AP2": (Point(23.5, 1.5), Point(20.0, 5.0), Point(15.0, 8.5)),
    "AP3": (Point(23.0, 8.5), Point(18.5, 2.5), Point(13.5, 5.5)),
}


def upgrade_to_nomadic(
    scenario: Scenario, upgrades: dict[str, tuple[Point, ...]]
) -> Scenario:
    """Convert the named static APs of ``scenario`` into nomadic ones.

    Each value in ``upgrades`` is the AP's new site set (its current
    position should be the first entry so the walk starts at home).
    Already-nomadic APs cannot be re-upgraded.
    """
    ap_names = {ap.name for ap in scenario.aps}
    for name in upgrades:
        if name not in ap_names:
            raise ValueError(f"scenario has no AP named {name!r}")
    aps = []
    for ap in scenario.aps:
        if ap.name in upgrades:
            if ap.nomadic:
                raise ValueError(f"{ap.name} is already nomadic")
            aps.append(
                APSpec(ap.name, ap.position, nomadic=True, sites=upgrades[ap.name])
            )
        else:
            aps.append(ap)
    return replace(scenario, aps=tuple(aps))


def lobby_with_nomadic_count(scenario: Scenario, count: int) -> Scenario:
    """Lobby variant with ``count`` nomadic APs (1 = the paper's setup).

    ``scenario`` must be the Lobby (or a compatible deployment with AP1
    nomadic and static AP2/AP3 to upgrade).
    """
    if not 1 <= count <= 1 + len(LOBBY_UPGRADES):
        raise ValueError(
            f"count must be in [1, {1 + len(LOBBY_UPGRADES)}]"
        )
    already = len(scenario.nomadic_aps)
    if already != 1:
        raise ValueError("expected exactly one nomadic AP in the base scenario")
    if count == 1:
        return scenario
    names = list(LOBBY_UPGRADES)[: count - 1]
    return upgrade_to_nomadic(
        scenario, {n: LOBBY_UPGRADES[n] for n in names}
    )
