"""Mobility-pattern impact study (paper future work, Sec. VI).

"Another extension ... would be to understand the impact of moving
patterns of nomadic APs on the overall performance."  The adapter here
binds a :class:`~repro.mobility.MobilityPattern` into the campaign
runner's localizer protocol so any pattern can be swept.
"""

from __future__ import annotations

import numpy as np

from ..core import NomLocSystem
from ..geometry import Point
from ..mobility import MobilityPattern

__all__ = ["PatternBoundLocalizer"]


class PatternBoundLocalizer:
    """A NomLoc system whose nomadic AP follows a fixed movement pattern.

    ``pattern = None`` keeps the paper's default Markov walk.
    """

    def __init__(
        self, system: NomLocSystem, pattern: MobilityPattern | None = None
    ) -> None:
        self.system = system
        self.pattern = pattern

    def locate(self, object_position: Point, rng: np.random.Generator):
        """One localization query under the bound pattern."""
        return self.system.locate(object_position, rng, self.pattern)

    def localization_error(
        self, object_position: Point, rng: np.random.Generator
    ) -> float:
        """Euclidean error of one query."""
        return self.system.localization_error(
            object_position, rng, self.pattern
        )
