"""`repro.gateway`: the asyncio network edge with a durable ledger.

The serving stack's front door — the first layer anything outside the
Python process can talk to.  Components:

* :mod:`~repro.gateway.protocol` — the small versioned JSON wire
  protocol (submit measurement batches, request estimates, stream
  position updates, fetch metrics);
* :mod:`~repro.gateway.store` — the write-ahead durable
  :class:`MeasurementLedger` (stdlib sqlite3, WAL + fsync): acked means
  committed, and a killed gateway replays its unanswered backlog on
  restart;
* :mod:`~repro.gateway.bridge` — the bounded thread offload between the
  event loop and the synchronous cluster/serving solver;
* :mod:`~repro.gateway.server` — :class:`GatewayServer`, the asyncio
  HTTP + WebSocket server with end-to-end graceful shutdown;
* :mod:`~repro.gateway.client` — keep-alive clients (async + sync);
* :mod:`~repro.gateway.loadgen` — the load-generator harness behind
  ``benchmarks/bench_gateway.py``.

Answers served over the socket are **bit-identical** to calling
:class:`repro.serving.LocalizationService` in-process on the same
anchors: the protocol round-trips every float exactly, and the gateway
adds transport, never computation.
"""

from .bridge import SolverBridge
from .client import AsyncGatewayClient, GatewayClient, GatewayError
from .loadgen import LoadGenConfig, LoadReport, run_loadgen, run_loadgen_sync
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import GatewayConfig, GatewayServer
from .store import SCHEMA_VERSION, LedgerError, MeasurementLedger

__all__ = [
    "AsyncGatewayClient",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayServer",
    "LedgerError",
    "LoadGenConfig",
    "LoadReport",
    "MeasurementLedger",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SCHEMA_VERSION",
    "SolverBridge",
    "run_loadgen",
    "run_loadgen_sync",
]
