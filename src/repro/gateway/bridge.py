"""The async/sync boundary: bounded thread offload into the solver.

The gateway's event loop must never block on an LP — the solver
(:class:`repro.cluster.LocalizationCluster` /
:class:`repro.serving.LocalizationService`) is synchronous and
CPU-bound, so every solve hops onto a small thread pool via
``loop.run_in_executor``.  Two bounds keep the loop healthy:

* the executor's worker count caps solver concurrency (more would just
  thrash the GIL — see ``BENCH_serving_throughput.json``);
* an :class:`asyncio.Semaphore` caps *admitted-but-unsolved* requests,
  so a flood of connections backs up in the kernel's accept queue
  instead of ballooning the process heap (the async sibling of the
  serving layer's :class:`~repro.serving.queueing.AdmissionQueue`).

Observability crosses the boundary the same way the cluster's hedged
attempts do: the solve runs under a ``gateway.solve`` span on the pool
thread (where the solver's own spans nest naturally), the async side
records a ``gateway.request`` span with the request's full wall time,
and the solve's root span is re-parented under it
(:meth:`repro.obs.Tracer.reparent`) — one tree per request, across the
async/sync seam.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from ..obs import get_tracer, span
from ..serving import LocalizationRequest

__all__ = ["SolverBridge"]


class SolverBridge:
    """Bounded executor bridge from coroutines into a sync solver.

    Parameters
    ----------
    target:
        Anything with a ``locate_request(LocalizationRequest)`` method —
        a cluster or a bare service.
    max_workers:
        Solver threads (also the executor size for ledger writes routed
        through :meth:`run`).
    max_inflight:
        Admission bound: at most this many requests may be past the
        semaphore at once; further submitters await their turn.
    """

    def __init__(self, target, max_workers: int = 2, max_inflight: int = 64):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.target = target
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-gateway-solve"
        )
        self._sema = asyncio.Semaphore(max_inflight)
        self._inflight = 0
        self._closed = False

    @property
    def inflight(self) -> int:
        """Requests currently admitted past the semaphore."""
        return self._inflight

    def _solve_sync(self, request: LocalizationRequest):
        """Pool-thread body: the solve, under its boundary span."""
        sp = span(
            "gateway.solve",
            query_id=request.query_id,
            anchors=len(request.anchors),
        )
        span_id = getattr(sp, "span_id", None)
        with sp:
            response = self.target.locate_request(request)
        return response, span_id

    async def locate(self, request: LocalizationRequest):
        """Solve one request off-loop; returns the solver's response.

        Backpressure point: awaits the admission semaphore first.  The
        caller's cancellation is honoured while waiting; once admitted
        the solve itself runs to completion on its thread.
        """
        if self._closed:
            raise RuntimeError("solver bridge is closed")
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        async with self._sema:
            self._inflight += 1
            try:
                response, solve_span_id = await loop.run_in_executor(
                    self._pool, self._solve_sync, request
                )
            finally:
                self._inflight -= 1
        self._record_request_span(
            request, started, time.perf_counter() - started, solve_span_id
        )
        return response

    async def run(self, fn, *args):
        """Run any blocking callable (ledger writes) on the pool."""
        if self._closed:
            raise RuntimeError("solver bridge is closed")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn, *args)

    def _record_request_span(
        self, request, started: float, duration: float, solve_span_id
    ) -> None:
        """Record the request-level span and adopt the solve under it.

        The event-loop thread can't hold a ``with span(...)`` open across
        awaits without mis-nesting concurrent requests' spans, so the
        request span is recorded after the fact with its measured wall
        time, then the solve tree is re-homed under it.
        """
        tracer = get_tracer()
        if tracer is None:
            return
        sp = tracer.start(
            "gateway.request",
            query_id=request.query_id,
            anchors=len(request.anchors),
        )
        with sp:
            pass
        sp.start_s = started
        sp.duration_s = duration
        if solve_span_id is not None:
            tracer.reparent([solve_span_id], sp.span_id)

    def shutdown(self) -> None:
        """Stop accepting and join the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
