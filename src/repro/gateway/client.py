"""Gateway clients: a keep-alive asyncio client and a sync facade.

:class:`AsyncGatewayClient` is the canonical implementation — one
persistent HTTP connection per client (the loadgen opens many), plus
separate WebSocket connections for streaming.  :class:`GatewayClient`
wraps it behind blocking calls for the CLI selftest, tests and scripts:
it owns a private event loop so the keep-alive connection survives
between calls.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
from typing import AsyncIterator, Sequence

from ..core import Anchor
from . import protocol
from .http import HttpResponse, read_response, write_request
from .ws import OP_CLOSE, OP_PING, OP_PONG, OP_TEXT, encode_frame, read_frame

__all__ = ["AsyncGatewayClient", "GatewayClient", "GatewayError"]

_ws_key_counter = itertools.count(1)


class GatewayError(RuntimeError):
    """A non-2xx or malformed reply from the gateway.

    ``status`` is the HTTP status code (0 for transport-level trouble);
    ``payload`` the parsed error body when there was one.
    """

    def __init__(self, status: int, payload=None) -> None:
        super().__init__(f"gateway error {status}: {payload!r}")
        self.status = status
        self.payload = payload


def _anchors_payload(anchors: Sequence[Anchor]) -> list[dict]:
    return [protocol.anchor_to_dict(a) for a in anchors]


class AsyncGatewayClient:
    """One persistent connection to a gateway (asyncio)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncGatewayClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform noise
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncGatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _call(
        self, method: str, path: str, payload: dict | None = None
    ) -> HttpResponse:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        await write_request(self._writer, method, path, payload)
        return await read_response(self._reader)

    async def request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        """One request; raises :class:`GatewayError` on non-2xx."""
        response = await self._call(method, path, payload)
        body = response.json()
        if not 200 <= response.status < 300:
            raise GatewayError(response.status, body)
        return body

    # -- protocol calls -------------------------------------------------
    async def healthz(self) -> dict:
        return await self.request_json("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request_json("GET", "/metrics")

    async def locate(
        self,
        anchors: Sequence[Anchor],
        query_id: str = "",
        timeout_s: float | None = None,
    ) -> dict:
        """Ephemeral query; returns the wire estimate dict."""
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "query_id": query_id,
            "anchors": _anchors_payload(anchors),
        }
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return await self.request_json("POST", "/v1/locate", payload)

    async def submit_batch(
        self,
        batch_id: str,
        anchors: Sequence[Anchor],
        object_id: str = "",
        wait: bool = False,
        gate=None,
    ) -> dict:
        """Durable ingest; the returned ack is backed by an fsynced row."""
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "batch_id": batch_id,
            "object_id": object_id,
            "anchors": _anchors_payload(anchors),
            "wait": wait,
        }
        if gate is not None:
            payload["gate"] = gate.to_dict()
        return await self.request_json("POST", "/v1/measurements", payload)

    async def get_estimate(self, batch_id: str) -> dict:
        return await self.request_json("GET", f"/v1/estimates/{batch_id}")

    # -- streaming ------------------------------------------------------
    async def stream(
        self, object_id: str, resume_from: int | None = None
    ) -> AsyncIterator[dict]:
        """Subscribe to one object's position pushes (fresh connection).

        Yields every event after the ``subscribed`` confirmation; exits
        when the server closes the stream.  ``resume_from`` is the last
        ``stream_seq`` this client saw on a previous connection: the
        server first replays every buffered frame after it (no dupes,
        no gaps while the replay ring covers the position), then
        continues live.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            key = f"repro-gateway-{next(_ws_key_counter):016d}"
            encoded = base64.b64encode(key.encode()).decode()
            writer.write(
                (
                    f"GET /v1/stream HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {encoded}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            raw = await reader.readuntil(b"\r\n\r\n")
            if b" 101 " not in raw.split(b"\r\n", 1)[0]:
                raise GatewayError(0, f"websocket upgrade refused: {raw[:120]!r}")
            subscribe = {
                "v": protocol.PROTOCOL_VERSION,
                "type": "subscribe",
                "object_id": object_id,
            }
            if resume_from is not None:
                subscribe["resume_from"] = resume_from
            writer.write(
                encode_frame(
                    OP_TEXT, protocol.dumps(subscribe).encode(), mask=True
                )
            )
            await writer.drain()
            while True:
                try:
                    opcode, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if opcode == OP_CLOSE:
                    return
                if opcode == OP_PING:  # heartbeat: pong proves liveness
                    writer.write(encode_frame(OP_PONG, payload, mask=True))
                    await writer.drain()
                    continue
                if opcode == OP_TEXT:
                    event = protocol.loads(payload)
                    if event.get("type") == "subscribed":
                        continue  # the handshake ack, not a position
                    yield event
        finally:
            writer.close()


class GatewayClient:
    """Blocking facade over :class:`AsyncGatewayClient`.

    Owns a private event loop so the keep-alive connection persists
    across calls; safe for single-threaded callers (CLI, tests).
    """

    def __init__(self, host: str, port: int) -> None:
        self._loop = asyncio.new_event_loop()
        self._client = AsyncGatewayClient(host, port)

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def healthz(self) -> dict:
        return self._run(self._client.healthz())

    def metrics(self) -> dict:
        return self._run(self._client.metrics())

    def locate(self, anchors, query_id: str = "", timeout_s=None) -> dict:
        return self._run(self._client.locate(anchors, query_id, timeout_s))

    def submit_batch(
        self, batch_id, anchors, object_id="", wait=False, gate=None
    ) -> dict:
        return self._run(
            self._client.submit_batch(batch_id, anchors, object_id, wait, gate)
        )

    def get_estimate(self, batch_id: str) -> dict:
        return self._run(self._client.get_estimate(batch_id))

    def stream_events(
        self,
        object_id: str,
        count: int,
        timeout_s: float = 10.0,
        resume_from: int | None = None,
        kinds: tuple = ("position",),
    ):
        """Collect ``count`` events of the given kinds (blocking)."""

        async def collect():
            events = []
            stream = self._client.stream(object_id, resume_from=resume_from)
            try:
                while len(events) < count:
                    event = await asyncio.wait_for(
                        stream.__anext__(), timeout=timeout_s
                    )
                    if event.get("type") in kinds:
                        events.append(event)
            finally:
                await stream.aclose()
            return events

        return self._run(collect())

    def close(self) -> None:
        if not self._loop.is_closed():
            self._run(self._client.close())
            self._loop.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
