"""Minimal HTTP/1.1 wire helpers over asyncio streams (stdlib only).

Just enough HTTP for the gateway's JSON protocol and its clients: a
request/response parser pair for persistent (keep-alive) connections,
body framing by ``Content-Length``, and JSON response shorthand.  No
chunked encoding, no multipart, no TLS — the protocol layer above never
needs them, and every byte format here is covered by the gateway's
socket round-trip tests.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "read_response",
    "write_json_response",
    "write_request",
]

#: Bound on header-section size; a larger preamble is a malformed client.
MAX_HEADER_BYTES = 64 * 1024
#: Bound on body size (measurement batches are a few KB; 8 MB is ample).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Malformed or oversized HTTP traffic on a connection."""


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self):
        """The body parsed as JSON (raises ``ProtocolError`` upstream)."""
        from .protocol import loads

        return loads(self.body)


@dataclass
class HttpResponse:
    """One parsed response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        return json.loads(self.body) if self.body else None


async def _read_headers(reader: asyncio.StreamReader) -> list[str]:
    """Read up to the blank line; returns the preamble's non-empty lines."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise HttpError("connection closed")
        raise HttpError("truncated HTTP preamble")
    except asyncio.LimitOverrunError:
        raise HttpError("HTTP preamble too large")
    if len(raw) > MAX_HEADER_BYTES:
        raise HttpError("HTTP preamble too large")
    return [line for line in raw.decode("latin-1").split("\r\n") if line]


def _parse_header_lines(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = headers.get("content-length")
    if length is None:
        return b""
    try:
        n = int(length)
    except ValueError:
        raise HttpError(f"bad Content-Length {length!r}")
    if n < 0 or n > MAX_BODY_BYTES:
        raise HttpError(f"unacceptable Content-Length {n}")
    if n == 0:
        return b""
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError:
        raise HttpError("connection closed mid-body")


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on clean EOF between requests."""
    if reader.at_eof():
        return None
    try:
        lines = await _read_headers(reader)
    except HttpError as exc:
        if str(exc) == "connection closed":
            return None
        raise
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(f"malformed request line {lines[0]!r}")
    headers = _parse_header_lines(lines[1:])
    body = await _read_body(reader, headers)
    return HttpRequest(parts[0].upper(), parts[1], headers, body)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response off a client connection."""
    lines = await _read_headers(reader)
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(f"malformed status line {lines[0]!r}")
    headers = _parse_header_lines(lines[1:])
    body = await _read_body(reader, headers)
    return HttpResponse(int(parts[1]), headers, body)


def _write_preamble(
    writer: asyncio.StreamWriter, first_line: str, headers: dict[str, str]
) -> None:
    chunks = [first_line, *(f"{k}: {v}" for k, v in headers.items()), "", ""]
    writer.write("\r\n".join(chunks).encode("latin-1"))


async def write_json_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    keep_alive: bool = True,
) -> None:
    """Serialize + send one JSON response (sorted keys, stable order)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    reason = _REASONS.get(status, "Unknown")
    _write_preamble(
        writer,
        f"HTTP/1.1 {status} {reason}",
        {
            "content-type": "application/json",
            "content-length": str(len(body)),
            "connection": "keep-alive" if keep_alive else "close",
        },
    )
    writer.write(body)
    await writer.drain()


async def write_request(
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict[str, str] | None = None,
) -> None:
    """Serialize + send one (optionally JSON-bodied) client request."""
    body = (
        b""
        if payload is None
        else json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    )
    all_headers = {"content-length": str(len(body))}
    if payload is not None:
        all_headers["content-type"] = "application/json"
    if headers:
        all_headers.update(headers)
    _write_preamble(writer, f"{method} {path} HTTP/1.1", all_headers)
    writer.write(body)
    await writer.drain()
