"""Load generator for the gateway: many connections, measured latency.

Drives a running gateway over real sockets the way a device fleet
would: ``connections`` persistent HTTP clients, each submitting either
ephemeral ``/v1/locate`` queries or durable ``/v1/measurements``
batches, in one of two arrival disciplines:

* **closed loop** (``rate_hz = None``) — each connection sends its next
  request the moment the previous answer lands; total offered load
  scales with connection count.  The discipline for "sustained QPS under
  N concurrent connections".
* **open loop** (``rate_hz`` set) — requests are launched on a global
  Poisson-free fixed schedule regardless of completions, the discipline
  that exposes queueing collapse (latency grows without bound once the
  rate exceeds capacity).

The report separates acked work from errors and keeps the acked batch
ids — the durability benchmark kills the gateway mid-run and asserts
every one of them survived into the ledger.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core import Anchor
from ..serving.metrics import percentile
from .client import AsyncGatewayClient, GatewayError
from .http import HttpError

__all__ = ["LoadGenConfig", "LoadReport", "run_loadgen", "run_loadgen_sync"]


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation campaign.

    Attributes
    ----------
    connections:
        Concurrent persistent client connections.
    duration_s:
        Campaign wall-clock budget; connections stop *launching* new
        requests after it elapses (in-flight ones finish).
    mode:
        ``"locate"`` (ephemeral) or ``"measurements"`` (durable ingest).
    rate_hz:
        Open-loop aggregate arrival rate; ``None`` = closed loop.
    wait:
        ``measurements`` only: ask the gateway to answer inline.
    batch_prefix:
        Prefix of generated batch ids (kept unique per request).
    """

    connections: int = 8
    duration_s: float = 3.0
    mode: str = "locate"
    rate_hz: float | None = None
    wait: bool = False
    batch_prefix: str = "loadgen"

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be at least 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.mode not in ("locate", "measurements"):
            raise ValueError(f"unknown loadgen mode {self.mode!r}")
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive or None")


@dataclass
class LoadReport:
    """Outcome of one campaign."""

    completed: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)
    acked_batch_ids: list[str] = field(default_factory=list)
    positions: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        """Latency percentile in seconds (0.0 for an empty campaign)."""
        if not self.latencies_s:
            return 0.0
        return percentile(self.latencies_s, q)

    def summary(self) -> dict:
        """Plain-dict roll-up for benchmarks and CLI output."""
        return {
            "completed": self.completed,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "latency_p50_ms": self.latency_quantile(50.0) * 1e3,
            "latency_p95_ms": self.latency_quantile(95.0) * 1e3,
            "latency_p99_ms": self.latency_quantile(99.0) * 1e3,
            "acked_batches": len(self.acked_batch_ids),
        }


async def run_loadgen(
    host: str,
    port: int,
    anchor_sets: Sequence[Sequence[Anchor]],
    config: LoadGenConfig | None = None,
) -> LoadReport:
    """Run one campaign against a gateway; returns its report.

    ``anchor_sets`` are cycled round-robin across requests, so a small
    pre-generated pool drives an arbitrarily long campaign.
    """
    cfg = config or LoadGenConfig()
    if not anchor_sets:
        raise ValueError("loadgen needs at least one anchor set")
    report = LoadReport()
    lock = asyncio.Lock()
    counter = 0
    deadline = time.perf_counter() + cfg.duration_s
    # Open loop: a global ticket clock; each ticket has a scheduled
    # launch time and any free connection takes the next one.
    interval = (
        None if cfg.rate_hz is None else 1.0 / cfg.rate_hz
    )
    start = time.perf_counter()

    async def next_ticket() -> int | None:
        nonlocal counter
        async with lock:
            now = time.perf_counter()
            if now >= deadline:
                return None
            ticket = counter
            counter += 1
        if interval is not None:
            launch_at = start + ticket * interval
            delay = launch_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            if launch_at >= deadline:
                return None
        return ticket

    async def one_request(client: AsyncGatewayClient, ticket: int) -> None:
        anchors = anchor_sets[ticket % len(anchor_sets)]
        sent = time.perf_counter()
        try:
            if cfg.mode == "locate":
                reply = await client.locate(anchors, query_id=f"q{ticket}")
                key = f"q{ticket}"
            else:
                batch_id = f"{cfg.batch_prefix}-{ticket:08d}"
                reply = await client.submit_batch(
                    batch_id,
                    anchors,
                    object_id=f"obj{ticket % 4}",
                    wait=cfg.wait,
                )
                key = batch_id
        except (
            GatewayError,
            HttpError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            async with lock:
                report.errors += 1
            raise ConnectionError  # reconnect-or-stop signal to the worker
        latency = time.perf_counter() - sent
        async with lock:
            report.completed += 1
            report.latencies_s.append(latency)
            if cfg.mode == "measurements":
                report.acked_batch_ids.append(key)
            position = reply.get("position") or (
                (reply.get("estimate") or {}).get("position")
            )
            if position is not None:
                report.positions[key] = (position["x"], position["y"])

    async def worker() -> None:
        client = AsyncGatewayClient(host, port)
        try:
            await client.connect()
        except ConnectionError:
            async with lock:
                report.errors += 1
            return
        try:
            while True:
                ticket = await next_ticket()
                if ticket is None:
                    return
                try:
                    await one_request(client, ticket)
                except ConnectionError:
                    # Server went away (kill drill) — campaign over for
                    # this connection; acked work is already recorded.
                    return
        finally:
            await client.close()

    await asyncio.gather(*(worker() for _ in range(cfg.connections)))
    report.duration_s = time.perf_counter() - start
    return report


def run_loadgen_sync(
    host: str,
    port: int,
    anchor_sets: Sequence[Sequence[Anchor]],
    config: LoadGenConfig | None = None,
) -> LoadReport:
    """Blocking wrapper around :func:`run_loadgen` (own event loop)."""
    return asyncio.run(run_loadgen(host, port, anchor_sets, config))
