"""The gateway's versioned JSON wire protocol.

Every HTTP body and WebSocket text frame the gateway speaks is one JSON
object from the small vocabulary defined here.  The module owns three
things:

* the **codec** between wire dicts and the serving layer's types —
  anchors (:class:`repro.core.Anchor`), optional guard gate sections
  (:class:`repro.guard.GateResult`), and responses
  (:class:`repro.serving.LocalizationResponse` /
  :class:`repro.cluster.ClusterResponse`).  Floats round-trip through
  JSON bit-exactly (Python serializes the shortest repr that parses
  back to the same double), which is what makes the gateway's
  "answers are bit-identical to calling the service in-process"
  contract checkable over a real socket;
* **validation**: malformed payloads raise :class:`ProtocolError` with
  a machine-readable ``code``, which the HTTP layer maps to a 4xx
  response instead of a traceback;
* the **version gate**: requests may carry ``"v"``; anything other than
  :data:`PROTOCOL_VERSION` (or absence, which means "current") is
  rejected up front so incompatible clients fail loudly.

Message reference (see DESIGN.md §11 for example payloads):

========================  =============================================
``POST /v1/measurements`` ``{"v", "batch_id", "object_id", "anchors",
                          ["gate"], ["wait"]}`` → durable ack
                          (+ estimate when ``wait`` is true)
``POST /v1/locate``       ``{"v", ["query_id"], "anchors", ["gate"]}``
                          → estimate (not persisted)
``GET /v1/estimates/<id>`` stored estimate for one acked batch
``GET /metrics``          gateway + cluster counters, JSON-safe
``GET /healthz``          liveness + protocol version
``GET /v1/stream`` (WS)   ``{"type": "subscribe", "object_id"}`` then
                          server-pushed ``{"type": "position", ...}``
========================  =============================================
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from ..core import Anchor
from ..geometry import Point, Polygon
from ..serving import LocalizationRequest

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "anchor_to_dict",
    "anchor_from_dict",
    "anchors_from_wire",
    "decode_locate",
    "decode_measurement_batch",
    "dumps",
    "loads",
    "position_event",
    "response_to_dict",
    "session_event",
    "track_event",
]

#: Current wire protocol version; bumped on any incompatible change.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or incompatible protocol payload.

    ``code`` is a stable machine-readable slug (``"bad-json"``,
    ``"bad-version"``, ``"bad-anchor"``, ``"missing-field"``, ...);
    ``str()`` is the human-readable detail.
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code


def dumps(payload: Mapping) -> str:
    """Serialize one protocol message (compact separators, sorted keys)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def loads(raw: str | bytes) -> dict:
    """Parse one protocol message; must be a JSON object."""
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", f"payload is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ProtocolError("bad-json", "payload must be a JSON object")
    return payload


def check_version(payload: Mapping) -> None:
    """Reject payloads from an incompatible protocol version."""
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "bad-version",
            f"protocol version {version!r} unsupported "
            f"(this gateway speaks v{PROTOCOL_VERSION})",
        )


# ----------------------------------------------------------------------
# Anchors
# ----------------------------------------------------------------------

def anchor_to_dict(anchor: Anchor) -> dict:
    """One anchor as its wire dict (floats round-trip bit-exactly)."""
    return {
        "name": anchor.name,
        "x": anchor.position.x,
        "y": anchor.position.y,
        "pdp": anchor.pdp,
        "nomadic": anchor.nomadic,
    }


def anchor_from_dict(record: Mapping) -> Anchor:
    """Rebuild one anchor from its wire dict, validating as we go."""
    if not isinstance(record, Mapping):
        raise ProtocolError("bad-anchor", "each anchor must be an object")
    try:
        name = record["name"]
        x = float(record["x"])
        y = float(record["y"])
        pdp = float(record["pdp"])
    except KeyError as exc:
        raise ProtocolError(
            "bad-anchor", f"anchor is missing required field {exc.args[0]!r}"
        )
    except (TypeError, ValueError):
        raise ProtocolError(
            "bad-anchor", "anchor coordinates and pdp must be numbers"
        )
    if not isinstance(name, str) or not name:
        raise ProtocolError("bad-anchor", "anchor name must be a non-empty string")
    try:
        return Anchor(
            name=name,
            position=Point(x, y),
            pdp=pdp,
            nomadic=bool(record.get("nomadic", False)),
        )
    except ValueError as exc:  # e.g. non-positive PDP
        raise ProtocolError("bad-anchor", str(exc))


def anchors_from_wire(payload: Mapping) -> tuple[Anchor, ...]:
    """The validated anchor tuple of one request payload."""
    anchors = payload.get("anchors")
    if not isinstance(anchors, Sequence) or isinstance(anchors, (str, bytes)):
        raise ProtocolError(
            "missing-field", "request needs an 'anchors' array"
        )
    if not anchors:
        raise ProtocolError("bad-anchor", "request needs at least one anchor")
    return tuple(anchor_from_dict(a) for a in anchors)


def _gate_from_wire(payload: Mapping):
    """Optional guard gate section → GateResult (None when absent)."""
    record = payload.get("gate")
    if record is None:
        return None
    if not isinstance(record, Mapping):
        raise ProtocolError("bad-gate", "'gate' must be an object")
    from ..guard import GateResult  # deferred: guard pulls in numpy-heavy deps

    try:
        return GateResult.from_dict(record)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad-gate", f"malformed gate section: {exc}")


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

def decode_locate(
    payload: Mapping, area: Polygon | None = None
) -> LocalizationRequest:
    """``POST /v1/locate`` body → a serving-layer request."""
    check_version(payload)
    anchors = anchors_from_wire(payload)
    query_id = payload.get("query_id", "")
    if not isinstance(query_id, str):
        raise ProtocolError("bad-field", "'query_id' must be a string")
    timeout_s = payload.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ProtocolError("bad-field", "'timeout_s' must be a number")
        if timeout_s <= 0:
            raise ProtocolError("bad-field", "'timeout_s' must be positive")
    return LocalizationRequest(
        anchors,
        query_id=query_id,
        area=area,
        timeout_s=timeout_s,
        gate=_gate_from_wire(payload),
    )


def decode_measurement_batch(payload: Mapping) -> dict:
    """``POST /v1/measurements`` body → validated ingest fields.

    Returns ``{"batch_id", "object_id", "anchors", "gate", "wait"}``.
    The anchors are already decoded (and therefore validated) so a batch
    is only ever acked after it is known to be solvable input.
    """
    check_version(payload)
    batch_id = payload.get("batch_id")
    if not isinstance(batch_id, str) or not batch_id:
        raise ProtocolError(
            "missing-field", "request needs a non-empty string 'batch_id'"
        )
    object_id = payload.get("object_id", "")
    if not isinstance(object_id, str):
        raise ProtocolError("bad-field", "'object_id' must be a string")
    return {
        "batch_id": batch_id,
        "object_id": object_id,
        "anchors": anchors_from_wire(payload),
        "gate": _gate_from_wire(payload),
        "wait": bool(payload.get("wait", False)),
    }


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

def response_to_dict(response: Any) -> dict:
    """A serving/cluster response as its wire dict.

    Works for both :class:`~repro.serving.LocalizationResponse` and
    :class:`~repro.cluster.ClusterResponse` (the cluster's extra routing
    fields ride along when present).  The estimate's position floats are
    the exact doubles the solver produced.
    """
    wire = {
        "v": PROTOCOL_VERSION,
        "query_id": response.query_id,
        "position": {"x": response.position.x, "y": response.position.y},
        "degraded": response.degraded,
        "reason": response.reason,
        "latency_s": response.latency_s,
        # Always present (0.0 for degraded fallbacks): external clients
        # and the session layer read confidence without caring whether
        # the estimate block survived degradation.
        "confidence": getattr(response, "confidence", 0.0),
    }
    estimate = response.estimate
    if estimate is not None:
        wire["relaxation_cost"] = estimate.relaxation_cost
        if estimate.degradation_reasons:
            wire["degradation_reasons"] = list(estimate.degradation_reasons)
    for field in ("shard", "replica", "attempts", "failovers", "hedged"):
        value = getattr(response, field, None)
        if value is not None:
            wire[field] = value
    return wire


def position_event(object_id: str, batch_id: str, wire_response: dict) -> dict:
    """One WebSocket position push for a stored estimate."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "position",
        "object_id": object_id,
        "batch_id": batch_id,
        "position": wire_response["position"],
        "degraded": wire_response["degraded"],
        "reason": wire_response["reason"],
        "confidence": wire_response.get("confidence", 0.0),
    }


def track_event(object_id: str, update: Any) -> dict:
    """One WebSocket filtered-track push (session layer enabled).

    ``update`` is a :class:`repro.sessions.SessionUpdate`; subscribers
    get the smoothed position, its posterior uncertainty, and the
    track's current zone alongside the raw position pushes.
    """
    event = {"v": PROTOCOL_VERSION, "type": "track"}
    event.update(update.to_dict())
    return event


def session_event(object_id: str, record: Mapping) -> dict:
    """One WebSocket zone/geofence event push.

    ``record`` is a :meth:`repro.sessions.SessionEvent.to_dict` payload;
    its ``kind`` (``enter``/``exit``/``alert``/``evicted``) tells the
    client what happened, ``seq`` is the server-side total order.
    """
    event = {"v": PROTOCOL_VERSION, "type": "session-event"}
    event.update(record)
    event["object_id"] = object_id
    return event
