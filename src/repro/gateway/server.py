"""`GatewayServer`: the asyncio network front door of the NomLoc stack.

The first component that lets anything *outside* the Python process
submit measurements or receive estimates.  One asyncio event loop owns
all connections (HTTP keep-alive + WebSocket streams); every solve hops
across the :class:`~repro.gateway.bridge.SolverBridge` into the
sharded/replicated :class:`~repro.cluster.LocalizationCluster`, and
every measurement batch is acked only after the
:class:`~repro.gateway.store.MeasurementLedger` committed it (WAL +
fsync), so the ingest path is durable across a SIGKILL.

Request lifecycle of a durable submission::

    POST /v1/measurements ──▶ decode+validate ──▶ ledger INSERT (fsync)
         ◀── ack {"status": "accepted"} ─────────────┘
    background: bridge.locate() ──▶ ledger estimate row
                                └─▶ WebSocket push to the object's
                                    subscribers

Crash recovery: on :meth:`GatewayServer.start`, every acked batch
without an estimate row (the backlog a kill left behind) is re-solved
and answered from the ledger alone — acked means answered, eventually,
across restarts.

Graceful shutdown (:meth:`GatewayServer.stop`, wired to
SIGTERM/SIGINT by :meth:`serve_forever`): stop accepting, let in-flight
requests finish, complete the background solve backlog, drain the
cluster's services (:meth:`~repro.cluster.LocalizationCluster.drain`),
checkpoint + close the WAL ledger, and flush tracer spans.  A test
asserts no acked write is lost across a drain.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import ClusterConfig, LocalizationCluster
from ..core import LocalizerConfig
from ..geometry import Polygon
from ..obs import dump_jsonl, get_tracer
from ..serving import LocalizationRequest, ServingConfig
from ..serving.metrics import json_safe
from . import protocol
from .bridge import SolverBridge
from .http import (
    HttpError,
    HttpRequest,
    read_request,
    write_json_response,
)
from .store import MeasurementLedger
from .ws import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    WebSocketError,
    accept_key,
    encode_frame,
    read_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layer cycle
    from ..sessions import SessionManager

__all__ = ["GatewayConfig", "GatewayServer"]


@dataclass(frozen=True)
class GatewayConfig:
    """Operational knobs of one gateway process.

    Attributes
    ----------
    host / port:
        Bind address; port ``0`` asks the kernel for an ephemeral port
        (read the bound one off :attr:`GatewayServer.port`).
    db_path:
        Ledger file; ``":memory:"`` serves without durability (tests).
    num_shards / replicas_per_shard:
        Shape of the backing localization cluster.
    solver_workers:
        Threads in the solve/ledger executor.
    max_inflight:
        Admission bound across the async/sync boundary.
    synchronous:
        Ledger ``PRAGMA synchronous`` level (``"FULL"`` = acks fsync).
    drain_timeout_s:
        Grace budget for in-flight work during :meth:`GatewayServer.stop`.
    trace_out:
        When set and tracing is enabled, finished spans are flushed to
        this JSONL path on shutdown.
    ws_replay_buffer:
        Events retained per object for ``resume_from`` replay after a
        dropped stream (0 disables resume).
    ws_heartbeat_s:
        Seconds of stream silence before the server pings a WebSocket
        client (0 disables heartbeats — streams then live until the
        peer closes).
    ws_idle_pings:
        Consecutive unanswered heartbeats before the connection is
        declared dead and closed.
    """

    host: str = "127.0.0.1"
    port: int = 0
    db_path: str = "gateway.db"
    num_shards: int = 1
    replicas_per_shard: int = 1
    solver_workers: int = 2
    max_inflight: int = 64
    synchronous: str = "FULL"
    drain_timeout_s: float = 10.0
    trace_out: str | None = None
    ws_replay_buffer: int = 256
    ws_heartbeat_s: float = 0.0
    ws_idle_pings: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.replicas_per_shard < 1:
            raise ValueError("cluster shape must be at least 1x1")
        if self.solver_workers < 1:
            raise ValueError("solver_workers must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.ws_replay_buffer < 0:
            raise ValueError("ws_replay_buffer must be non-negative")
        if self.ws_heartbeat_s < 0:
            raise ValueError("ws_heartbeat_s must be non-negative")
        if self.ws_idle_pings < 1:
            raise ValueError("ws_idle_pings must be at least 1")


class _Connection:
    """Book-keeping for one accepted socket."""

    __slots__ = ("writer", "busy", "is_ws", "queue")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.busy = False
        self.is_ws = False
        self.queue: asyncio.Queue | None = None


class GatewayServer:
    """The network edge: HTTP + WebSocket over one localization cluster.

    Parameters
    ----------
    area:
        Default venue polygon served by the backing cluster.
    localizer_config / serving_config:
        SP and per-replica serving knobs, passed through to the cluster.
    config:
        Operational :class:`GatewayConfig`.
    sessions:
        Optional :class:`~repro.sessions.SessionManager`.  When set,
        every answered measurement batch with an ``object_id`` also
        feeds the session layer, and subscribers of that object receive
        ``track`` (filtered position) and ``session-event``
        (zone/geofence) pushes alongside the raw ``position`` events.
        Session timestamps come from the gateway's monotonic clock.
    """

    def __init__(
        self,
        area: Polygon,
        localizer_config: LocalizerConfig | None = None,
        config: GatewayConfig | None = None,
        serving_config: ServingConfig | None = None,
        sessions: "SessionManager | None" = None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.area = area
        self.sessions = sessions
        self._session_t0 = time.monotonic()
        self.cluster = LocalizationCluster(
            area,
            localizer_config,
            ClusterConfig(
                num_shards=self.config.num_shards,
                replicas_per_shard=self.config.replicas_per_shard,
                serving=serving_config or ServingConfig(),
            ),
        )
        self.ledger = MeasurementLedger(
            self.config.db_path, synchronous=self.config.synchronous
        )
        self.bridge = SolverBridge(
            self.cluster,
            max_workers=self.config.solver_workers,
            max_inflight=self.config.max_inflight,
        )
        self.host = self.config.host
        self.port = self.config.port
        self.replayed = 0  # backlog batches answered during start()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._solve_tasks: set[asyncio.Task] = set()
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        #: per-object monotonic stream sequence (stamped on every push).
        self._stream_seq: dict[str, int] = {}
        #: per-object bounded replay ring for `resume_from` reconnects.
        self._replay: dict[str, deque] = {}
        self._closing = False
        self._stopped = False
        self.requests_total = 0
        self.ingested_total = 0
        self.duplicates_total = 0
        self.answered_total = 0
        self.published_total = 0
        self.resumed_total = 0
        self.idle_closed_total = 0
        self.errors_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Recover the ledger backlog, then start accepting connections."""
        await self._replay_backlog()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    async def _replay_backlog(self) -> None:
        """Idempotently answer every acked-but-unanswered batch.

        The crash-recovery path: a previous gateway acked these batches
        (they are committed) but died before storing their estimates.
        Solving from the ledger payload re-serves them bit-identically —
        the solver is deterministic and the payload carries the exact
        anchors (and gate) of the original submission.
        """
        for pending in self.ledger.pending_batches():
            request = self._request_from_payload(
                pending["batch_id"], pending["payload"]
            )
            await self._answer_batch(
                pending["batch_id"], pending["object_id"], request
            )
            self.replayed += 1

    async def serve_forever(self, stop_signals=(signal.SIGTERM, signal.SIGINT)):
        """Run until a stop signal arrives, then shut down gracefully."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        installed = []
        for sig in stop_signals:
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-Unix loop; rely on KeyboardInterrupt
        try:
            await stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    async def stop(self) -> None:
        """Graceful drain: see the module docstring for the sequence."""
        if self._stopped:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake WS pumps and close idle keep-alive connections; busy ones
        # finish their current request and then exit their loops.
        for conn in list(self._connections):
            if conn.queue is not None:
                # Streams: stop the pump and abort the blocked frame read.
                conn.queue.put_nowait(None)
                conn.writer.close()
            elif not conn.busy:
                conn.writer.close()
        if self._conn_tasks:
            await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout_s
            )
        # Background solve backlog: every acked batch gets its estimate
        # row before the ledger closes — the no-acked-write-lost half of
        # the durability contract that drain (vs kill) guarantees.
        while self._solve_tasks:
            await asyncio.wait(
                list(self._solve_tasks), timeout=self.config.drain_timeout_s
            )
            if any(not t.done() for t in self._solve_tasks):  # pragma: no cover
                break
            self._solve_tasks = {t for t in self._solve_tasks if not t.done()}
        await self.bridge.run(self.cluster.drain)
        self._stopped = True
        self.bridge.shutdown()
        self.ledger.close()
        self._flush_spans()

    def _flush_spans(self) -> None:
        tracer = get_tracer()
        if tracer is not None and self.config.trace_out:
            dump_jsonl(tracer.finished(), self.config.trace_out)

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while not self._closing:
                try:
                    request = await read_request(reader)
                except (HttpError, ConnectionError):
                    break
                if request is None:
                    break
                conn.busy = True
                try:
                    if self._is_ws_upgrade(request):
                        await self._serve_websocket(conn, reader, writer, request)
                        break
                    keep_alive = request.keep_alive and not self._closing
                    await self._dispatch(request, writer, keep_alive)
                except (ConnectionError, HttpError):
                    break
                finally:
                    conn.busy = False
                if not request.keep_alive:
                    break
        finally:
            self._connections.discard(conn)
            writer.close()

    @staticmethod
    def _is_ws_upgrade(request: HttpRequest) -> bool:
        return (
            request.headers.get("upgrade", "").lower() == "websocket"
            and "sec-websocket-key" in request.headers
        )

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        """Route one HTTP request, mapping protocol errors to 4xx JSON."""
        self.requests_total += 1
        try:
            status, payload = await self._route(request)
        except protocol.ProtocolError as exc:
            self.errors_total += 1
            status, payload = 400, {"error": exc.code, "detail": str(exc)}
        except Exception as exc:  # solver/ledger pathologies: flagged 500
            self.errors_total += 1
            status, payload = 500, {
                "error": "internal",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        await write_json_response(writer, status, payload, keep_alive)

    async def _route(self, request: HttpRequest) -> tuple[int, dict]:
        method, path = request.method, request.path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, {
                "v": protocol.PROTOCOL_VERSION,
                "status": "closing" if self._closing else "ok",
            }
        if method == "GET" and path == "/metrics":
            return 200, self._metrics_payload()
        if method == "POST" and path == "/v1/locate":
            return await self._handle_locate(request)
        if method == "POST" and path == "/v1/measurements":
            return await self._handle_measurements(request)
        if method == "GET" and path.startswith("/v1/estimates/"):
            return self._handle_get_estimate(path.rsplit("/", 1)[1])
        if path in ("/healthz", "/metrics", "/v1/locate", "/v1/measurements"):
            return 405, {"error": "method-not-allowed", "detail": method}
        return 404, {"error": "not-found", "detail": path}

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _handle_locate(self, request: HttpRequest) -> tuple[int, dict]:
        """Ephemeral query: solve and answer, nothing persisted."""
        loc_request = protocol.decode_locate(request.json())
        response = await self.bridge.locate(loc_request)
        return 200, protocol.response_to_dict(response)

    async def _handle_measurements(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        """Durable ingest: persist (fsync), ack, then answer."""
        batch = protocol.decode_measurement_batch(request.json())
        batch_id, object_id = batch["batch_id"], batch["object_id"]
        payload = request.json()
        payload.pop("wait", None)
        gate = batch["gate"]
        inserted = await self.bridge.run(
            functools.partial(
                self.ledger.record_batch,
                batch_id,
                object_id,
                batch["anchors"],
                json.dumps(payload, sort_keys=True),
                verdicts=(
                    [v.to_dict() for v in gate.verdicts] if gate else ()
                ),
            )
        )
        # From here on the batch is committed: whatever happens next, a
        # restart will find and answer it.
        if inserted:
            self.ingested_total += 1
        else:
            self.duplicates_total += 1
        ack = {
            "v": protocol.PROTOCOL_VERSION,
            "status": "accepted",
            "batch_id": batch_id,
            "duplicate": not inserted,
        }
        loc_request = LocalizationRequest(
            batch["anchors"], query_id=batch_id, gate=gate
        )
        if batch["wait"]:
            stored = self.ledger.get_estimate(batch_id) if not inserted else None
            ack["estimate"] = (
                stored
                if stored is not None
                else await self._answer_batch(batch_id, object_id, loc_request)
            )
            return 200, ack
        if inserted:
            task = asyncio.ensure_future(
                self._answer_batch(batch_id, object_id, loc_request)
            )
            self._solve_tasks.add(task)
            task.add_done_callback(self._solve_tasks.discard)
        return 200, ack

    async def _answer_batch(
        self, batch_id: str, object_id: str, request: LocalizationRequest
    ) -> dict:
        """Solve one acked batch, persist its estimate, notify streams."""
        response = await self.bridge.locate(request)
        wire = protocol.response_to_dict(response)
        await self.bridge.run(self.ledger.record_estimate, batch_id, wire)
        self.answered_total += 1
        self._publish(object_id, protocol.position_event(object_id, batch_id, wire))
        if self.sessions is not None and object_id:
            self._feed_sessions(object_id, response)
        return wire

    def _feed_sessions(self, object_id: str, response) -> None:
        """Feed one answered estimate to the session layer and fan out.

        Runs on the event loop (SessionManager is not thread-safe);
        ingest at gateway scale is a few filter multiplies and an O(1)
        zone lookup.  Idle eviction piggybacks on the same tick so a
        quiet gateway still ages out stale sessions as long as *any*
        object keeps reporting.
        """
        now_s = time.monotonic() - self._session_t0
        update, events = self.sessions.ingest(object_id, now_s, response)
        self._publish(object_id, protocol.track_event(object_id, update))
        for event in events:
            self._publish(object_id, protocol.session_event(object_id, event.to_dict()))
        for event in self.sessions.evict_idle(now_s):
            self._publish(
                event.object_id,
                protocol.session_event(event.object_id, event.to_dict()),
            )

    def _handle_get_estimate(self, batch_id: str) -> tuple[int, dict]:
        estimate = self.ledger.get_estimate(batch_id)
        if estimate is not None:
            return 200, {
                "v": protocol.PROTOCOL_VERSION,
                "status": "answered",
                "estimate": estimate,
                "verdicts": self.ledger.get_verdicts(batch_id),
            }
        if self.ledger.get_batch(batch_id) is not None:
            return 200, {
                "v": protocol.PROTOCOL_VERSION,
                "status": "pending",
                "batch_id": batch_id,
            }
        return 404, {"error": "unknown-batch", "detail": batch_id}

    def _metrics_payload(self) -> dict:
        """The ``/metrics`` document: gateway + ledger + cluster state."""
        gateway = {
            "connections_open": len(self._connections),
            "requests_total": self.requests_total,
            "ingested_total": self.ingested_total,
            "duplicates_total": self.duplicates_total,
            "answered_total": self.answered_total,
            "published_total": self.published_total,
            "resumed_total": self.resumed_total,
            "idle_closed_total": self.idle_closed_total,
            "replay_buffered": sum(len(r) for r in self._replay.values()),
            "errors_total": self.errors_total,
            "replayed_on_start": self.replayed,
            "solve_backlog": len(self._solve_tasks),
            "inflight": self.bridge.inflight,
            "subscriptions": sum(len(q) for q in self._subscribers.values()),
            "closing": self._closing,
            "ledger": self.ledger.counts(),
        }
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "gateway": gateway,
            "cluster": self.cluster.metrics_json(),
        }
        if self.sessions is not None:
            payload["sessions"] = self.sessions.metrics_json()
        return json_safe(payload)

    # ------------------------------------------------------------------
    # WebSocket streaming
    # ------------------------------------------------------------------
    def _publish(self, object_id: str, event: dict) -> None:
        """Stamp, buffer, and fan one event out to the subscribers.

        Every push for an object gets the next ``stream_seq`` (1-based,
        per object, across position/track/session-event kinds alike)
        and lands in the object's bounded replay ring — stamping happens
        whether or not anyone is subscribed, so a client that drops and
        reconnects with ``resume_from`` receives exactly the frames it
        missed, including ones published while it was away.
        """
        seq = self._stream_seq.get(object_id, 0) + 1
        self._stream_seq[object_id] = seq
        event["stream_seq"] = seq
        if self.config.ws_replay_buffer > 0:
            ring = self._replay.get(object_id)
            if ring is None:
                ring = self._replay[object_id] = deque(
                    maxlen=self.config.ws_replay_buffer
                )
            ring.append(event)
        for queue in self._subscribers.get(object_id, ()):
            queue.put_nowait(event)
            self.published_total += 1

    async def _serve_websocket(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: HttpRequest,
    ) -> None:
        """Upgrade and run one streaming connection until close/stop."""
        key = request.headers["sec-websocket-key"]
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        conn.is_ws = True
        conn.queue = asyncio.Queue()
        subscribed: set[str] = set()
        pump = asyncio.ensure_future(self._ws_pump(conn.queue, writer))
        heartbeat_s = self.config.ws_heartbeat_s
        unanswered = 0
        try:
            while not self._closing:
                try:
                    if heartbeat_s > 0:
                        try:
                            opcode, payload = await asyncio.wait_for(
                                read_frame(reader), timeout=heartbeat_s
                            )
                        except asyncio.TimeoutError:
                            # Silence: ping, and give up after enough
                            # unanswered heartbeats (dead peer / half-
                            # open TCP — the socket would otherwise pin
                            # its queue and subscriber slots forever).
                            unanswered += 1
                            if unanswered > self.config.ws_idle_pings:
                                self.idle_closed_total += 1
                                break
                            writer.write(encode_frame(OP_PING, b"hb"))
                            await writer.drain()
                            continue
                    else:
                        opcode, payload = await read_frame(reader)
                except (
                    asyncio.IncompleteReadError,
                    WebSocketError,
                    ConnectionError,
                ):
                    break
                unanswered = 0  # any frame (incl. PONG) proves liveness
                if opcode == OP_CLOSE:
                    break
                if opcode == OP_PING:
                    writer.write(encode_frame(OP_PONG, payload))
                    await writer.drain()
                    continue
                if opcode != OP_TEXT:
                    continue
                await self._ws_message(conn, subscribed, payload)
        finally:
            for object_id in subscribed:
                queues = self._subscribers.get(object_id)
                if queues is not None:
                    queues.discard(conn.queue)
                    if not queues:
                        del self._subscribers[object_id]
            conn.queue.put_nowait(None)
            await pump
            try:
                writer.write(encode_frame(OP_CLOSE, b""))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    async def _ws_message(
        self, conn: _Connection, subscribed: set[str], payload: bytes
    ) -> None:
        """Handle one client text frame (subscribe/unsubscribe/ping)."""
        backlog: list[dict] = []
        try:
            message = protocol.loads(payload)
            protocol.check_version(message)
            kind = message.get("type")
            if kind == "subscribe":
                object_id = message["object_id"]
                if not isinstance(object_id, str) or not object_id:
                    raise protocol.ProtocolError(
                        "bad-field", "'object_id' must be a non-empty string"
                    )
                resume_from = message.get("resume_from")
                if resume_from is not None and (
                    not isinstance(resume_from, int) or resume_from < 0
                ):
                    raise protocol.ProtocolError(
                        "bad-field",
                        "'resume_from' must be a non-negative integer",
                    )
                self._subscribers.setdefault(object_id, set()).add(conn.queue)
                subscribed.add(object_id)
                reply = {
                    "type": "subscribed",
                    "object_id": object_id,
                    "stream_seq": self._stream_seq.get(object_id, 0),
                }
                if resume_from is not None:
                    backlog = self._resume_backlog(object_id, resume_from)
                    reply["resumed"] = len(backlog)
                    # The oldest retained frame tells the client whether
                    # the ring still covers its position; a gap means
                    # frames were evicted and a full resync is needed.
                    ring = self._replay.get(object_id)
                    oldest = ring[0]["stream_seq"] if ring else None
                    reply["gap"] = bool(
                        resume_from < self._stream_seq.get(object_id, 0)
                        and (oldest is None or oldest > resume_from + 1)
                    )
            elif kind == "unsubscribe":
                object_id = message.get("object_id", "")
                queues = self._subscribers.get(object_id)
                if queues is not None:
                    queues.discard(conn.queue)
                subscribed.discard(object_id)
                reply = {"type": "unsubscribed", "object_id": object_id}
            elif kind == "ping":
                reply = {"type": "pong"}
            else:
                raise protocol.ProtocolError(
                    "bad-field", f"unknown stream message type {kind!r}"
                )
            reply["v"] = protocol.PROTOCOL_VERSION
        except KeyError as exc:
            reply = {
                "v": protocol.PROTOCOL_VERSION,
                "type": "error",
                "error": "missing-field",
                "detail": f"missing {exc.args[0]!r}",
            }
        except protocol.ProtocolError as exc:
            reply = {
                "v": protocol.PROTOCOL_VERSION,
                "type": "error",
                "error": exc.code,
                "detail": str(exc),
            }
        conn.queue.put_nowait(reply)
        # Replayed frames follow the ack, before any live push can
        # interleave (this whole handler is one event-loop step).
        for event in backlog:
            conn.queue.put_nowait(event)
            self.published_total += 1
            self.resumed_total += 1

    def _resume_backlog(self, object_id: str, resume_from: int) -> list[dict]:
        """Buffered events after ``resume_from``, in stream order."""
        ring = self._replay.get(object_id)
        if not ring:
            return []
        return [e for e in ring if e["stream_seq"] > resume_from]

    async def _ws_pump(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Drain one connection's event queue onto the socket."""
        while True:
            event = await queue.get()
            if event is None:
                return
            try:
                writer.write(
                    encode_frame(OP_TEXT, protocol.dumps(event).encode())
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _request_from_payload(
        self, batch_id: str, payload: dict
    ) -> LocalizationRequest:
        """Rebuild the solver request of a stored ingest payload."""
        batch = protocol.decode_measurement_batch(payload)
        return LocalizationRequest(
            batch["anchors"], query_id=batch_id, gate=batch["gate"]
        )
