"""The gateway's write-ahead durable measurement ledger (stdlib sqlite3).

Durability contract, in one sentence: **a measurement batch is only
acknowledged after its INSERT has committed to a WAL-journaled,
fsync-synchronous SQLite database**, so a gateway killed at any instant
recovers every acked batch on restart and can re-serve the queries it
never answered.

The WAL/pragma/transaction discipline (serialized ``BEGIN IMMEDIATE``
writers, the ``synchronous`` fsync level, the schema-version gate,
checkpoint-on-close) lives in the shared
:class:`repro.durable.WalDatabase` helper — the session layer's
:class:`repro.sessions.durable.SessionStore` rides the same machinery.
This module owns only the measurement schema and its queries.

Schema (version :data:`SCHEMA_VERSION`, guarded by an explicit
``schema_version`` table — opening a ledger written by an incompatible
gateway fails loudly instead of corrupting it):

``access_points``
    One row per distinct anchor ever seen (name, reported position,
    nomadic flag) — the AccessPoint table of a deployed positioning
    stack, fed idempotently from ingest.
``batches``
    One row per acked measurement batch: caller-chosen ``batch_id``
    (the idempotency key — replayed submissions hit ``INSERT OR
    IGNORE`` and re-ack without duplicating), object id, receive time,
    and the full anchors/gate payload as JSON so the solve is
    reproducible from the ledger alone.
``estimates``
    One row per answered batch (position, degradation flags, full wire
    response).  ``batches`` rows without an ``estimates`` row are the
    crash-recovery backlog: :meth:`MeasurementLedger.pending_batches`
    lists them for idempotent re-solve on restart.
``guard_verdicts``
    Per-link guard rulings of gated batches (status, quality, reasons)
    — the durable form of :class:`repro.guard.LinkVerdict`.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..core import Anchor
from ..durable import WalDatabase

__all__ = ["LedgerError", "MeasurementLedger", "SCHEMA_VERSION"]

#: Bumped on any incompatible schema change.
SCHEMA_VERSION = 1

#: Individual statements (``executescript`` would auto-commit the
#: surrounding transaction, breaking the all-or-nothing schema init).
_SCHEMA = """
CREATE TABLE IF NOT EXISTS access_points (
    name         TEXT PRIMARY KEY,
    x            REAL NOT NULL,
    y            REAL NOT NULL,
    nomadic      INTEGER NOT NULL DEFAULT 0,
    first_seen_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS batches (
    batch_id   TEXT PRIMARY KEY,
    object_id  TEXT NOT NULL DEFAULT '',
    received_s REAL NOT NULL,
    payload    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS estimates (
    batch_id   TEXT PRIMARY KEY REFERENCES batches(batch_id),
    x          REAL NOT NULL,
    y          REAL NOT NULL,
    degraded   INTEGER NOT NULL,
    reason     TEXT NOT NULL DEFAULT '',
    confidence REAL,
    payload    TEXT NOT NULL,
    answered_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS guard_verdicts (
    batch_id TEXT NOT NULL REFERENCES batches(batch_id),
    link     TEXT NOT NULL,
    status   TEXT NOT NULL,
    quality  REAL NOT NULL,
    reasons  TEXT NOT NULL DEFAULT '[]',
    PRIMARY KEY (batch_id, link)
);
CREATE INDEX IF NOT EXISTS idx_batches_object ON batches(object_id);
"""


class LedgerError(RuntimeError):
    """The ledger file is unusable (wrong schema version, closed, ...)."""


class MeasurementLedger(WalDatabase):
    """One gateway's durable store, safe for multi-threaded writers.

    Parameters
    ----------
    path:
        Database file path (parent directories are created).  ``":memory:"``
        is accepted for tests that only need the schema logic.
    synchronous:
        SQLite ``PRAGMA synchronous`` level; the default ``"FULL"`` is
        what makes an ack mean "on disk".  Benchmarks may relax it to
        ``"NORMAL"`` explicitly — never silently.
    """

    def __init__(self, path: str | Path, synchronous: str = "FULL") -> None:
        super().__init__(
            path,
            schema=_SCHEMA,
            schema_version=SCHEMA_VERSION,
            synchronous=synchronous,
            error_cls=LedgerError,
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record_batch(
        self,
        batch_id: str,
        object_id: str,
        anchors: Sequence[Anchor],
        payload_json: str,
        verdicts: Iterable[Mapping] = (),
    ) -> bool:
        """Durably record one measurement batch; returns False on replay.

        One transaction covers the batch row, the access-point upserts
        and any guard verdict rows — after this returns, the ack is
        backed by a committed WAL frame.  A ``batch_id`` already in the
        ledger is a client retry (at-least-once delivery): nothing is
        overwritten and ``False`` comes back so the caller can flag the
        ack as a duplicate.
        """
        now = time.time()
        verdict_rows = [
            (
                batch_id,
                v["name"],
                v["status"],
                float(v["quality"]),
                json.dumps(list(v.get("reasons") or ())),
            )
            for v in verdicts
        ]

        def txn(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO batches"
                "(batch_id, object_id, received_s, payload)"
                " VALUES (?, ?, ?, ?)",
                (batch_id, object_id, now, payload_json),
            )
            if cursor.rowcount == 0:
                return False  # idempotent replay
            for anchor in anchors:
                conn.execute(
                    "INSERT OR IGNORE INTO access_points"
                    "(name, x, y, nomadic, first_seen_s) VALUES (?, ?, ?, ?, ?)",
                    (
                        anchor.name,
                        anchor.position.x,
                        anchor.position.y,
                        int(anchor.nomadic),
                        now,
                    ),
                )
            conn.executemany(
                "INSERT OR REPLACE INTO guard_verdicts"
                "(batch_id, link, status, quality, reasons)"
                " VALUES (?, ?, ?, ?, ?)",
                verdict_rows,
            )
            return True

        return bool(self.write(txn))

    def record_estimate(self, batch_id: str, wire_response: Mapping) -> None:
        """Durably record the answer of one batch (idempotent).

        ``wire_response`` is the protocol dict
        (:func:`repro.gateway.protocol.response_to_dict`); the position
        is denormalized into columns for queries, the full payload kept
        verbatim for replay fidelity.
        """
        position = wire_response["position"]
        payload = json.dumps(wire_response, sort_keys=True)
        now = time.time()

        def txn(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO estimates"
                "(batch_id, x, y, degraded, reason, confidence, payload,"
                " answered_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    batch_id,
                    position["x"],
                    position["y"],
                    int(bool(wire_response.get("degraded"))),
                    wire_response.get("reason", ""),
                    wire_response.get("confidence"),
                    payload,
                    now,
                ),
            )

        self.write(txn)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_batch(self, batch_id: str) -> dict | None:
        """The stored ingest payload of one batch (None when unknown)."""
        rows = self.query(
            "SELECT object_id, received_s, payload FROM batches"
            " WHERE batch_id = ?",
            (batch_id,),
        )
        if not rows:
            return None
        return {
            "batch_id": batch_id,
            "object_id": rows[0][0],
            "received_s": rows[0][1],
            "payload": json.loads(rows[0][2]),
        }

    def get_estimate(self, batch_id: str) -> dict | None:
        """The stored wire response of one batch (None when unanswered)."""
        rows = self.query(
            "SELECT payload FROM estimates WHERE batch_id = ?", (batch_id,)
        )
        return None if not rows else json.loads(rows[0][0])

    def get_verdicts(self, batch_id: str) -> list[dict]:
        """The persisted guard rulings of one batch (link order by name)."""
        rows = self.query(
            "SELECT link, status, quality, reasons FROM guard_verdicts"
            " WHERE batch_id = ? ORDER BY link",
            (batch_id,),
        )
        return [
            {
                "name": link,
                "status": status,
                "quality": quality,
                "reasons": json.loads(reasons),
            }
            for link, status, quality, reasons in rows
        ]

    def pending_batches(self) -> list[dict]:
        """Acked batches with no stored estimate — the replay backlog.

        Ordered by receive time so recovery re-serves in arrival order.
        """
        rows = self.query(
            "SELECT b.batch_id, b.object_id, b.payload FROM batches b"
            " LEFT JOIN estimates e ON e.batch_id = b.batch_id"
            " WHERE e.batch_id IS NULL ORDER BY b.received_s, b.batch_id"
        )
        return [
            {
                "batch_id": batch_id,
                "object_id": object_id,
                "payload": json.loads(payload),
            }
            for batch_id, object_id, payload in rows
        ]

    def counts(self) -> dict:
        """Row counts per table — the ledger's health/metrics summary."""
        out = {}
        for table in ("access_points", "batches", "estimates", "guard_verdicts"):
            out[table] = int(
                self.query(f"SELECT COUNT(*) FROM {table}")[0][0]
            )
        out["pending"] = out["batches"] - out["estimates"]
        return out
