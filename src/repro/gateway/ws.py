"""Minimal RFC 6455 WebSocket support (stdlib only).

Implements exactly the subset the gateway's streaming endpoint needs:
the HTTP upgrade handshake, text/close/ping/pong frames, client-side
masking, and 16-bit/64-bit extended payload lengths.  No extensions, no
fragmentation (every protocol message fits one frame), no binary frames.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

__all__ = [
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WebSocketError",
    "accept_key",
    "encode_frame",
    "read_frame",
]

#: RFC 6455 §1.3 handshake GUID.
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
#: Bound on a single frame payload; protocol messages are tiny.
MAX_FRAME_BYTES = 8 * 1024 * 1024

OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class WebSocketError(Exception):
    """Malformed or unsupported WebSocket traffic."""


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((client_key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One unfragmented frame (clients must set ``mask=True``)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WebSocketError("frame payload too large")
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", n)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``.

    Raises :class:`WebSocketError` on fragmentation (unsupported) or
    oversized frames, and ``asyncio.IncompleteReadError`` on EOF.
    """
    first = await reader.readexactly(2)
    fin = first[0] & 0x80
    opcode = first[0] & 0x0F
    if not fin:
        raise WebSocketError("fragmented frames are unsupported")
    masked = first[1] & 0x80
    length = first[1] & 0x7F
    if length == 126:
        length = struct.unpack(">H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", await reader.readexactly(8))[0]
    if length > MAX_FRAME_BYTES:
        raise WebSocketError("frame payload too large")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
