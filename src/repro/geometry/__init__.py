"""Planar geometry substrate for the NomLoc reproduction.

Provides the primitives (points, segments, polygons), convex decomposition
for non-convex areas of interest, halfspace intersection for exact feasible
regions, and the virtual-AP mirror construction for area-boundary
constraints.
"""

from .convex import convex_hull, decompose_convex, triangulate
from .halfspace import (
    HalfSpace,
    bisector_halfspace,
    clip_polygon,
    halfspaces_to_matrix,
    intersect_halfspaces,
    intersect_halfspaces_batch,
)
from .mirror import boundary_halfspaces, reflect_point, virtual_aps
from .polygon import Polygon
from .primitives import (
    EPS,
    Point,
    Segment,
    cross,
    distance_point_to_segment,
    dot,
    orientation,
    segment_intersection_point,
    segments_intersect,
)

__all__ = [
    "EPS",
    "Point",
    "Segment",
    "Polygon",
    "HalfSpace",
    "cross",
    "dot",
    "orientation",
    "segments_intersect",
    "segment_intersection_point",
    "distance_point_to_segment",
    "convex_hull",
    "triangulate",
    "decompose_convex",
    "bisector_halfspace",
    "clip_polygon",
    "intersect_halfspaces",
    "intersect_halfspaces_batch",
    "halfspaces_to_matrix",
    "reflect_point",
    "virtual_aps",
    "boundary_halfspaces",
]
