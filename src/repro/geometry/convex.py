"""Convex hulls and convex decomposition of simple polygons.

Sec. IV-B2 of the paper: "If the objective polygonal area is non-convex, we
can divide it into several convex ones.  For each convex area, we solve the
optimization problem and merge the areas with feasible solutions."  The
L-shaped lobby scenario exercises exactly this path, so the decomposition
must be correct, not merely plausible.

The decomposition used here is ear-clipping triangulation followed by a
greedy Hertel–Mehlhorn-style merge of triangles across shared diagonals while
convexity is preserved.  Hertel–Mehlhorn yields at most four times the
minimum number of convex pieces, which is ample for floor plans.
"""

from __future__ import annotations

from typing import Sequence

from .polygon import Polygon
from .primitives import EPS, Point, cross, orientation

__all__ = ["convex_hull", "triangulate", "decompose_convex"]


def convex_hull(points: Sequence[Point]) -> Polygon:
    """Convex hull of a point set via Andrew's monotone chain.

    Collinear points on the hull boundary are dropped.  Raises
    ``ValueError`` when the input spans fewer than three non-collinear
    points (the hull would be degenerate).
    """
    pts = sorted(set((p.x, p.y) for p in points))
    if len(pts) < 3:
        raise ValueError("convex hull needs at least three distinct points")
    pp = [Point(x, y) for x, y in pts]

    def half(chain_pts: list[Point]) -> list[Point]:
        # Exact (un-toleranced) turn test: a tolerance here can pop a true
        # extreme point on nearly-collinear input, producing a hull that
        # excludes an input point.
        out: list[Point] = []
        for p in chain_pts:
            while len(out) >= 2 and cross(out[-2], out[-1], p) <= 0.0:
                out.pop()
            out.append(p)
        return out

    lower = half(pp)
    upper = half(list(reversed(pp)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        raise ValueError("points are collinear; hull is degenerate")
    return Polygon(tuple(hull))


def _point_blocks_ear(p: Point, a: Point, b: Point, c: Point) -> bool:
    """True when ``p`` lies in the *closed* CCW triangle ``abc``.

    The test must be boundary-inclusive: a vertex sitting exactly on the
    candidate diagonal (e.g. the reflex corner of an L-shape relative to
    the opposite diagonal) would pinch the remaining polygon if the ear
    were clipped, so it has to block the ear.
    """
    return (
        cross(a, b, p) >= -EPS
        and cross(b, c, p) >= -EPS
        and cross(c, a, p) >= -EPS
    )


def triangulate(polygon: Polygon) -> list[tuple[Point, Point, Point]]:
    """Ear-clipping triangulation of a simple polygon (CCW)."""
    verts = list(polygon.vertices)
    if len(verts) == 3:
        return [tuple(verts)]  # type: ignore[return-value]
    triangles: list[tuple[Point, Point, Point]] = []
    guard = 0
    while len(verts) > 3:
        guard += 1
        if guard > 10000:
            raise RuntimeError(
                "ear clipping failed to converge; polygon may self-intersect"
            )
        n = len(verts)
        clipped = False
        for i in range(n):
            prev = verts[(i - 1) % n]
            cur = verts[i]
            nxt = verts[(i + 1) % n]
            if orientation(prev, cur, nxt) <= 0:
                continue  # reflex or collinear vertex cannot be an ear tip
            if any(
                _point_blocks_ear(q, prev, cur, nxt)
                for j, q in enumerate(verts)
                if j not in {(i - 1) % n, i, (i + 1) % n}
            ):
                continue
            triangles.append((prev, cur, nxt))
            del verts[i]
            clipped = True
            break
        if not clipped:
            # Degenerate (collinear) vertex: drop it and continue.
            for i in range(n):
                prev = verts[(i - 1) % n]
                cur = verts[i]
                nxt = verts[(i + 1) % n]
                if orientation(prev, cur, nxt) == 0:
                    del verts[i]
                    clipped = True
                    break
            if not clipped:
                raise RuntimeError("no ear found; polygon is not simple")
    triangles.append((verts[0], verts[1], verts[2]))
    return triangles


def _shared_edge(
    a: Sequence[Point], b: Sequence[Point]
) -> tuple[int, int] | None:
    """Indices ``(i, j)`` such that edge ``a[i]→a[i+1]`` equals ``b[j+1]→b[j]``."""
    na, nb = len(a), len(b)
    for i in range(na):
        p, q = a[i], a[(i + 1) % na]
        for j in range(nb):
            r, s = b[j], b[(j + 1) % nb]
            if p.almost_equals(s) and q.almost_equals(r):
                return i, j
    return None


def _merge_across(
    a: list[Point], b: list[Point], i: int, j: int
) -> list[Point]:
    """Merge two CCW pieces that share edge ``a[i]→a[i+1]`` (reversed in b)."""
    na, nb = len(a), len(b)
    merged = [a[(i + 1 + k) % na] for k in range(na)]
    # merged starts after the shared edge in a and ends at a[i]; splice b's
    # vertices (excluding the shared pair) between a[i] and a[i+1].
    tail = [b[(j + 2 + k) % nb] for k in range(nb - 2)]
    return merged + tail


def _is_convex_cycle(verts: Sequence[Point]) -> bool:
    n = len(verts)
    for i in range(n):
        if cross(verts[i], verts[(i + 1) % n], verts[(i + 2) % n]) < -EPS:
            return False
    return True


def decompose_convex(polygon: Polygon) -> list[Polygon]:
    """Partition a simple polygon into convex pieces.

    A convex input is returned unchanged (as a single-element list).  The
    result pieces tile the input: their areas sum to the input area and
    pieces only share boundary edges.
    """
    if polygon.is_convex():
        return [polygon]
    pieces: list[list[Point]] = [list(t) for t in triangulate(polygon)]

    merged_any = True
    while merged_any:
        merged_any = False
        for ai in range(len(pieces)):
            for bi in range(ai + 1, len(pieces)):
                shared = _shared_edge(pieces[ai], pieces[bi])
                if shared is None:
                    continue
                candidate = _merge_across(pieces[ai], pieces[bi], *shared)
                if _is_convex_cycle(candidate):
                    pieces[ai] = candidate
                    del pieces[bi]
                    merged_any = True
                    break
            if merged_any:
                break
    out = []
    for piece in pieces:
        cleaned = _drop_collinear(piece)
        if len(cleaned) >= 3:
            out.append(Polygon(tuple(cleaned)))
    return out


def _drop_collinear(verts: list[Point]) -> list[Point]:
    """Remove vertices that are collinear with their neighbours."""
    out = list(verts)
    changed = True
    while changed and len(out) > 3:
        changed = False
        n = len(out)
        for i in range(n):
            if orientation(out[(i - 1) % n], out[i], out[(i + 1) % n]) == 0:
                del out[i]
                changed = True
                break
    return out
