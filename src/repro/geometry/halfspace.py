"""Halfspaces and 2-D halfspace intersection by polygon clipping.

Every proximity judgement in NomLoc is a linear inequality
``a . z <= b`` (Eq. 7 of the paper).  Because the unknown ``z`` is a 2-D
position, the feasible region of any constraint stack is a convex polygon
and can be computed *exactly* by Sutherland–Hodgman clipping — no LP solver
is needed to find its centre.  The LP machinery in :mod:`repro.optimize` is
still used for the weighted relaxation (Eq. 19) and for the analytic /
Chebyshev centres; this module provides the exact geometric ground truth the
solvers are validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .polygon import Polygon
from .primitives import EPS, Point

__all__ = [
    "HalfSpace",
    "clip_polygon",
    "intersect_halfspaces",
    "bisector_halfspace",
    "halfspaces_to_matrix",
]


@dataclass(frozen=True, slots=True)
class HalfSpace:
    """The closed halfplane ``ax * x + ay * y <= b``."""

    ax: float
    ay: float
    b: float

    def __post_init__(self) -> None:
        if math.hypot(self.ax, self.ay) <= EPS:
            raise ValueError("halfspace normal must be non-zero")

    def evaluate(self, p: Point) -> float:
        """Signed slack ``b - a . p`` (non-negative inside)."""
        return self.b - (self.ax * p.x + self.ay * p.y)

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """True when ``p`` satisfies the inequality within ``tol``."""
        return self.evaluate(p) >= -tol

    def normalized(self) -> "HalfSpace":
        """Scale so the normal has unit length (distances become metric)."""
        n = math.hypot(self.ax, self.ay)
        return HalfSpace(self.ax / n, self.ay / n, self.b / n)

    def relaxed(self, slack: float) -> "HalfSpace":
        """The halfspace loosened by ``slack`` (``a . z <= b + slack``)."""
        if slack < 0:
            raise ValueError("slack must be non-negative")
        return HalfSpace(self.ax, self.ay, self.b + slack)

    def boundary_distance(self, p: Point) -> float:
        """Perpendicular distance from ``p`` to the boundary line."""
        n = math.hypot(self.ax, self.ay)
        return abs(self.ax * p.x + self.ay * p.y - self.b) / n

    def as_row(self) -> tuple[float, float, float]:
        """``(ax, ay, b)`` for stacking into matrix form."""
        return (self.ax, self.ay, self.b)


def bisector_halfspace(near: Point, far: Point) -> HalfSpace:
    """Halfspace of points at least as close to ``near`` as to ``far``.

    This is Eq. 7 of the paper: closer to AP ``i`` (= ``near``) than AP
    ``j`` (= ``far``) iff ``2(xj - xi) x + 2(yj - yi) y <= xj^2 + yj^2 -
    xi^2 - yi^2``.
    """
    if near.almost_equals(far):
        raise ValueError("bisector of coincident points is undefined")
    ax = 2.0 * (far.x - near.x)
    ay = 2.0 * (far.y - near.y)
    b = far.x**2 + far.y**2 - near.x**2 - near.y**2
    return HalfSpace(ax, ay, b)


def clip_polygon(polygon: Polygon | None, hs: HalfSpace) -> Polygon | None:
    """Clip a convex polygon by one halfspace (Sutherland–Hodgman).

    Returns ``None`` when the intersection is empty or degenerate (area
    below :data:`~repro.geometry.primitives.EPS`).
    """
    if polygon is None:
        return None
    verts = polygon.vertices
    out: list[Point] = []
    n = len(verts)
    for i in range(n):
        cur = verts[i]
        nxt = verts[(i + 1) % n]
        cur_in = hs.evaluate(cur) >= -EPS
        nxt_in = hs.evaluate(nxt) >= -EPS
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            # Edge crosses the boundary line: add the crossing point.
            denom = hs.ax * (nxt.x - cur.x) + hs.ay * (nxt.y - cur.y)
            if abs(denom) > EPS:
                t = (hs.b - hs.ax * cur.x - hs.ay * cur.y) / denom
                t = max(0.0, min(1.0, t))
                out.append(cur + (nxt - cur) * t)
    cleaned = _dedupe(out)
    if len(cleaned) < 3:
        return None
    clipped = Polygon(tuple(cleaned))
    if clipped.area() <= EPS:
        return None
    return clipped


def intersect_halfspaces(
    halfspaces: Iterable[HalfSpace], bound: Polygon
) -> Polygon | None:
    """Intersect halfspaces with a bounding polygon.

    ``bound`` must be convex; it anchors the (possibly unbounded) halfspace
    intersection to the area of interest.  Returns the feasible polygon or
    ``None`` when the constraints are jointly infeasible inside ``bound``.

    Implementation note: this is the serving hot path's geometry kernel
    (one call per candidate halfspace set per piece per query), so the
    clipping runs on plain coordinate tuples and only the final region is
    materialized as a :class:`Polygon`.  Every arithmetic step replicates
    :func:`clip_polygon` exactly — same expressions, same evaluation
    order — so the result is bit-identical to chaining ``clip_polygon``.
    """
    verts = [(p.x, p.y) for p in bound.vertices]
    for hs in halfspaces:
        verts = _clip_coords(verts, hs.ax, hs.ay, hs.b)
        if verts is None:
            return None
    return Polygon(tuple(Point(x, y) for x, y in verts))


def _clip_coords(
    verts: list[tuple[float, float]], ax: float, ay: float, b: float
) -> list[tuple[float, float]] | None:
    """Coordinate-level :func:`clip_polygon`, bit-identical arithmetic.

    Takes and returns CCW vertex tuples; ``None`` for empty/degenerate
    intersections, mirroring ``clip_polygon``'s dedupe, vertex-count,
    orientation and area checks.
    """
    out: list[tuple[float, float]] = []
    n = len(verts)
    # One slack sign per vertex — the edge walk below reads each vertex
    # twice (as current and as next), so evaluating upfront halves the
    # arithmetic without changing any expression.
    inside = [b - (ax * x + ay * y) >= -EPS for x, y in verts]
    emit = out.append
    for i in range(n):
        k = i + 1 if i + 1 < n else 0
        cur_in = inside[i]
        if cur_in:
            emit(verts[i])
        if cur_in != inside[k]:
            # Edge crosses the boundary line: add the crossing point.
            cx, cy = verts[i]
            nx, ny = verts[k]
            denom = ax * (nx - cx) + ay * (ny - cy)
            if abs(denom) > EPS:
                t = (b - ax * cx - ay * cy) / denom
                t = max(0.0, min(1.0, t))
                emit((cx + (nx - cx) * t, cy + (ny - cy) * t))
    # Consecutive near-duplicate removal (== _dedupe on Point tuples).
    cleaned: list[tuple[float, float]] = []
    for x, y in out:
        if (
            not cleaned
            or abs(cleaned[-1][0] - x) > 1e-9
            or abs(cleaned[-1][1] - y) > 1e-9
        ):
            cleaned.append((x, y))
    if (
        len(cleaned) > 1
        and abs(cleaned[0][0] - cleaned[-1][0]) <= 1e-9
        and abs(cleaned[0][1] - cleaned[-1][1]) <= 1e-9
    ):
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    # Shoelace, replicating Polygon.signed_area term order exactly.
    total = 0.0
    k = len(cleaned)
    for i in range(k):
        px, py = cleaned[i]
        qx, qy = cleaned[(i + 1) % k]
        total += px * qy - qx * py
    signed = total / 2.0
    if abs(signed) <= EPS:
        return None
    if signed < 0:
        # Polygon.__post_init__ normalizes orientation the same way.
        cleaned.reverse()
    return cleaned


def halfspaces_to_matrix(
    halfspaces: Sequence[HalfSpace],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack halfspaces into ``(A, b)`` with rows ``a_i . z <= b_i``."""
    if not halfspaces:
        return np.zeros((0, 2)), np.zeros(0)
    a = np.array([[h.ax, h.ay] for h in halfspaces], dtype=float)
    b = np.array([h.b for h in halfspaces], dtype=float)
    return a, b


def _dedupe(points: list[Point], tol: float = 1e-9) -> list[Point]:
    """Drop consecutive (cyclically) near-duplicate vertices."""
    if not points:
        return []
    out: list[Point] = []
    for p in points:
        if not out or not out[-1].almost_equals(p, tol):
            out.append(p)
    if len(out) > 1 and out[0].almost_equals(out[-1], tol):
        out.pop()
    return out
