"""Halfspaces and 2-D halfspace intersection by polygon clipping.

Every proximity judgement in NomLoc is a linear inequality
``a . z <= b`` (Eq. 7 of the paper).  Because the unknown ``z`` is a 2-D
position, the feasible region of any constraint stack is a convex polygon
and can be computed *exactly* by Sutherland–Hodgman clipping — no LP solver
is needed to find its centre.  The LP machinery in :mod:`repro.optimize` is
still used for the weighted relaxation (Eq. 19) and for the analytic /
Chebyshev centres; this module provides the exact geometric ground truth the
solvers are validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .polygon import Polygon
from .primitives import EPS, Point

__all__ = [
    "HalfSpace",
    "clip_polygon",
    "intersect_halfspaces",
    "intersect_halfspaces_batch",
    "bisector_halfspace",
    "halfspaces_to_matrix",
]


@dataclass(frozen=True, slots=True)
class HalfSpace:
    """The closed halfplane ``ax * x + ay * y <= b``."""

    ax: float
    ay: float
    b: float

    def __post_init__(self) -> None:
        if math.hypot(self.ax, self.ay) <= EPS:
            raise ValueError("halfspace normal must be non-zero")

    def evaluate(self, p: Point) -> float:
        """Signed slack ``b - a . p`` (non-negative inside)."""
        return self.b - (self.ax * p.x + self.ay * p.y)

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """True when ``p`` satisfies the inequality within ``tol``."""
        return self.evaluate(p) >= -tol

    def normalized(self) -> "HalfSpace":
        """Scale so the normal has unit length (distances become metric)."""
        n = math.hypot(self.ax, self.ay)
        return HalfSpace(self.ax / n, self.ay / n, self.b / n)

    def relaxed(self, slack: float) -> "HalfSpace":
        """The halfspace loosened by ``slack`` (``a . z <= b + slack``)."""
        if slack < 0:
            raise ValueError("slack must be non-negative")
        return HalfSpace(self.ax, self.ay, self.b + slack)

    def boundary_distance(self, p: Point) -> float:
        """Perpendicular distance from ``p`` to the boundary line."""
        n = math.hypot(self.ax, self.ay)
        return abs(self.ax * p.x + self.ay * p.y - self.b) / n

    def as_row(self) -> tuple[float, float, float]:
        """``(ax, ay, b)`` for stacking into matrix form."""
        return (self.ax, self.ay, self.b)


def bisector_halfspace(near: Point, far: Point) -> HalfSpace:
    """Halfspace of points at least as close to ``near`` as to ``far``.

    This is Eq. 7 of the paper: closer to AP ``i`` (= ``near``) than AP
    ``j`` (= ``far``) iff ``2(xj - xi) x + 2(yj - yi) y <= xj^2 + yj^2 -
    xi^2 - yi^2``.
    """
    if near.almost_equals(far):
        raise ValueError("bisector of coincident points is undefined")
    ax = 2.0 * (far.x - near.x)
    ay = 2.0 * (far.y - near.y)
    b = far.x**2 + far.y**2 - near.x**2 - near.y**2
    return HalfSpace(ax, ay, b)


def clip_polygon(polygon: Polygon | None, hs: HalfSpace) -> Polygon | None:
    """Clip a convex polygon by one halfspace (Sutherland–Hodgman).

    Returns ``None`` when the intersection is empty or degenerate (area
    below :data:`~repro.geometry.primitives.EPS`).
    """
    if polygon is None:
        return None
    verts = polygon.vertices
    out: list[Point] = []
    n = len(verts)
    for i in range(n):
        cur = verts[i]
        nxt = verts[(i + 1) % n]
        cur_in = hs.evaluate(cur) >= -EPS
        nxt_in = hs.evaluate(nxt) >= -EPS
        if cur_in:
            out.append(cur)
        if cur_in != nxt_in:
            # Edge crosses the boundary line: add the crossing point.
            denom = hs.ax * (nxt.x - cur.x) + hs.ay * (nxt.y - cur.y)
            if abs(denom) > EPS:
                t = (hs.b - hs.ax * cur.x - hs.ay * cur.y) / denom
                t = max(0.0, min(1.0, t))
                out.append(cur + (nxt - cur) * t)
    cleaned = _dedupe(out)
    if len(cleaned) < 3:
        return None
    clipped = Polygon(tuple(cleaned))
    if clipped.area() <= EPS:
        return None
    return clipped


def intersect_halfspaces(
    halfspaces: Iterable[HalfSpace], bound: Polygon
) -> Polygon | None:
    """Intersect halfspaces with a bounding polygon.

    ``bound`` must be convex; it anchors the (possibly unbounded) halfspace
    intersection to the area of interest.  Returns the feasible polygon or
    ``None`` when the constraints are jointly infeasible inside ``bound``.

    Implementation note: this is the serving hot path's geometry kernel
    (one call per candidate halfspace set per piece per query), so the
    clipping runs on plain coordinate tuples and only the final region is
    materialized as a :class:`Polygon`.  Every arithmetic step replicates
    :func:`clip_polygon` exactly — same expressions, same evaluation
    order — so the result is bit-identical to chaining ``clip_polygon``.
    """
    verts = [(p.x, p.y) for p in bound.vertices]
    for hs in halfspaces:
        verts = _clip_coords(verts, hs.ax, hs.ay, hs.b)
        if verts is None:
            return None
    return Polygon(tuple(Point(x, y) for x, y in verts))


def _clip_coords(
    verts: list[tuple[float, float]], ax: float, ay: float, b: float
) -> list[tuple[float, float]] | None:
    """Coordinate-level :func:`clip_polygon`, bit-identical arithmetic.

    Takes and returns CCW vertex tuples; ``None`` for empty/degenerate
    intersections, mirroring ``clip_polygon``'s dedupe, vertex-count,
    orientation and area checks.
    """
    out: list[tuple[float, float]] = []
    n = len(verts)
    # One slack sign per vertex — the edge walk below reads each vertex
    # twice (as current and as next), so evaluating upfront halves the
    # arithmetic without changing any expression.
    inside = [b - (ax * x + ay * y) >= -EPS for x, y in verts]
    emit = out.append
    for i in range(n):
        k = i + 1 if i + 1 < n else 0
        cur_in = inside[i]
        if cur_in:
            emit(verts[i])
        if cur_in != inside[k]:
            # Edge crosses the boundary line: add the crossing point.
            cx, cy = verts[i]
            nx, ny = verts[k]
            denom = ax * (nx - cx) + ay * (ny - cy)
            if abs(denom) > EPS:
                t = (b - ax * cx - ay * cy) / denom
                t = max(0.0, min(1.0, t))
                emit((cx + (nx - cx) * t, cy + (ny - cy) * t))
    # Consecutive near-duplicate removal (== _dedupe on Point tuples).
    cleaned: list[tuple[float, float]] = []
    for x, y in out:
        if (
            not cleaned
            or abs(cleaned[-1][0] - x) > 1e-9
            or abs(cleaned[-1][1] - y) > 1e-9
        ):
            cleaned.append((x, y))
    if (
        len(cleaned) > 1
        and abs(cleaned[0][0] - cleaned[-1][0]) <= 1e-9
        and abs(cleaned[0][1] - cleaned[-1][1]) <= 1e-9
    ):
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    # Shoelace, replicating Polygon.signed_area term order exactly.
    total = 0.0
    k = len(cleaned)
    for i in range(k):
        px, py = cleaned[i]
        qx, qy = cleaned[(i + 1) % k]
        total += px * qy - qx * py
    signed = total / 2.0
    if abs(signed) <= EPS:
        return None
    if signed < 0:
        # Polygon.__post_init__ normalizes orientation the same way.
        cleaned.reverse()
    return cleaned


#: Below this many cutting lanes a clip step runs the scalar kernel per
#: lane; above it the stacked emission machinery wins.
_SCALAR_LANES = 12


def _intersect_rows(
    a: np.ndarray, b: np.ndarray, bound: Polygon
) -> Polygon | None:
    """Scalar reference: clip one ``(a, b)`` stack row by row.

    Equivalent to :func:`intersect_halfspaces` over
    ``[HalfSpace(a[j, 0], a[j, 1], b[j]) for j]`` — it drives the same
    :func:`_clip_coords` kernel — without constructing the objects.
    """
    verts: list[tuple[float, float]] | None
    verts = [(p.x, p.y) for p in bound.vertices]
    for j in range(len(b)):
        verts = _clip_coords(verts, float(a[j, 0]), float(a[j, 1]), float(b[j]))
        if verts is None:
            return None
    return Polygon(tuple(Point(float(px), float(py)) for px, py in verts))


def intersect_halfspaces_batch(
    systems: Sequence[tuple[np.ndarray, np.ndarray]], bound: Polygon
) -> list[Polygon | None]:
    """Clip many halfspace stacks against one convex ``bound`` in lockstep.

    ``systems`` holds one lane per entry: ``(a, b)`` with ``a`` of shape
    ``(m, 2)`` and ``b`` of shape ``(m,)``, rows meaning ``a . z <= b``.
    Lanes may have different row counts; shorter lanes idle while longer
    ones keep clipping.  Returns one ``Polygon | None`` per lane,
    **bit-identical** to running :func:`intersect_halfspaces` on that
    lane alone: every arithmetic expression replicates
    :func:`_clip_coords` with the same operations in the same order,
    evaluated elementwise across lanes, and the order-sensitive steps
    (vertex emission, duplicate removal, the shoelace accumulation) are
    driven index-by-index rather than through reordered reductions.
    """
    lanes = len(systems)
    if lanes == 0:
        return []
    if lanes == 1:
        a, b = systems[0]
        return [_intersect_rows(np.asarray(a, float), np.asarray(b, float), bound)]

    rows = np.array([len(b) for _, b in systems])
    max_m = int(rows.max())
    bverts = bound.vertices
    nb = len(bverts)
    # Halfplane-clipping a convex polygon adds at most one net vertex, so
    # nb + max_m columns bound every lane's vertex count; one extra slot
    # holds a cyclic duplicate of the first vertex so "next vertex of i"
    # is always column i + 1 and no gather is ever needed.
    cap = nb + max_m + 2
    width = cap + 1

    ha = np.zeros((lanes, max_m, 2))
    hb = np.zeros((lanes, max_m))
    for lane, (la, lb) in enumerate(systems):
        m = len(lb)
        if m:
            ha[lane, :m] = la
            hb[lane, :m] = lb
    hax = ha[:, :, 0]
    hay = ha[:, :, 1]

    x = np.zeros((lanes, width))
    y = np.zeros((lanes, width))
    for i, p in enumerate(bverts):
        x[:, i] = p.x
        y[:, i] = p.y
    x[:, nb] = bverts[0].x
    y[:, nb] = bverts[0].y
    cnt = np.full(lanes, nb)
    alive = np.ones(lanes, dtype=bool)
    lane_idx = np.arange(lanes)
    col = np.arange(2 * width)

    # Conservative per-lane bounding box of the current polygon.  A row
    # whose halfplane contains the whole box contains the polygon, so the
    # clip is a no-op and the lane skips the step entirely; the margin
    # keeps the box test strictly conservative against the per-vertex
    # >= -EPS test under floating-point rounding.
    bxmin = np.full(lanes, min(p.x for p in bverts))
    bxmax = np.full(lanes, max(p.x for p in bverts))
    bymin = np.full(lanes, min(p.y for p in bverts))
    bymax = np.full(lanes, max(p.y for p in bverts))
    noop_floor = -EPS + 1e-12

    emw = 2 * cap + 2
    em = np.zeros((lanes, emw), dtype=bool)
    ex = np.zeros((lanes, emw))
    ey = np.zeros((lanes, emw))
    ox = np.zeros((lanes, emw))
    oy = np.zeros((lanes, emw))

    with np.errstate(divide="ignore", invalid="ignore"):
        for j in range(max_m):
            act = alive & (j < rows)
            if not act.any():
                break
            ax = hax[:, j]
            ay = hay[:, j]
            bb = hb[:, j]
            worst = bb - (
                np.maximum(ax * bxmin, ax * bxmax)
                + np.maximum(ay * bymin, ay * bymax)
            )
            flag = act & (worst < noop_floor)
            nflag = int(flag.sum())
            if nflag == 0:
                continue
            if nflag <= _SCALAR_LANES:
                # Few lanes actually cut: the scalar kernel per lane is
                # cheaper than the stacked emission machinery.
                for lane in np.flatnonzero(flag):
                    k = int(cnt[lane])
                    verts = list(
                        zip(x[lane, :k].tolist(), y[lane, :k].tolist())
                    )
                    out = _clip_coords(
                        verts, float(ax[lane]), float(ay[lane]), float(bb[lane])
                    )
                    if out is None:
                        alive[lane] = False
                        continue
                    k2 = len(out)
                    vx = [p[0] for p in out]
                    vy = [p[1] for p in out]
                    x[lane, :k2] = vx
                    y[lane, :k2] = vy
                    x[lane, k2] = vx[0]
                    y[lane, k2] = vy[0]
                    cnt[lane] = k2
                    bxmin[lane] = min(vx)
                    bxmax[lane] = max(vx)
                    bymin[lane] = min(vy)
                    bymax[lane] = max(vy)
                continue

            v = int(cnt[flag].max())
            w = v + 1
            xs = x[:, :w]
            ys = y[:, :w]
            # Two groupings on purpose: the inside test is
            # b - (ax*x + ay*y), the crossing numerator b - ax*x - ay*y —
            # exactly the scalar kernel's expressions.
            ins = (bb[:, None] - (ax[:, None] * xs + ay[:, None] * ys)) >= -EPS
            num = bb[:, None] - ax[:, None] * xs - ay[:, None] * ys
            valid = flag[:, None] & (col[None, :v] < cnt[:, None])
            insc = ins[:, :v]
            insk = ins[:, 1:w]
            dx = xs[:, 1:w] - xs[:, :v]
            dy = ys[:, 1:w] - ys[:, :v]
            den = ax[:, None] * dx + ay[:, None] * dy
            cross = valid & (insc != insk) & (np.abs(den) > EPS)
            t = num[:, :v] / den
            t = np.where(cross, t, 0.0)  # keep masked lanes finite
            np.minimum(t, 1.0, out=t)
            np.maximum(t, 0.0, out=t)

            # Emission, interleaved exactly like the scalar walk: for
            # each vertex, current-if-inside then crossing-if-crossing.
            b2 = 2 * v
            emj = em[:, :b2]
            emj[:, 0::2] = valid & insc
            emj[:, 1::2] = cross
            exj = ex[:, :b2]
            eyj = ey[:, :b2]
            exj[:, 0::2] = xs[:, :v]
            exj[:, 1::2] = xs[:, :v] + dx * t
            eyj[:, 0::2] = ys[:, :v]
            eyj[:, 1::2] = ys[:, :v] + dy * t
            pos = emj.cumsum(axis=1)
            out_cnt = pos[:, -1].copy()
            if int(out_cnt.max()) > cap:  # pragma: no cover - pathological
                return [
                    _intersect_rows(
                        np.asarray(la, float), np.asarray(lb, float), bound
                    )
                    for la, lb in systems
                ]
            np.subtract(pos, 1, out=pos)
            flat = (lane_idx[:, None] * emw + pos)[emj]
            ox.ravel()[flat] = exj[emj]
            oy.ravel()[flat] = eyj[emj]

            # Consecutive near-duplicate removal.  If no emitted vertex
            # sits within tolerance of its predecessor the scalar
            # last-kept scan keeps everything (its first drop is always
            # an adjacent one), so only lanes with an adjacent duplicate
            # need the exact sequential walk.
            mo = int(out_cnt.max())
            adj = (
                flag[:, None]
                & (col[None, 1:mo] < out_cnt[:, None])
                & (np.abs(ox[:, 1:mo] - ox[:, : mo - 1]) <= 1e-9)
                & (np.abs(oy[:, 1:mo] - oy[:, : mo - 1]) <= 1e-9)
            )
            if adj.any():
                for lane in np.flatnonzero(adj.any(axis=1)):
                    cleaned: list[tuple[float, float]] = []
                    for i in range(int(out_cnt[lane])):
                        cx, cy = ox[lane, i], oy[lane, i]
                        if (
                            not cleaned
                            or abs(cleaned[-1][0] - cx) > 1e-9
                            or abs(cleaned[-1][1] - cy) > 1e-9
                        ):
                            cleaned.append((cx, cy))
                    k = len(cleaned)
                    ox[lane, :k] = [p[0] for p in cleaned]
                    oy[lane, :k] = [p[1] for p in cleaned]
                    out_cnt[lane] = k

            # Cyclic wrap-around: drop the last vertex when it closes
            # onto the first within tolerance.
            last = out_cnt - 1
            wrap = (
                flag
                & (out_cnt > 1)
                & (np.abs(ox[:, 0] - ox[lane_idx, last]) <= 1e-9)
                & (np.abs(oy[:, 0] - oy[lane_idx, last]) <= 1e-9)
            )
            out_cnt = out_cnt - wrap

            dead = flag & (out_cnt < 3)
            cand = flag & ~dead
            if cand.any():
                v2 = int(out_cnt[cand].max())
                ox[lane_idx, out_cnt] = ox[:, 0]  # cyclic duplicate
                oy[lane_idx, out_cnt] = oy[:, 0]
                # Shoelace with sequential accumulation (index order
                # matches the scalar loop; padded columns add a literal
                # +0.0, which only ever flips the sign of an exact zero
                # — a region both paths reject as degenerate anyway).
                inp = cand[:, None] & (col[None, :v2] < out_cnt[:, None])
                terms = np.where(
                    inp,
                    ox[:, :v2] * oy[:, 1 : v2 + 1]
                    - ox[:, 1 : v2 + 1] * oy[:, :v2],
                    0.0,
                )
                total = np.zeros(lanes)
                for i in range(v2):
                    total = total + terms[:, i]
                signed = total / 2.0
                dead |= cand & (np.abs(signed) <= EPS)
                rev = cand & ~dead & (signed < 0.0)
                if rev.any():
                    for lane in np.flatnonzero(rev):
                        k = int(out_cnt[lane])
                        ox[lane, :k] = ox[lane, :k][::-1].copy()
                        oy[lane, :k] = oy[lane, :k][::-1].copy()
                        ox[lane, k] = ox[lane, 0]
                        oy[lane, k] = oy[lane, 0]
                keep = flag & ~dead
                if keep.any():
                    x[keep] = ox[keep, :width]
                    y[keep] = oy[keep, :width]
                    cnt[keep] = out_cnt[keep]
                    kept = col[None, :v2] < out_cnt[:, None]
                    bxmin[keep] = np.where(kept, ox[:, :v2], np.inf).min(
                        axis=1
                    )[keep]
                    bxmax[keep] = np.where(kept, ox[:, :v2], -np.inf).max(
                        axis=1
                    )[keep]
                    bymin[keep] = np.where(kept, oy[:, :v2], np.inf).min(
                        axis=1
                    )[keep]
                    bymax[keep] = np.where(kept, oy[:, :v2], -np.inf).max(
                        axis=1
                    )[keep]
            alive[dead] = False

    results: list[Polygon | None] = []
    for lane in range(lanes):
        if not alive[lane]:
            results.append(None)
            continue
        k = int(cnt[lane])
        results.append(
            Polygon(
                tuple(
                    Point(float(x[lane, i]), float(y[lane, i])) for i in range(k)
                )
            )
        )
    return results


def halfspaces_to_matrix(
    halfspaces: Sequence[HalfSpace],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack halfspaces into ``(A, b)`` with rows ``a_i . z <= b_i``."""
    if not halfspaces:
        return np.zeros((0, 2)), np.zeros(0)
    a = np.array([[h.ax, h.ay] for h in halfspaces], dtype=float)
    b = np.array([h.b for h in halfspaces], dtype=float)
    return a, b


def _dedupe(points: list[Point], tol: float = 1e-9) -> list[Point]:
    """Drop consecutive (cyclically) near-duplicate vertices."""
    if not points:
        return []
    out: list[Point] = []
    for p in points:
        if not out or not out[-1].almost_equals(p, tol):
            out.append(p)
    if len(out) > 1 and out[0].almost_equals(out[-1], tol):
        out.pop()
    return out
