"""Mirror reflections for virtual APs (area boundary restriction).

Sec. IV-B2 of the paper bounds the feasible region to the area of interest
by introducing *virtual APs* (VAPs): for a reference AP inside the area,
mirror its position across each boundary edge.  The object is necessarily
closer to the real AP than to any of its mirror images, which yields one
perpendicular-bisector constraint per boundary edge — and that bisector is
exactly the boundary line itself.
"""

from __future__ import annotations

from .halfspace import HalfSpace, bisector_halfspace
from .polygon import Polygon
from .primitives import EPS, Point, Segment, dot

__all__ = ["reflect_point", "virtual_aps", "boundary_halfspaces"]


def reflect_point(p: Point, edge: Segment) -> Point:
    """Mirror image of ``p`` across the infinite line through ``edge``."""
    d = edge.b - edge.a
    dd = dot(d, d)
    if dd <= EPS:
        raise ValueError("cannot reflect across a degenerate edge")
    t = dot(p - edge.a, d) / dd
    foot = edge.a + d * t
    return Point(2.0 * foot.x - p.x, 2.0 * foot.y - p.y)


def virtual_aps(anchor: Point, area: Polygon) -> list[Point]:
    """Mirror ``anchor`` across every edge of ``area`` (the paper's VAPs).

    ``anchor`` must lie strictly inside ``area``; the paper notes "the site
    of AP 1 could be any other site within the area".
    """
    if not area.contains(anchor, boundary=False):
        raise ValueError("the VAP anchor must lie strictly inside the area")
    return [reflect_point(anchor, edge) for edge in area.edges()]


def boundary_halfspaces(anchor: Point, area: Polygon) -> list[HalfSpace]:
    """Boundary constraints ``A' z <= b'`` of Eq. 9–11.

    One halfspace per boundary edge: closer to ``anchor`` than to the VAP
    mirrored across that edge.  For a convex area the conjunction of these
    halfspaces is exactly the area itself.
    """
    return [
        bisector_halfspace(anchor, vap) for vap in virtual_aps(anchor, area)
    ]
