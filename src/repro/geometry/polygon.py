"""Simple-polygon operations: area, centroid, containment, sampling.

Polygons model both the area-of-interest boundary (Sec. IV-B2 of the paper,
"area boundary restriction") and clutter obstacles inside a floor plan.
Vertices are stored counter-clockwise; constructors normalize orientation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .primitives import EPS, Point, Segment, cross, segments_intersect

__all__ = ["Polygon"]


@dataclass(frozen=True)
class Polygon:
    """A simple (non self-intersecting) polygon with CCW vertex order."""

    vertices: tuple[Point, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        if self.signed_area() < 0:
            object.__setattr__(self, "vertices", tuple(reversed(self.vertices)))
        # Lazily filled caches (the dataclass is frozen; geometry queries on
        # floor plans are hot paths in the ray tracer).
        object.__setattr__(self, "_edges_cache", None)
        object.__setattr__(self, "_bbox_cache", None)
        object.__setattr__(self, "_convex_cache", None)

    @classmethod
    def from_coords(cls, coords: Iterable[tuple[float, float]]) -> "Polygon":
        """Build a polygon from ``(x, y)`` pairs."""
        return cls(tuple(Point(x, y) for x, y in coords))

    @classmethod
    def rectangle(cls, x0: float, y0: float, x1: float, y1: float) -> "Polygon":
        """Axis-aligned rectangle with corners ``(x0, y0)`` and ``(x1, y1)``."""
        if x1 <= x0 or y1 <= y0:
            raise ValueError("rectangle needs x1 > x0 and y1 > y0")
        return cls.from_coords([(x0, y0), (x1, y0), (x1, y1), (x0, y1)])

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    def signed_area(self) -> float:
        """Shoelace signed area (positive for CCW order)."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    def area(self) -> float:
        """Absolute enclosed area in square metres."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total boundary length in metres."""
        return sum(e.length() for e in self.edges())

    def centroid(self) -> Point:
        """Area centroid (exact, shoelace-weighted)."""
        a = self.signed_area()
        if abs(a) <= EPS:
            return Point.centroid(self.vertices)
        cx = cy = 0.0
        n = len(self.vertices)
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            w = p.x * q.y - q.x * p.y
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        return Point(cx / (6.0 * a), cy / (6.0 * a))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the vertex set (cached)."""
        cached = getattr(self, "_bbox_cache", None)
        if cached is None:
            xs = [p.x for p in self.vertices]
            ys = [p.y for p in self.vertices]
            cached = (min(xs), min(ys), max(xs), max(ys))
            object.__setattr__(self, "_bbox_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def edges(self) -> list[Segment]:
        """Boundary edges in CCW order, one per vertex (cached)."""
        cached = getattr(self, "_edges_cache", None)
        if cached is None:
            n = len(self.vertices)
            cached = [
                Segment(self.vertices[i], self.vertices[(i + 1) % n])
                for i in range(n)
            ]
            object.__setattr__(self, "_edges_cache", cached)
        return cached

    def is_convex(self, tol: float = EPS) -> bool:
        """True when every interior angle is at most 180 degrees (cached
        for the default tolerance)."""
        if tol == EPS:
            cached = getattr(self, "_convex_cache", None)
            if cached is not None:
                return cached
        n = len(self.vertices)
        result = True
        for i in range(n):
            o = self.vertices[i]
            a = self.vertices[(i + 1) % n]
            b = self.vertices[(i + 2) % n]
            if cross(o, a, b) < -tol:
                result = False
                break
        if tol == EPS:
            object.__setattr__(self, "_convex_cache", result)
        return result

    def reflex_vertex_indices(self, tol: float = EPS) -> list[int]:
        """Indices of vertices whose interior angle exceeds 180 degrees."""
        n = len(self.vertices)
        out = []
        for i in range(n):
            prev = self.vertices[(i - 1) % n]
            cur = self.vertices[i]
            nxt = self.vertices[(i + 1) % n]
            if cross(prev, cur, nxt) < -tol:
                out.append(i)
        return out

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, p: Point, boundary: bool = True) -> bool:
        """Point-in-polygon test (ray casting, boundary-inclusive by default)."""
        xmin, ymin, xmax, ymax = self.bounding_box()
        pad = 1e-7
        if not (xmin - pad <= p.x <= xmax + pad and ymin - pad <= p.y <= ymax + pad):
            return False
        for edge in self.edges():
            if edge.contains_point(p):
                return boundary
        inside = False
        n = len(self.vertices)
        j = n - 1
        for i in range(n):
            vi, vj = self.vertices[i], self.vertices[j]
            if (vi.y > p.y) != (vj.y > p.y):
                x_cross = vj.x + (p.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def intersects_segment(self, seg: Segment) -> bool:
        """True when ``seg`` crosses or touches the polygon boundary."""
        return any(segments_intersect(seg, edge) for edge in self.edges())

    def segment_crosses_interior(self, seg: Segment) -> bool:
        """True when any interior portion of ``seg`` lies strictly inside.

        Used for obstacle blocking tests: a radio path is blocked by an
        obstacle polygon iff some part of the path passes through its
        interior (merely grazing a wall or corner does not count).  Convex
        polygons use exact Cyrus-Beck clipping; non-convex ones fall back
        to dense point sampling.
        """
        xmin, ymin, xmax, ymax = self.bounding_box()
        if (
            max(seg.a.x, seg.b.x) < xmin - EPS
            or min(seg.a.x, seg.b.x) > xmax + EPS
            or max(seg.a.y, seg.b.y) < ymin - EPS
            or min(seg.a.y, seg.b.y) > ymax + EPS
        ):
            return False
        if self.is_convex():
            interval = self._clip_segment_convex(seg)
            if interval is None:
                return False
            t0, t1 = interval
            if t1 - t0 <= 1e-9:
                return False
            # Positive overlap length; confirm the overlap midpoint is
            # strictly interior (rules out sliding along an edge).
            mid = seg.a + (seg.b - seg.a) * ((t0 + t1) / 2.0)
            return self.contains(mid, boundary=False)
        samples = 16
        for k in range(1, samples):
            t = k / samples
            p = seg.a + (seg.b - seg.a) * t
            if self.contains(p, boundary=False):
                return True
        return self.contains(seg.midpoint(), boundary=False)

    def _clip_segment_convex(self, seg: Segment) -> tuple[float, float] | None:
        """Cyrus-Beck: parameter interval of ``seg`` inside this convex
        polygon, or ``None`` when disjoint."""
        dx = seg.b.x - seg.a.x
        dy = seg.b.y - seg.a.y
        t0, t1 = 0.0, 1.0
        n = len(self.vertices)
        for i in range(n):
            p = self.vertices[i]
            q = self.vertices[(i + 1) % n]
            # Inward normal of CCW edge p->q is (-(q.y-p.y), q.x-p.x).
            nx = -(q.y - p.y)
            ny = q.x - p.x
            denom = nx * dx + ny * dy
            num = nx * (p.x - seg.a.x) + ny * (p.y - seg.a.y)
            if abs(denom) <= EPS:
                if num > EPS:  # segment parallel and fully outside this edge
                    return None
                continue
            t = num / denom
            if denom < 0:  # entering to leaving as t grows: this is an exit
                t1 = min(t1, t)
            else:
                t0 = max(t0, t)
            if t0 > t1:
                return None
        return (t0, t1)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_points(
        self, count: int, rng: np.random.Generator, margin: float = 0.0
    ) -> list[Point]:
        """Uniformly sample ``count`` interior points by rejection.

        ``margin`` shrinks the acceptance region away from the boundary by
        requiring sampled points to keep that distance from every edge.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        xmin, ymin, xmax, ymax = self.bounding_box()
        out: list[Point] = []
        attempts = 0
        max_attempts = max(1000, 2000 * max(count, 1))
        edges = self.edges()
        while len(out) < count:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    "rejection sampling failed; polygon too thin for margin "
                    f"{margin}"
                )
            p = Point(
                float(rng.uniform(xmin, xmax)), float(rng.uniform(ymin, ymax))
            )
            if not self.contains(p, boundary=False):
                continue
            if margin > 0.0:
                from .primitives import distance_point_to_segment

                if any(distance_point_to_segment(p, e) < margin for e in edges):
                    continue
            out.append(p)
        return out

    def grid_points(self, spacing: float, margin: float = 0.0) -> list[Point]:
        """Interior points on a regular grid with the given spacing."""
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        xmin, ymin, xmax, ymax = self.bounding_box()
        from .primitives import distance_point_to_segment

        edges = self.edges()
        pts: list[Point] = []
        y = ymin + spacing / 2.0
        while y < ymax:
            x = xmin + spacing / 2.0
            while x < xmax:
                p = Point(x, y)
                if self.contains(p, boundary=False) and (
                    margin <= 0.0
                    or all(
                        distance_point_to_segment(p, e) >= margin for e in edges
                    )
                ):
                    pts.append(p)
                x += spacing
            y += spacing
        return pts

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy of the polygon shifted by ``(dx, dy)``."""
        return Polygon(tuple(Point(p.x + dx, p.y + dy) for p in self.vertices))

    def __contains__(self, p: Point) -> bool:
        return self.contains(p)
