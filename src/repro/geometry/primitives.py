"""Planar geometric primitives used throughout the NomLoc reproduction.

Everything in the system lives in a 2-D floor plan, so the primitives are
deliberately small: an immutable :class:`Point`, an immutable
:class:`Segment`, and a handful of exact-ish predicates built on top of a
signed-area orientation test.  All coordinates are metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "EPS",
    "Point",
    "Segment",
    "orientation",
    "cross",
    "dot",
    "segments_intersect",
    "segment_intersection_point",
    "distance_point_to_segment",
]

#: Absolute tolerance used by the geometric predicates.  Floor plans are a
#: few tens of metres across, so nanometre precision is ample slack.
EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """A point (or free vector) in the floor-plan plane, in metres."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` (Eq. 5 of the paper)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def norm(self) -> float:
        """Euclidean norm when the point is interpreted as a vector."""
        return math.hypot(self.x, self.y)

    def almost_equals(self, other: "Point", tol: float = EPS) -> bool:
        """True when both coordinates agree within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``; convenient for numpy interop."""
        return (self.x, self.y)

    @staticmethod
    def centroid(points: Iterable["Point"]) -> "Point":
        """Arithmetic mean of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise ValueError("centroid of an empty point set is undefined")
        sx = sum(p.x for p in pts)
        sy = sum(p.y for p in pts)
        return Point(sx / len(pts), sy / len(pts))


@dataclass(frozen=True, slots=True)
class Segment:
    """A closed line segment between two points."""

    a: Point
    b: Point

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        """The point halfway between the endpoints."""
        return Point((self.a.x + self.b.x) / 2.0, (self.a.y + self.b.y) / 2.0)

    def direction(self) -> Point:
        """Unit direction vector from ``a`` to ``b``."""
        d = self.b - self.a
        n = d.norm()
        if n <= EPS:
            raise ValueError("degenerate segment has no direction")
        return d / n

    def normal(self) -> Point:
        """Unit normal (left of the a→b direction)."""
        d = self.direction()
        return Point(-d.y, d.x)

    def contains_point(self, p: Point, tol: float = 1e-7) -> bool:
        """True when ``p`` lies on the segment within ``tol`` metres."""
        return distance_point_to_segment(p, self) <= tol


def cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of ``(a - o) x (b - o)``; twice the signed triangle area."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def dot(u: Point, v: Point) -> float:
    """Dot product of two points interpreted as vectors."""
    return u.x * v.x + u.y * v.y


def orientation(o: Point, a: Point, b: Point, tol: float = EPS) -> int:
    """Orientation of the triple ``(o, a, b)``.

    Returns ``+1`` for a counter-clockwise turn, ``-1`` for clockwise and
    ``0`` when the three points are collinear within ``tol``.
    """
    c = cross(o, a, b)
    if c > tol:
        return 1
    if c < -tol:
        return -1
    return 0


def _on_segment_collinear(p: Point, q: Point, r: Point) -> bool:
    """Assuming p, q, r collinear: does ``q`` lie on segment ``pr``?"""
    return (
        min(p.x, r.x) - EPS <= q.x <= max(p.x, r.x) + EPS
        and min(p.y, r.y) - EPS <= q.y <= max(p.y, r.y) + EPS
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True when the two closed segments share at least one point."""
    p1, q1, p2, q2 = s1.a, s1.b, s2.a, s2.b
    o1 = orientation(p1, q1, p2)
    o2 = orientation(p1, q1, q2)
    o3 = orientation(p2, q2, p1)
    o4 = orientation(p2, q2, q1)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment_collinear(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment_collinear(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment_collinear(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment_collinear(p2, q1, q2):
        return True
    return False


def segment_intersection_point(s1: Segment, s2: Segment) -> Point | None:
    """Intersection point of two segments, or ``None``.

    Whether an intersection *exists* is decided solely by
    :func:`segments_intersect`, so the predicate and this constructor can
    never disagree — this function only picks a representative point once
    the predicate says yes.  Collinear-overlap cases return the midpoint
    of the overlap region; near-degenerate crossings clamp the line-line
    parameter onto the segment so the returned point stays on ``s1``.
    """
    if not segments_intersect(s1, s2):
        return None
    p = s1.a
    r = s1.b - s1.a
    q = s2.a
    s = s2.b - s2.a
    denom = r.x * s.y - r.y * s.x
    qp = q - p
    if abs(denom) > EPS:
        # Proper crossing: line-line parameter, clamped onto s1 (the
        # predicate already certified the segments share a point, so any
        # out-of-range excess is pure floating-point noise).
        t = (qp.x * s.y - qp.y * s.x) / denom
        return p + r * max(0.0, min(1.0, t))
    # (Near-)parallel but intersecting: collinear overlap or an endpoint
    # touch.  Project s2's endpoints onto r and take the overlap midpoint.
    rr = dot(r, r)
    if rr <= EPS:  # s1 degenerate: its point is the intersection
        return p
    t0 = dot(qp, r) / rr
    t1 = dot(s2.b - p, r) / rr
    lo, hi = max(0.0, min(t0, t1)), min(1.0, max(t0, t1))
    return p + r * ((lo + hi) / 2.0)


def distance_point_to_segment(p: Point, seg: Segment) -> float:
    """Shortest Euclidean distance from ``p`` to the closed segment."""
    d = seg.b - seg.a
    dd = dot(d, d)
    if dd <= EPS:
        # Near-degenerate segment: the endpoints may still be up to
        # sqrt(EPS) apart, so take the nearer one.
        return min(p.distance_to(seg.a), p.distance_to(seg.b))
    t = dot(p - seg.a, d) / dd
    t = max(0.0, min(1.0, t))
    closest = seg.a + d * t
    return p.distance_to(closest)
