"""Measurement-layer robustness: fault injection, sanity, gating.

The layers beneath :mod:`repro.serving` assume every CSI batch is
trustworthy; this package drops that assumption.  It injects the
corruption real radios produce (:mod:`~repro.guard.faults`), detects it
structurally and statistically (:mod:`~repro.guard.sanity`,
:mod:`~repro.guard.quality`), and feeds the verdicts into the SP
pipeline as dropped rows and scaled weights
(:mod:`~repro.guard.policy`).  With nothing scheduled and nothing
flagged the guarded pipeline is bit-identical to the clean one —
``benchmarks/bench_guard.py`` enforces both that and the accuracy win
under corruption.
"""

from .faults import (
    LinkFault,
    LinkFaultInjector,
    LinkFaultKind,
    LinkFaultPlan,
    parse_fault_spec,
)
from .policy import (
    GateResult,
    GuardError,
    GuardedSystem,
    InsufficientLinksError,
    gate_records,
    run_selftest,
)
from .quality import GuardConfig, LinkStatus, LinkVerdict, assess_link
from .sanity import StructuralReport, inspect_batch

__all__ = [
    "LinkFaultKind",
    "LinkFault",
    "LinkFaultPlan",
    "LinkFaultInjector",
    "parse_fault_spec",
    "StructuralReport",
    "inspect_batch",
    "GuardConfig",
    "LinkStatus",
    "LinkVerdict",
    "assess_link",
    "GuardError",
    "InsufficientLinksError",
    "GateResult",
    "gate_records",
    "GuardedSystem",
    "run_selftest",
]
