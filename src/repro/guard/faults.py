"""Measurement-layer fault injection: corrupting CSI where radios fail.

The cluster's :mod:`repro.cluster.faults` drills *serving* failures
(crashed replicas, shed queues); this module drills the layer below —
the measurements themselves.  A :class:`LinkFaultPlan` scripts the
corruption modes a real CSI pipeline sees, and a seeded
:class:`LinkFaultInjector` applies them to
:class:`~repro.core.LinkRecord` batches at the channel boundary, before
any PDP estimation:

* ``SUBCARRIER_DROPOUT`` — the NIC reports exact-zero gains on a random
  subset of subcarriers (firmware drops, pilot failures);
* ``PACKET_LOSS`` — packets silently missing from the batch (the link's
  sample count falls short of the campaign's budget);
* ``NAN_BURST`` — a contiguous run of subcarriers comes back NaN
  (driver glitch mid-report);
* ``RSSI_SATURATION`` — front-end clipping: subcarrier amplitudes are
  hard-limited, flattening the channel's structure;
* ``PHASE_OFFSET`` — an unsynchronized oscillator smears per-subcarrier
  phase, dispersing CIR energy across taps and destroying the max-tap
  PDP estimate;
* ``AP_OUTAGE`` — the whole link vanishes (AP powered off mid-query).

Determinism contract: corruption for a link is a pure function of
``(seed, link name, per-link call index)``, so a drill replays
bit-identically regardless of AP iteration order or how other links are
faulted.  A link matched by **no** fault is returned untouched with
**zero** RNG consumption — composing an empty plan with the clean
pipeline is bit-identical to not composing it at all (enforced by
``benchmarks/bench_guard.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Sequence

import numpy as np

from ..channel.csi import CSIMeasurement
from ..core.system import LinkRecord

__all__ = [
    "LinkFaultKind",
    "LinkFault",
    "LinkFaultPlan",
    "LinkFaultInjector",
    "parse_fault_spec",
]


class LinkFaultKind(Enum):
    """The injectable measurement corruption modes."""

    SUBCARRIER_DROPOUT = "subcarrier-dropout"
    PACKET_LOSS = "packet-loss"
    NAN_BURST = "nan-burst"
    RSSI_SATURATION = "rssi-saturation"
    PHASE_OFFSET = "phase-offset"
    AP_OUTAGE = "ap-outage"


#: Fault kinds drawn once per ``corrupt()`` call for the whole link
#: (the failure is a property of the radio, not of single packets).
_LINK_LEVEL = frozenset(
    {
        LinkFaultKind.RSSI_SATURATION,
        LinkFaultKind.PHASE_OFFSET,
        LinkFaultKind.AP_OUTAGE,
    }
)


@dataclass(frozen=True)
class LinkFault:
    """One scripted corruption mode.

    Attributes
    ----------
    kind:
        Which corruption to apply.
    rate:
        Bernoulli probability in ``[0, 1]``: per *packet* for the
        packet-level kinds (dropout, loss, NaN burst), per ``corrupt()``
        *call* for the link-level kinds (saturation, phase, outage).
    ap:
        Restrict to one AP by name (a nomadic AP's per-site links
        ``"AP1@s2"`` match both their full name and the bare ``"AP1"``);
        ``None`` targets every link.
    dropout_fraction:
        Fraction of subcarriers zeroed per dropout-hit packet.
    burst_width:
        Length of the NaN subcarrier run per burst-hit packet.
    saturation_level:
        Clip ceiling as a fraction of each packet's peak subcarrier
        amplitude (lower = harsher clipping).
    phase_sigma_rad:
        Std of the per-subcarrier phase jitter (applied on top of a
        random constant offset) when a phase fault strikes.
    """

    kind: LinkFaultKind
    rate: float
    ap: str | None = None
    dropout_fraction: float = 0.25
    burst_width: int = 8
    saturation_level: float = 0.35
    phase_sigma_rad: float = 2.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        if not 0.0 < self.dropout_fraction <= 1.0:
            raise ValueError("dropout_fraction must be in (0, 1]")
        if self.burst_width < 1:
            raise ValueError("burst_width must be at least 1")
        if not 0.0 < self.saturation_level <= 1.0:
            raise ValueError("saturation_level must be in (0, 1]")
        if self.phase_sigma_rad < 0:
            raise ValueError("phase_sigma_rad must be non-negative")

    def matches(self, link_name: str) -> bool:
        """True when this fault targets the named link."""
        if self.ap is None:
            return True
        return link_name == self.ap or link_name.split("@", 1)[0] == self.ap


@dataclass(frozen=True)
class LinkFaultPlan:
    """An immutable script of measurement faults; empty by default.

    Mirrors the cluster's :class:`~repro.cluster.faults.FaultPlan`
    idiom — constructors read like the drill they describe::

        plan = LinkFaultPlan.nan_burst(0.3, ap="AP2")
        plan = plan.plus(LinkFaultPlan.outage(1.0, ap="AP4"))
    """

    faults: tuple[LinkFault, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- constructors ---------------------------------------------------
    @classmethod
    def subcarrier_dropout(
        cls, rate: float, ap: str | None = None, fraction: float = 0.25
    ) -> "LinkFaultPlan":
        """Packets with a random subset of subcarriers zeroed."""
        return cls(
            (
                LinkFault(
                    LinkFaultKind.SUBCARRIER_DROPOUT,
                    rate,
                    ap,
                    dropout_fraction=fraction,
                ),
            )
        )

    @classmethod
    def packet_loss(cls, rate: float, ap: str | None = None) -> "LinkFaultPlan":
        """Packets silently missing from the batch."""
        return cls((LinkFault(LinkFaultKind.PACKET_LOSS, rate, ap),))

    @classmethod
    def nan_burst(
        cls, rate: float, ap: str | None = None, width: int = 8
    ) -> "LinkFaultPlan":
        """Packets with a contiguous NaN subcarrier run."""
        return cls(
            (LinkFault(LinkFaultKind.NAN_BURST, rate, ap, burst_width=width),)
        )

    @classmethod
    def rssi_saturation(
        cls, rate: float, ap: str | None = None, level: float = 0.35
    ) -> "LinkFaultPlan":
        """Front-end clipping across the whole batch."""
        return cls(
            (
                LinkFault(
                    LinkFaultKind.RSSI_SATURATION,
                    rate,
                    ap,
                    saturation_level=level,
                ),
            )
        )

    @classmethod
    def phase_offset(
        cls, rate: float, ap: str | None = None, sigma_rad: float = 2.5
    ) -> "LinkFaultPlan":
        """Oscillator phase smear dispersing the CIR."""
        return cls(
            (
                LinkFault(
                    LinkFaultKind.PHASE_OFFSET,
                    rate,
                    ap,
                    phase_sigma_rad=sigma_rad,
                ),
            )
        )

    @classmethod
    def outage(cls, rate: float, ap: str | None = None) -> "LinkFaultPlan":
        """The whole link vanishing mid-query."""
        return cls((LinkFault(LinkFaultKind.AP_OUTAGE, rate, ap),))

    def plus(self, other: "LinkFaultPlan") -> "LinkFaultPlan":
        """Union of two plans (applied in concatenation order)."""
        return LinkFaultPlan(self.faults + other.faults)

    def faults_for(self, link_name: str) -> list[LinkFault]:
        """Faults targeting the named link, in plan order."""
        return [f for f in self.faults if f.matches(link_name)]


def parse_fault_spec(spec: str) -> LinkFault:
    """Parse one ``TYPE:RATE[:AP]`` CLI fault spec into a fault.

    ``TYPE`` is a :class:`LinkFaultKind` value (e.g. ``nan-burst``),
    ``RATE`` a probability in ``[0, 1]``, and the optional ``AP`` an AP
    name — ``repro guard --faults nan-burst:0.3:AP2``.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"fault spec {spec!r} must look like TYPE:RATE or TYPE:RATE:AP"
        )
    try:
        kind = LinkFaultKind(parts[0])
    except ValueError:
        known = ", ".join(k.value for k in LinkFaultKind)
        raise ValueError(
            f"unknown fault type {parts[0]!r}; known types: {known}"
        ) from None
    try:
        rate = float(parts[1])
    except ValueError:
        raise ValueError(f"fault rate {parts[1]!r} is not a number") from None
    ap = parts[2] if len(parts) == 3 else None
    return LinkFault(kind, rate, ap)


def _link_entropy(name: str) -> int:
    """A stable 64-bit integer derived from the link name.

    Feeds the per-link seed sequence, so corruption is independent of AP
    iteration order; Python's ``hash`` is salted per process and cannot
    be used here.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class LinkFaultInjector:
    """Applies a :class:`LinkFaultPlan` to link records, deterministically.

    Each ``corrupt()`` call on a link draws from a dedicated generator
    seeded by ``(seed, blake2b(link name), per-link call index)`` — the
    shared measurement RNG is never touched, so the clean pipeline's
    draws are unchanged no matter what is injected, and links with no
    matching faults consume nothing at all.
    """

    def __init__(self, plan: LinkFaultPlan | None = None, seed: int = 0) -> None:
        self.plan = plan or LinkFaultPlan()
        self.seed = seed
        self._calls: dict[str, int] = {}

    def corrupt(self, record: LinkRecord) -> LinkRecord:
        """One link's batch after this call's scripted corruption."""
        faults = self.plan.faults_for(record.name)
        if not faults:
            return record
        index = self._calls.get(record.name, 0)
        self._calls[record.name] = index + 1
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, _link_entropy(record.name), index]
            )
        )
        measurements = list(record.measurements)
        for fault in faults:
            measurements = self._apply(fault, measurements, rng)
        return replace(record, measurements=tuple(measurements))

    def corrupt_batch(
        self, records: Sequence[LinkRecord]
    ) -> list[LinkRecord]:
        """Corrupt every record of one query (one ``corrupt()`` each)."""
        return [self.corrupt(r) for r in records]

    # ------------------------------------------------------------------
    # Per-kind corruption
    # ------------------------------------------------------------------
    def _apply(
        self,
        fault: LinkFault,
        measurements: list[CSIMeasurement],
        rng: np.random.Generator,
    ) -> list[CSIMeasurement]:
        """Apply one fault; RNG draw order is fixed per (kind, batch)."""
        if fault.kind in _LINK_LEVEL:
            if rng.random() >= fault.rate:
                return measurements
            if fault.kind is LinkFaultKind.AP_OUTAGE:
                return []
            if fault.kind is LinkFaultKind.RSSI_SATURATION:
                return [self._saturate(m, fault) for m in measurements]
            return self._phase_smear(measurements, fault, rng)
        out: list[CSIMeasurement] = []
        for m in measurements:
            if rng.random() >= fault.rate:
                out.append(m)
                continue
            if fault.kind is LinkFaultKind.PACKET_LOSS:
                continue
            if fault.kind is LinkFaultKind.SUBCARRIER_DROPOUT:
                out.append(self._drop_subcarriers(m, fault, rng))
            else:
                out.append(self._nan_burst(m, fault, rng))
        return out

    @staticmethod
    def _drop_subcarriers(
        m: CSIMeasurement, fault: LinkFault, rng: np.random.Generator
    ) -> CSIMeasurement:
        """Zero a random subset of subcarriers (exact zeros, like firmware)."""
        n = len(m.csi)
        count = max(1, int(round(fault.dropout_fraction * n)))
        picks = rng.choice(n, size=count, replace=False)
        csi = m.csi.copy()
        csi[picks] = 0.0
        return CSIMeasurement(csi, m.config, m.rssi_dbm)

    @staticmethod
    def _nan_burst(
        m: CSIMeasurement, fault: LinkFault, rng: np.random.Generator
    ) -> CSIMeasurement:
        """NaN out a contiguous subcarrier window."""
        n = len(m.csi)
        width = min(fault.burst_width, n)
        start = int(rng.integers(0, n - width + 1))
        csi = m.csi.copy()
        csi[start : start + width] = complex(np.nan, np.nan)
        return CSIMeasurement(csi, m.config, m.rssi_dbm)

    @staticmethod
    def _saturate(m: CSIMeasurement, fault: LinkFault) -> CSIMeasurement:
        """Clip subcarrier amplitudes at a fraction of the packet peak."""
        amps = np.abs(m.csi)
        peak = float(amps.max())
        if peak <= 0.0:
            return m
        ceiling = fault.saturation_level * peak
        over = amps > ceiling
        if not over.any():
            return m
        csi = m.csi.copy()
        csi[over] = csi[over] / amps[over] * ceiling
        return CSIMeasurement(csi, m.config, m.rssi_dbm)

    @staticmethod
    def _phase_smear(
        measurements: list[CSIMeasurement],
        fault: LinkFault,
        rng: np.random.Generator,
    ) -> list[CSIMeasurement]:
        """One oscillator fault for the whole batch: constant offset plus
        per-subcarrier jitter, identical across packets (the LO is broken,
        not the packets)."""
        if not measurements:
            return measurements
        n = len(measurements[0].csi)
        offset = rng.uniform(0.0, 2.0 * np.pi)
        jitter = rng.normal(0.0, fault.phase_sigma_rad, size=n)
        rotation = np.exp(1j * (offset + jitter))
        out = []
        for m in measurements:
            if len(m.csi) != n:
                raise ValueError(
                    "phase fault requires a uniform subcarrier layout"
                )
            out.append(CSIMeasurement(m.csi * rotation, m.config, m.rssi_dbm))
        return out
