"""Degradation-aware localization: wiring verdicts into the SP pipeline.

The guard layer's decision rule (the "policy") is deliberately simple:

* ``REJECTED`` links contribute **no** anchor — every constraint row
  they would have generated is dropped before the relaxation LP;
* ``DEGRADED`` links keep their anchor, but every pairwise row touching
  them has its confidence weight scaled by the link's quality score
  (see :func:`~repro.core.constraints.pairwise_constraints`) — a noisy
  witness still testifies, just more quietly;
* ``OK`` links pass through untouched: with nothing degraded the gated
  pipeline is bit-identical to the ungated one.

:class:`GuardedSystem` composes a :class:`~repro.core.NomLocSystem`
with an optional :class:`~repro.guard.faults.LinkFaultInjector` and a
:class:`~repro.guard.quality.GuardConfig`, producing estimates that
carry ``confidence`` and ``degradation_reasons``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..core.constraints import Anchor
from ..core.localizer import LocationEstimate
from ..core.system import LinkRecord, NomLocSystem
from ..geometry import Point
from ..mobility import MobilityPattern
from ..obs import span
from .faults import LinkFaultInjector, LinkFaultPlan
from .quality import GuardConfig, LinkStatus, LinkVerdict, assess_link

__all__ = [
    "GuardError",
    "InsufficientLinksError",
    "GateResult",
    "gate_records",
    "GuardedSystem",
    "run_selftest",
]


class GuardError(RuntimeError):
    """Base error of the guard layer's gating decisions."""


class InsufficientLinksError(GuardError):
    """Too few links survived gating to partition space at all.

    Localization needs at least two usable anchors (one bisector); when
    gating rejects everything the caller must know *why* rather than get
    a cryptic LP failure, so the message lists each rejection.
    """


@dataclass(frozen=True)
class GateResult:
    """Everything the gate decided about one query's links.

    Attributes
    ----------
    anchors:
        Anchors of the usable (ok + degraded) links, in link order.
    quality_weights:
        Per-anchor quality scores for the relaxation LP, or ``None``
        when every link passed at full quality (which keeps the LP's
        weight arithmetic bit-identical to the ungated path).
    verdicts:
        Every link's ruling, in link order — including rejected ones.
    """

    anchors: tuple[Anchor, ...]
    quality_weights: dict[str, float] | None
    verdicts: tuple[LinkVerdict, ...]

    @property
    def degraded(self) -> tuple[str, ...]:
        """Names of links kept with reduced weight."""
        return tuple(
            v.name for v in self.verdicts if v.status is LinkStatus.DEGRADED
        )

    @property
    def rejected(self) -> tuple[str, ...]:
        """Names of links whose constraint rows were dropped."""
        return tuple(
            v.name for v in self.verdicts if v.status is LinkStatus.REJECTED
        )

    @property
    def confidence(self) -> float:
        """Mean per-link quality, rejected links counting as zero."""
        if not self.verdicts:
            return 0.0
        total = sum(v.quality if v.usable else 0.0 for v in self.verdicts)
        return total / len(self.verdicts)

    @property
    def reasons(self) -> tuple[str, ...]:
        """Sorted, deduplicated union of every link's gating reasons."""
        out: set[str] = set()
        for v in self.verdicts:
            out.update(v.reasons)
        return tuple(sorted(out))

    def to_dict(self) -> dict:
        """Plain-dict wire form of the whole gate outcome.

        Everything the serving layer needs to reproduce the gated query
        exactly survives: anchors (positions + PDPs, floats round-trip
        bit-exactly through JSON), quality weights, and every link's
        :meth:`~repro.guard.quality.LinkVerdict.to_dict` record.  This
        is what the gateway protocol carries in a request's optional
        ``gate`` section and what the verdict ledger persists.
        """
        return {
            "anchors": [
                {
                    "name": a.name,
                    "x": a.position.x,
                    "y": a.position.y,
                    "pdp": a.pdp,
                    "nomadic": a.nomadic,
                }
                for a in self.anchors
            ],
            "quality_weights": (
                None
                if self.quality_weights is None
                else dict(self.quality_weights)
            ),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GateResult":
        """Rebuild a gate outcome from its :meth:`to_dict` record."""
        anchors = tuple(
            Anchor(
                name=a["name"],
                position=Point(float(a["x"]), float(a["y"])),
                pdp=float(a["pdp"]),
                nomadic=bool(a.get("nomadic", False)),
            )
            for a in record.get("anchors") or ()
        )
        weights = record.get("quality_weights")
        return cls(
            anchors=anchors,
            quality_weights=None if weights is None else dict(weights),
            verdicts=tuple(
                LinkVerdict.from_dict(v) for v in record.get("verdicts") or ()
            ),
        )


def gate_records(
    records: Sequence[LinkRecord],
    expected_packets: int | None = None,
    config: GuardConfig | None = None,
) -> GateResult:
    """Assess every link of one query and assemble the gated anchor set.

    Links salvaged for ``dispersed-cir-energy`` get one extra repair
    here that a single link cannot do for itself: the *clean* links of
    the same gate set measure the channel's current max-tap-to-energy
    ratio directly, so the salvaged link's PDP is rebuilt as
    ``mean(clean pdp/energy) * energy`` — a per-query calibration that
    is far tighter than the global concentration prior (and entirely in
    the spirit of a calibration-free system: the prior comes from the
    same query, not from offline profiling).  A recalibrated link's
    residual error is comparable to ordinary packet noise, so its rows
    keep a full LP vote; the capped :attr:`LinkVerdict.quality` still
    flows into the estimate's reported confidence.  When no clean link
    exists to calibrate against, the verdict's global-prior PDP and
    capped weight are used as-is.  All of this fires only once a fault
    is detected — the zero-fault path stays bit-identical to the
    ungated pipeline.
    """
    cfg = config or GuardConfig()
    with span("guard.gate", links=len(records)) as sp:
        verdicts = tuple(
            assess_link(r, expected_packets, cfg) for r in records
        )
        clean_ratios = [
            v.pdp / v.energy
            for v in verdicts
            if v.status is LinkStatus.OK and v.energy
        ]
        query_prior = (
            sum(clean_ratios) / len(clean_ratios) if clean_ratios else None
        )
        anchors = []
        weights: dict[str, float] = {}
        all_clean = True
        recalibrated = 0
        for record, verdict in zip(records, verdicts):
            if not verdict.usable:
                all_clean = False
                continue
            proximity = verdict.pdp
            weight = verdict.quality
            if (
                "dispersed-cir-energy" in verdict.reasons
                and query_prior is not None
            ):
                proximity = query_prior * verdict.energy
                weight = 1.0
                recalibrated += 1
            anchors.append(
                Anchor(
                    record.name, record.position, proximity, record.nomadic
                )
            )
            weights[record.name] = weight
            if verdict.status is not LinkStatus.OK:
                all_clean = False
        sp.incr("rejected", len(records) - len(anchors))
        sp.incr("recalibrated", recalibrated)
        return GateResult(
            tuple(anchors), None if all_clean else weights, verdicts
        )


class GuardedSystem:
    """A :class:`~repro.core.NomLocSystem` behind the guard layer.

    Parameters
    ----------
    system:
        The clean NomLoc stack to protect.
    injector:
        Optional scripted corruption applied to every gathered batch
        (drills and benchmarks; production runs without one).
    config:
        Gating thresholds.
    gate:
        ``False`` runs the injector but **not** the gate — the
        "gating OFF" arm of ``bench_guard``, where corrupted links flow
        into the localizer at full confidence (NaN-poisoned links are
        salvaged with the skip-invalid estimator to keep the arm
        runnable at all).
    """

    def __init__(
        self,
        system: NomLocSystem,
        injector: LinkFaultInjector | None = None,
        config: GuardConfig | None = None,
        gate: bool = True,
    ) -> None:
        self.system = system
        self.injector = injector
        self.config = config or GuardConfig()
        self.gate = gate

    def gather(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> list[LinkRecord]:
        """One query's link records, after any scripted corruption."""
        records = self.system.gather_link_records(
            object_position, rng, pattern
        )
        if self.injector is not None:
            records = self.injector.corrupt_batch(records)
        return records

    def locate(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> LocationEstimate:
        """One guarded localization query."""
        estimate, _ = self.locate_with_result(object_position, rng, pattern)
        return estimate

    def locate_with_result(
        self,
        object_position: Point,
        rng: np.random.Generator,
        pattern: MobilityPattern | None = None,
    ) -> tuple[LocationEstimate, GateResult]:
        """One guarded query plus the gate's full per-link rulings."""
        records = self.gather(object_position, rng, pattern)
        if self.gate:
            result = gate_records(
                records, self.system.config.packets_per_link, self.config
            )
        else:
            result = self._ungated_result(records)
        if len(result.anchors) < 2:
            details = "; ".join(
                f"{v.name}: {', '.join(v.reasons) or v.status.value}"
                for v in result.verdicts
            )
            raise InsufficientLinksError(
                f"only {len(result.anchors)} of {len(records)} links "
                f"survived gating, need at least 2 ({details})"
            )
        estimate = self.system.localizer.locate(
            result.anchors, quality_weights=result.quality_weights
        )
        return (
            replace(
                estimate,
                confidence=result.confidence,
                degradation_reasons=result.reasons,
            ),
            result,
        )

    def _ungated_result(self, records: Sequence[LinkRecord]) -> GateResult:
        """The gating-OFF arm: believe every link at full confidence.

        Mirrors the historical pipeline (estimate, gains, anchor), with
        one necessary concession: NaN-poisoned or empty batches would
        crash the estimator outright, so they fall back to the
        skip-invalid estimator or — when nothing is salvageable — drop
        the link.  No quality weighting, no verdicts beyond bookkeeping.
        """
        from ..core.pdp import (
            InvalidMeasurementError,
            estimate_pdp_batch,
            estimate_pdp_skip_invalid,
        )

        anchors = []
        verdicts = []
        expected = self.system.config.packets_per_link
        for record in records:
            pdp = None
            try:
                pdp = record.estimate(estimate_pdp_batch)
            except InvalidMeasurementError:
                try:
                    pdp = record.estimate(estimate_pdp_skip_invalid)
                except (InvalidMeasurementError, ValueError):
                    pdp = None
            except ValueError:
                pdp = None
            if pdp is None or not pdp > 0.0:
                verdicts.append(
                    LinkVerdict(
                        record.name,
                        LinkStatus.REJECTED,
                        0.0,
                        ("unestimable-batch",),
                        0,
                        expected,
                        None,
                    )
                )
                continue
            anchors.append(
                Anchor(record.name, record.position, pdp, record.nomadic)
            )
            verdicts.append(
                LinkVerdict(
                    record.name,
                    LinkStatus.OK,
                    1.0,
                    (),
                    len(record.measurements),
                    expected,
                    pdp,
                )
            )
        return GateResult(tuple(anchors), None, tuple(verdicts))


# ----------------------------------------------------------------------
# Self-test drill
# ----------------------------------------------------------------------
def run_selftest(seed: int = 7) -> dict:
    """Scripted corruption drill proving the guard layer end to end.

    Four checks on the built-in lab scenario: (1) the gated zero-fault
    path reproduces the ungated estimate bit-for-bit; (2) NaN bursts are
    caught and down-weighted, never silently averaged; (3) a full AP
    outage is rejected while localization still answers; (4) an
    oscillator phase smear is detected as dispersed CIR energy and the
    link salvaged at reduced weight instead of trusted or dropped.
    Returns ``{"passed": bool, "checks": [...]}`` — the ``repro guard
    --selftest`` CLI and the CI smoke step print and gate on it.
    """
    from ..core.system import SystemConfig
    from ..environment import get_scenario

    scenario = get_scenario("lab")
    config = SystemConfig(packets_per_link=24, trace_steps=6)
    checks: list[dict] = []

    def check(name: str, passed: bool, detail: str) -> None:
        checks.append({"name": name, "passed": bool(passed), "detail": detail})

    # 1. Bit-exactness with no faults scheduled.
    clean = NomLocSystem(scenario, config)
    ungated = clean.locate(scenario.test_sites[0], np.random.default_rng(seed))
    guarded = GuardedSystem(
        NomLocSystem(scenario, config), injector=LinkFaultInjector()
    )
    gated = guarded.locate(
        scenario.test_sites[0], np.random.default_rng(seed)
    )
    identical = (
        gated.position.x == ungated.position.x
        and gated.position.y == ungated.position.y
        and gated.confidence == 1.0
        and gated.degradation_reasons == ()
    )
    check(
        "zero-fault-bit-identical",
        identical,
        f"ungated=({ungated.position.x:.6f}, {ungated.position.y:.6f}) "
        f"gated=({gated.position.x:.6f}, {gated.position.y:.6f}) "
        f"confidence={gated.confidence}",
    )

    # 2. NaN bursts degrade, never poison.
    nan_sys = GuardedSystem(
        NomLocSystem(scenario, config),
        injector=LinkFaultInjector(
            LinkFaultPlan.nan_burst(0.5, ap="AP2"), seed=seed
        ),
    )
    est, result = nan_sys.locate_with_result(
        scenario.test_sites[1], np.random.default_rng(seed)
    )
    nan_caught = any(
        "non-finite-csi" in v.reasons and v.quality < 1.0
        for v in result.verdicts
        if v.name == "AP2"
    )
    check(
        "nan-burst-degrades",
        nan_caught and est.confidence < 1.0 and np.isfinite(est.position.x),
        f"AP2 verdicts={[v.reasons for v in result.verdicts if v.name == 'AP2']} "
        f"confidence={est.confidence:.3f}",
    )

    # 3. A dead AP is rejected; localization still answers.
    outage_sys = GuardedSystem(
        NomLocSystem(scenario, config),
        injector=LinkFaultInjector(
            LinkFaultPlan.outage(1.0, ap="AP3"), seed=seed
        ),
    )
    est, result = outage_sys.locate_with_result(
        scenario.test_sites[2], np.random.default_rng(seed)
    )
    check(
        "outage-rejected",
        "AP3" in result.rejected and np.isfinite(est.position.x),
        f"rejected={result.rejected}",
    )

    # 4. Phase smear is detected and the link salvaged, not trusted.
    phase_sys = GuardedSystem(
        NomLocSystem(scenario, config),
        injector=LinkFaultInjector(
            LinkFaultPlan.phase_offset(1.0, ap="AP4"), seed=seed
        ),
    )
    est, result = phase_sys.locate_with_result(
        scenario.test_sites[3], np.random.default_rng(seed)
    )
    phase_salvaged = any(
        v.name == "AP4"
        and "dispersed-cir-energy" in v.reasons
        and v.status is LinkStatus.DEGRADED
        and v.quality < 1.0
        for v in result.verdicts
    )
    check(
        "phase-smear-salvaged",
        phase_salvaged and np.isfinite(est.position.x),
        f"AP4 verdicts="
        f"{[(v.status.value, v.reasons) for v in result.verdicts if v.name == 'AP4']}",
    )

    return {"passed": all(c["passed"] for c in checks), "checks": checks}
