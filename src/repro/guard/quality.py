"""Per-link quality scoring and the ok/degraded/rejected verdict.

Second of the guard layer's two passes.  :func:`assess_link` takes one
:class:`~repro.core.LinkRecord`, runs the structural checks of
:mod:`repro.guard.sanity`, then two statistical detectors over the
surviving packets:

* **MAD outlier rejection** — per-packet PDP maxima (in dB) more than
  ``mad_z_threshold`` robust z-scores from the batch median are bursty
  interference, not channel; they are excluded from the link's estimate;
* **CIR energy concentration** — a healthy 20 MHz channel concentrates
  most CIR energy in a few dominant taps; an unsynchronized-oscillator
  phase smear disperses it across the whole grid, which no amount of
  packet averaging repairs.  The max-tap PDP of such a batch is biased
  ~10 dB low, but the *total* CIR energy is untouched (a per-subcarrier
  phase rotation preserves amplitudes), so the link is salvaged: its
  PDP is re-estimated as total energy scaled by the clean-channel
  concentration prior, and the link is downgraded rather than dropped.

The verdict carries a **quality score** ``clean / expected`` in
``[0, 1]``: the fraction of the campaign's packet budget that survived
the structural checks.  Because every structural predicate is per-packet
and can only be tripped *by* corruption, the score is monotone —
corrupting more packets never raises it (property-tested in
``tests/guard``).

Bit-exactness contract: on a batch with nothing flagged the verdict's
``pdp`` accumulates the same row maxima in the same order as
:func:`~repro.core.pdp.estimate_pdp_batch` and applies the gains in the
same order as the ungated path, so gating a clean pipeline changes no
bits (enforced by ``benchmarks/bench_guard.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..channel.cir import tap_powers_batch
from ..core.system import LinkRecord
from .sanity import inspect_batch

__all__ = ["GuardConfig", "LinkStatus", "LinkVerdict", "assess_link"]


@dataclass(frozen=True)
class GuardConfig:
    """Gating thresholds.

    Defaults are calibrated so the clean synthesized channel never trips
    a detector (the bit-exactness invariant of ``bench_guard``) while the
    scripted faults of :mod:`repro.guard.faults` reliably do.

    Attributes
    ----------
    mad_z_threshold:
        Robust z-score (``0.6745 * (x - median) / MAD`` on dB-domain
        packet maxima) above which a packet is an outlier.  One-sided:
        only *upward* spikes are flagged — interference adds power,
        while deep downward dips are ordinary Rician fading (clean
        batches reach upward z ~6.6 across the built-in scenarios and
        packet budgets with the MAD floor applied, but fade dips past
        z = 13, so a two-sided test would shoot healthy packets).
    mad_floor_db:
        Lower bound on the batch MAD (dB) before z-scores are formed.
        Small batches of a calm channel can land an MAD of ~0.1 dB,
        which amplifies ordinary ~7 dB Rician upsides into z > 16;
        fading physics does not get *more* trustworthy because a batch
        happens to be tight, so deviations are always judged against at
        least this much spread (a real interference burst sits tens of
        dB up and still clears the threshold easily).
    concentration_top_taps:
        How many dominant taps "healthy" CIR energy may occupy.
    concentration_min:
        Minimum mean fraction of CIR energy in the top taps; below it
        the link's phase coherence is gone and its PDP is salvaged from
        total CIR energy instead of the max tap.  Clean synthesized
        links measure >= 0.81 across every built-in scenario while a
        phase-smeared batch measures <= 0.25, so the 0.5 default splits
        the bands with margin on both sides.
    salvage_concentration_prior:
        Max-tap-to-total-energy ratio of a healthy channel, used to put
        an energy-salvaged PDP on the same scale as the max-tap PDPs of
        the clean links it will be compared against.  Measured mean
        across every built-in scenario and packet budget is 0.65
        (5th-95th percentile 0.50-0.83).
    salvage_quality:
        Ceiling on the quality score of an energy-salvaged link; its
        constraint rows carry at most this much weight because the
        concentration prior is only accurate to ~1 dB.
    min_quality:
        Quality score below which a link is rejected instead of
        down-weighted.
    min_clean_packets:
        Minimum usable packets for an estimate worth trusting at all.
    """

    mad_z_threshold: float = 9.0
    mad_floor_db: float = 1.0
    concentration_top_taps: int = 3
    concentration_min: float = 0.5
    salvage_concentration_prior: float = 0.65
    salvage_quality: float = 0.5
    min_quality: float = 0.2
    min_clean_packets: int = 3

    def __post_init__(self) -> None:
        if self.mad_z_threshold <= 0:
            raise ValueError("mad_z_threshold must be positive")
        if self.mad_floor_db < 0:
            raise ValueError("mad_floor_db must be non-negative")
        if self.concentration_top_taps < 1:
            raise ValueError("concentration_top_taps must be at least 1")
        if not 0.0 <= self.concentration_min < 1.0:
            raise ValueError("concentration_min must be in [0, 1)")
        if not 0.0 < self.salvage_concentration_prior <= 1.0:
            raise ValueError("salvage_concentration_prior must be in (0, 1]")
        if not 0.0 < self.salvage_quality <= 1.0:
            raise ValueError("salvage_quality must be in (0, 1]")
        if not 0.0 <= self.min_quality <= 1.0:
            raise ValueError("min_quality must be in [0, 1]")
        if self.min_clean_packets < 1:
            raise ValueError("min_clean_packets must be at least 1")


class LinkStatus(enum.Enum):
    """How much a link's measurements can be trusted."""

    OK = "ok"
    DEGRADED = "degraded"
    REJECTED = "rejected"


@dataclass(frozen=True)
class LinkVerdict:
    """The guard layer's ruling on one link.

    Attributes
    ----------
    name:
        Link name (matches the anchor the link would produce).
    status:
        ``OK`` — full confidence; ``DEGRADED`` — usable, weight scaled
        by :attr:`quality`; ``REJECTED`` — constraint rows dropped.
    quality:
        Fraction of the packet budget surviving the structural checks,
        in ``[0, 1]``; exactly 1.0 for an ``OK`` link.
    reasons:
        Defect labels explaining any downgrade, in detection order.
    clean_packets:
        Packets feeding the estimate (structural survivors minus MAD
        outliers).
    expected_packets:
        The campaign's per-link packet budget.
    pdp:
        Gained PDP estimate over the clean packets; ``None`` when
        rejected.  Bit-identical to the ungated estimator when nothing
        was flagged.
    energy:
        Gained mean *total* CIR energy over the clean packets; ``None``
        when rejected.  A per-subcarrier phase rotation cannot change
        it, so the policy uses it to recalibrate a salvaged link's PDP
        against the clean links of the same query (see
        :func:`repro.guard.policy.gate_records`).
    """

    name: str
    status: LinkStatus
    quality: float
    reasons: tuple[str, ...]
    clean_packets: int
    expected_packets: int
    pdp: float | None
    energy: float | None = None

    @property
    def usable(self) -> bool:
        """True when the link may contribute an anchor."""
        return self.status is not LinkStatus.REJECTED

    def to_dict(self) -> dict:
        """Plain-dict wire/ledger form of the ruling.

        Floats pass through unchanged (JSON round-trips them exactly),
        so ``from_dict(to_dict(v)) == v`` — the property the gateway's
        verdict ledger and the protocol's optional ``gate`` section both
        rely on.
        """
        return {
            "name": self.name,
            "status": self.status.value,
            "quality": self.quality,
            "reasons": list(self.reasons),
            "clean_packets": self.clean_packets,
            "expected_packets": self.expected_packets,
            "pdp": self.pdp,
            "energy": self.energy,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LinkVerdict":
        """Rebuild a ruling from its :meth:`to_dict` record."""
        return cls(
            name=record["name"],
            status=LinkStatus(record["status"]),
            quality=float(record["quality"]),
            reasons=tuple(record.get("reasons") or ()),
            clean_packets=int(record["clean_packets"]),
            expected_packets=int(record["expected_packets"]),
            pdp=None if record.get("pdp") is None else float(record["pdp"]),
            energy=(
                None if record.get("energy") is None else float(record["energy"])
            ),
        )


def assess_link(
    record: LinkRecord,
    expected_packets: int | None = None,
    config: GuardConfig | None = None,
) -> LinkVerdict:
    """Inspect one link's batch and rule ok / degraded / rejected."""
    cfg = config or GuardConfig()
    expected = (
        expected_packets
        if expected_packets is not None
        else len(record.measurements)
    )
    expected = max(expected, 1)
    report = inspect_batch(record.measurements, expected_packets)
    reasons = list(report.issues) + report.packet_reasons()
    if report.packets == 0 or "mixed-ofdm-config" in report.issues:
        return _rejected(record, reasons, 0, expected)

    rows = tap_powers_batch(list(record.measurements))
    maxima = rows.max(axis=1)
    structural = report.clean
    quality = float(structural.sum()) / expected

    usable = structural.copy()
    outliers = _mad_outliers(maxima, usable, cfg)
    if outliers.any():
        reasons.append("pdp-outlier-packets")
        usable &= ~outliers
    clean = int(usable.sum())
    if clean < cfg.min_clean_packets:
        reasons.append("too-few-clean-packets")
        return _rejected(record, reasons, clean, expected, quality)
    if quality < cfg.min_quality:
        reasons.append("quality-below-floor")
        return _rejected(record, reasons, clean, expected, quality)

    energy_total = 0.0
    for row, keep in zip(rows, usable):
        if keep:
            energy_total += float(row.sum())
    energy = energy_total / clean
    energy *= record.device_gain
    energy *= record.antenna_gain

    concentration = _energy_concentration(rows, usable, cfg)
    if concentration < cfg.concentration_min:
        # Phase coherence is gone, so the max tap understates path gain
        # by ~10 dB — but a per-subcarrier phase rotation cannot change
        # amplitudes, so total CIR energy is intact.  Salvage the PDP
        # from energy, rescaled by the clean-channel concentration
        # prior, and cap the link's weight: the prior is only good to
        # ~1 dB, so its rows deserve less of a vote than clean ones.
        reasons.append("dispersed-cir-energy")
        pdp = cfg.salvage_concentration_prior * energy
        quality = min(quality, cfg.salvage_quality)
        return LinkVerdict(
            record.name,
            LinkStatus.DEGRADED,
            quality,
            tuple(reasons),
            clean,
            expected,
            pdp,
            energy,
        )

    # Same sequential accumulation as estimate_pdp_batch, same gain
    # multiply order as LinkRecord.estimate: nothing flagged => no bit
    # differs from the ungated path.
    total = 0.0
    for value, keep in zip(maxima, usable):
        if keep:
            total += float(value)
    pdp = total / clean
    pdp *= record.device_gain
    pdp *= record.antenna_gain
    if not reasons and quality == 1.0:
        status = LinkStatus.OK
    else:
        status = LinkStatus.DEGRADED
    return LinkVerdict(
        record.name,
        status,
        quality,
        tuple(reasons),
        clean,
        expected,
        pdp,
        energy,
    )


def _rejected(
    record: LinkRecord,
    reasons: list[str],
    clean: int,
    expected: int,
    quality: float = 0.0,
) -> LinkVerdict:
    """A REJECTED verdict carrying whatever was learned before the kill."""
    return LinkVerdict(
        record.name,
        LinkStatus.REJECTED,
        quality,
        tuple(reasons),
        clean,
        expected,
        None,
    )


def _mad_outliers(
    maxima: np.ndarray, usable: np.ndarray, cfg: GuardConfig
) -> np.ndarray:
    """Mask of packets whose dB-domain PDP maximum spikes upward.

    Computed over the structurally clean packets only — a NaN maximum
    would poison the median.  One-sided by design, and the MAD is
    floored at ``mad_floor_db`` so a tight batch cannot amplify
    ordinary fading into false outliers (see :class:`GuardConfig`).  A
    floor of zero with a degenerate batch disables the detector rather
    than dividing by zero.
    """
    flagged = np.zeros(len(maxima), dtype=bool)
    idx = np.flatnonzero(usable)
    if len(idx) < 3:
        return flagged
    db = 10.0 * np.log10(maxima[idx])
    med = float(np.median(db))
    mad = max(float(np.median(np.abs(db - med))), cfg.mad_floor_db)
    if mad <= 0.0:
        return flagged
    z = 0.6745 * (db - med) / mad
    flagged[idx[z > cfg.mad_z_threshold]] = True
    return flagged


def _energy_concentration(
    rows: np.ndarray, usable: np.ndarray, cfg: GuardConfig
) -> float:
    """Mean fraction of CIR energy in each packet's top taps.

    Near 1 for a coherent channel (direct path plus near reflections own
    a few early taps); near ``top_taps / n_fft`` for phase-smeared CSI,
    whose IFFT is spread uniformly across the grid.
    """
    idx = np.flatnonzero(usable)
    if len(idx) == 0:
        return 0.0
    kept = rows[idx]
    k = min(cfg.concentration_top_taps, kept.shape[1])
    top = np.sort(kept, axis=1)[:, -k:].sum(axis=1)
    total = kept.sum(axis=1)
    total = np.where(total > 0.0, total, 1.0)
    return float(np.mean(top / total))
