"""Structural sanity checks on raw CSI batches.

First of the guard layer's two passes (see :mod:`repro.guard.quality`
for the statistical pass): cheap per-packet predicates that are *provably
impossible* on clean synthesized measurements, so a packet they flag is
corrupted with certainty and a clean pipeline is never perturbed:

* non-finite subcarrier gains (NaN/Inf bursts);
* exact-zero subcarriers — receiver noise makes a true zero a
  measure-zero event, but dropped subcarriers are reported as exact
  zeros by firmware;
* amplitude clipping — a run of subcarriers pinned at the packet's peak
  amplitude, the signature of front-end saturation;
* batch-level defects: an empty batch, a sample-count shortfall against
  the campaign's packet budget, or packets mixing OFDM layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..channel.csi import CSIMeasurement

__all__ = ["StructuralReport", "inspect_batch"]

#: Minimum fraction of subcarriers pinned at the packet peak before the
#: packet is called clipped.  Clean packets never tie their own peak
#: (amplitudes are continuous); clipped ones pin a large run at it.
CLIP_FRACTION = 0.25

#: Relative tolerance for "pinned at the peak".
CLIP_RTOL = 1e-9


@dataclass(frozen=True)
class StructuralReport:
    """Per-packet structural verdicts for one link's batch.

    Attributes
    ----------
    packets:
        Batch size after any packet loss.
    finite:
        Per-packet mask: every subcarrier gain is finite.
    nonzero:
        Per-packet mask: no subcarrier is exactly zero.
    unclipped:
        Per-packet mask: amplitudes are not pinned at the packet peak.
    issues:
        Batch-level defect labels (``"empty-batch"``,
        ``"packet-shortfall"``, ``"mixed-ofdm-config"``).
    """

    packets: int
    finite: np.ndarray
    nonzero: np.ndarray
    unclipped: np.ndarray
    issues: tuple[str, ...]

    @property
    def clean(self) -> np.ndarray:
        """Packets passing every structural check."""
        return self.finite & self.nonzero & self.unclipped

    def packet_reasons(self) -> list[str]:
        """Defect labels for the per-packet failures present in the batch."""
        reasons = []
        if not self.finite.all():
            reasons.append("non-finite-csi")
        if not self.nonzero.all():
            reasons.append("zero-subcarriers")
        if not self.unclipped.all():
            reasons.append("amplitude-clipping")
        return reasons


def inspect_batch(
    measurements: Sequence[CSIMeasurement],
    expected_packets: int | None = None,
) -> StructuralReport:
    """Run every structural check over one link's batch.

    ``expected_packets`` is the campaign's per-link packet budget; a
    shorter batch earns a ``"packet-shortfall"`` issue (silent packet
    loss).  An empty batch returns empty masks and ``"empty-batch"``.
    """
    ms = list(measurements)
    issues: list[str] = []
    if not ms:
        issues.append("empty-batch")
        empty = np.zeros(0, dtype=bool)
        if expected_packets:
            issues.append("packet-shortfall")
        return StructuralReport(0, empty, empty, empty, tuple(issues))
    if expected_packets is not None and len(ms) < expected_packets:
        issues.append("packet-shortfall")
    cfg = ms[0].config
    if any(m.config != cfg for m in ms[1:]):
        issues.append("mixed-ofdm-config")
    finite = np.empty(len(ms), dtype=bool)
    nonzero = np.empty(len(ms), dtype=bool)
    unclipped = np.empty(len(ms), dtype=bool)
    for i, m in enumerate(ms):
        amps = np.abs(m.csi)
        finite[i] = bool(np.isfinite(m.csi).all())
        # The zero/clipping predicates only judge packets they can judge
        # — a non-finite packet is already condemned by its own mask and
        # must not leak extra reason labels.
        nonzero[i] = bool((amps > 0.0).all()) if finite[i] else True
        unclipped[i] = not _is_clipped(amps) if finite[i] else True
    return StructuralReport(
        len(ms), finite, nonzero, unclipped, tuple(issues)
    )


def _is_clipped(amplitudes: np.ndarray) -> bool:
    """True when a large run of subcarriers is pinned at the packet peak."""
    peak = float(amplitudes.max())
    if peak <= 0.0:
        return False
    pinned = amplitudes >= peak * (1.0 - CLIP_RTOL)
    return float(pinned.mean()) >= CLIP_FRACTION
