"""Nomadic-AP mobility: Markov walks, traces, position errors, patterns."""

from .errors import PositionErrorModel
from .markov import MarkovMobilityModel
from .patterns import (
    HotspotPattern,
    MarkovPattern,
    MobilityPattern,
    PatrolPattern,
    StaticPattern,
    SweepPattern,
)
from .traces import MobilityTrace, TraceStep, generate_trace

__all__ = [
    "MarkovMobilityModel",
    "PositionErrorModel",
    "TraceStep",
    "MobilityTrace",
    "generate_trace",
    "MobilityPattern",
    "MarkovPattern",
    "PatrolPattern",
    "SweepPattern",
    "StaticPattern",
    "HotspotPattern",
]
