"""Position-error injection for nomadic AP coordinates (Sec. V-E).

The paper evaluates robustness by "intentionally add[ing] random errors to
the position information of the nomadic AP with error range (ER) from 0 to
3 m".  :class:`PositionErrorModel` implements that perturbation: a uniform
random direction and a uniform radius within the error range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry import Point

__all__ = ["PositionErrorModel"]


@dataclass(frozen=True, slots=True)
class PositionErrorModel:
    """Uniform-disk position noise with a hard error range.

    Attributes
    ----------
    error_range_m:
        The paper's ER parameter; reported positions land uniformly in a
        disk of this radius around the truth.  Zero disables the noise.
    """

    error_range_m: float = 0.0

    def __post_init__(self) -> None:
        if self.error_range_m < 0:
            raise ValueError("error range must be non-negative")

    def perturb(self, true_position: Point, rng: np.random.Generator) -> Point:
        """Reported position for one measurement site."""
        if self.error_range_m == 0.0:
            return true_position
        # Uniform over the disk: radius ~ sqrt(U) * ER.
        radius = self.error_range_m * math.sqrt(float(rng.uniform(0.0, 1.0)))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        return Point(
            true_position.x + radius * math.cos(angle),
            true_position.y + radius * math.sin(angle),
        )
