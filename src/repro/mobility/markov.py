"""Markov-chain mobility over discrete sites (the paper's model, Sec. V-A).

"The mobile traces of nomadic APs are characterized by random walk built on
a Markov chain.  The nomadic AP is assumed to be moving among several
discrete sites with a preset transition probability."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import Point

__all__ = ["MarkovMobilityModel"]


@dataclass(frozen=True)
class MarkovMobilityModel:
    """Random walk over a finite site set with a transition matrix.

    Attributes
    ----------
    sites:
        The discrete positions the AP measures from.
    transition:
        Row-stochastic ``(S, S)`` matrix; ``transition[i, j]`` is the
        probability of moving from site ``i`` to site ``j``.  Defaults to
        the uniform walk the paper uses ("randomly moves among current
        location and {P1, P2, P3}").
    """

    sites: tuple[Point, ...]
    transition: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.sites) < 1:
            raise ValueError("need at least one site")
        s = len(self.sites)
        if self.transition is None:
            matrix = np.full((s, s), 1.0 / s)
        else:
            matrix = np.asarray(self.transition, dtype=float)
        if matrix.shape != (s, s):
            raise ValueError(f"transition matrix must be {s}x{s}")
        if np.any(matrix < 0):
            raise ValueError("transition probabilities must be non-negative")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition matrix rows must sum to 1")
        object.__setattr__(self, "transition", matrix)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def step(self, current: int, rng: np.random.Generator) -> int:
        """One transition from site index ``current``."""
        if not 0 <= current < self.num_sites:
            raise IndexError(f"site index {current} out of range")
        return int(rng.choice(self.num_sites, p=self.transition[current]))

    def walk(
        self, num_steps: int, rng: np.random.Generator, start: int = 0
    ) -> list[int]:
        """A ``num_steps``-long site-index sequence starting at ``start``.

        The starting site is included, so the result has
        ``num_steps`` entries and ``num_steps - 1`` transitions.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        if not 0 <= start < self.num_sites:
            raise IndexError(f"start index {start} out of range")
        indices = [start]
        for _ in range(num_steps - 1):
            indices.append(self.step(indices[-1], rng))
        return indices

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Computed from the eigenvector of ``P^T`` at eigenvalue 1; assumes
        the chain has a unique stationary distribution (true for the
        uniform default).
        """
        values, vectors = np.linalg.eig(self.transition.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()
