"""Movement patterns for nomadic APs (paper future work, Sec. VI).

"Another extension to our NomLoc system would be to understand the impact
of moving patterns of nomadic APs on the overall performance."  These
pattern generators all emit site-index sequences compatible with
:func:`repro.mobility.traces.generate_trace`'s site semantics, so the
pattern study (EXT-PATTERN) can swap them freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .markov import MarkovMobilityModel

__all__ = [
    "MobilityPattern",
    "MarkovPattern",
    "PatrolPattern",
    "SweepPattern",
    "StaticPattern",
    "HotspotPattern",
]


class MobilityPattern(ABC):
    """A strategy for visiting a finite site set."""

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ValueError("need at least one site")
        self.num_sites = num_sites

    @abstractmethod
    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` site indices."""

    def _check_steps(self, num_steps: int) -> None:
        if num_steps < 1:
            raise ValueError("num_steps must be at least 1")


class MarkovPattern(MobilityPattern):
    """The paper's uniform Markov random walk, as a pattern."""

    def __init__(self, model: MarkovMobilityModel, start: int = 0) -> None:
        super().__init__(model.num_sites)
        self.model = model
        self.start = start

    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` indices by walking the Markov chain."""
        self._check_steps(num_steps)
        return self.model.walk(num_steps, rng, self.start)


class PatrolPattern(MobilityPattern):
    """Ping-pong patrol: 0, 1, ..., S-1, S-2, ..., 0, 1, ...

    Models a security guard walking a beat back and forth.
    """

    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` indices walking the beat back and forth."""
        self._check_steps(num_steps)
        if self.num_sites == 1:
            return [0] * num_steps
        period = list(range(self.num_sites)) + list(
            range(self.num_sites - 2, 0, -1)
        )
        return [period[i % len(period)] for i in range(num_steps)]


class SweepPattern(MobilityPattern):
    """Cyclic sweep: 0, 1, ..., S-1, 0, 1, ...

    Models a greeter circling a fixed route.
    """

    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` indices cycling through the sites."""
        self._check_steps(num_steps)
        return [i % self.num_sites for i in range(num_steps)]


class StaticPattern(MobilityPattern):
    """Never moves — degenerates NomLoc to the static deployment."""

    def __init__(self, num_sites: int, home: int = 0) -> None:
        super().__init__(num_sites)
        if not 0 <= home < num_sites:
            raise IndexError("home site out of range")
        self.home = home

    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` copies of the home site index."""
        self._check_steps(num_steps)
        return [self.home] * num_steps


@dataclass(frozen=True)
class _HotspotWeights:
    weights: np.ndarray


class HotspotPattern(MobilityPattern):
    """Biased random choice: dwell mostly at one popular site.

    Models a shop greeter who hovers near the entrance but occasionally
    wanders.  ``bias`` is the probability mass on the hotspot; the rest is
    spread uniformly.
    """

    def __init__(self, num_sites: int, hotspot: int = 0, bias: float = 0.7) -> None:
        super().__init__(num_sites)
        if not 0 <= hotspot < num_sites:
            raise IndexError("hotspot site out of range")
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        weights = np.full(num_sites, (1.0 - bias) / max(num_sites - 1, 1))
        weights[hotspot] = bias if num_sites > 1 else 1.0
        self._weights = _HotspotWeights(weights / weights.sum())
        self.hotspot = hotspot

    def generate(self, num_steps: int, rng: np.random.Generator) -> list[int]:
        """Emit ``num_steps`` biased i.i.d. site choices."""
        self._check_steps(num_steps)
        return [
            int(rng.choice(self.num_sites, p=self._weights.weights))
            for _ in range(num_steps)
        ]
