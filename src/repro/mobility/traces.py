"""Mobility traces: ground-truth walks plus reported (noisy) coordinates.

A trace is what the localization server actually receives from a nomadic
AP: the sequence of sites it measured from, with the coordinates it
*reported* — which may differ from the truth by the position-error model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Point
from .errors import PositionErrorModel
from .markov import MarkovMobilityModel

__all__ = ["TraceStep", "MobilityTrace", "generate_trace"]


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One dwell of the nomadic AP at a measurement site.

    Attributes
    ----------
    site_index:
        Index into the mobility model's site set.
    true_position:
        Where the AP actually is.
    reported_position:
        Where the AP *says* it is (position error applied).
    """

    site_index: int
    true_position: Point
    reported_position: Point

    @property
    def report_error_m(self) -> float:
        """Distance between truth and report."""
        return self.true_position.distance_to(self.reported_position)


@dataclass(frozen=True)
class MobilityTrace:
    """An ordered sequence of nomadic-AP dwells."""

    steps: tuple[TraceStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def visited_site_indices(self) -> list[int]:
        """Distinct sites visited, in first-visit order."""
        seen: list[int] = []
        for step in self.steps:
            if step.site_index not in seen:
                seen.append(step.site_index)
        return seen

    def unique_steps(self) -> list[TraceStep]:
        """First dwell at each distinct site, in first-visit order.

        Repeated visits to a site add no *new* space-partition constraints
        (same bisectors), so the localizer consumes this view.
        """
        seen: set[int] = set()
        out: list[TraceStep] = []
        for step in self.steps:
            if step.site_index not in seen:
                seen.add(step.site_index)
                out.append(step)
        return out

    def mean_report_error_m(self) -> float:
        """Average position-report error over the trace."""
        if not self.steps:
            return 0.0
        return sum(s.report_error_m for s in self.steps) / len(self.steps)


def generate_trace(
    model: MarkovMobilityModel,
    num_steps: int,
    rng: np.random.Generator,
    error_model: PositionErrorModel | None = None,
    start: int = 0,
) -> MobilityTrace:
    """Walk the Markov chain and stamp each dwell with reported coordinates."""
    error_model = error_model or PositionErrorModel(0.0)
    indices = model.walk(num_steps, rng, start)
    steps = []
    for idx in indices:
        true_pos = model.sites[idx]
        steps.append(
            TraceStep(idx, true_pos, error_model.perturb(true_pos, rng))
        )
    return MobilityTrace(tuple(steps))
