"""Discrete-event simulation of the NomLoc system data path (Fig. 2)."""

from .messages import CSIReport, LocationFix, ProbePacket
from .network import NomLocNetwork
from .nodes import (
    APNode,
    MovingObjectNode,
    NetworkConfig,
    NomadicAPNode,
    ObjectNode,
    ServerNode,
)
from .simulator import EventSimulator

__all__ = [
    "EventSimulator",
    "ProbePacket",
    "CSIReport",
    "LocationFix",
    "NetworkConfig",
    "ObjectNode",
    "MovingObjectNode",
    "APNode",
    "NomadicAPNode",
    "ServerNode",
    "NomLocNetwork",
]
