"""Messages on the NomLoc data path (Fig. 2).

The object sends probe packets; APs export CSI measurement reports to the
localization server; nomadic APs additionally stamp their reports with the
coordinates of the site they measured from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..channel import CSIMeasurement
from ..geometry import Point

__all__ = ["ProbePacket", "CSIReport", "LocationFix"]


@dataclass(frozen=True, slots=True)
class ProbePacket:
    """One PING-style probe emitted by the object.

    Attributes
    ----------
    seq:
        Monotone sequence number.
    sent_at:
        Virtual send time in seconds.
    object_id:
        Identifier of the transmitting object.
    """

    seq: int
    sent_at: float
    object_id: str = "object"


@dataclass(frozen=True)
class CSIReport:
    """A batch of CSI snapshots exported by one AP to the server.

    Attributes
    ----------
    ap_name:
        Reporting AP; for nomadic APs this includes the site suffix.
    reported_position:
        Where the AP claims the measurements were taken (nomadic position
        error applies here).
    measurements:
        The CSI snapshots of the batch.
    nomadic:
        True when the reporting AP is nomadic.
    exported_at:
        Virtual time the batch left the AP.
    object_id:
        The object whose probes produced these measurements.
    """

    ap_name: str
    reported_position: Point
    measurements: tuple[CSIMeasurement, ...]
    nomadic: bool
    exported_at: float
    object_id: str = "object"

    def __post_init__(self) -> None:
        if not self.measurements:
            raise ValueError("a CSI report must carry at least one snapshot")


@dataclass(frozen=True, slots=True)
class LocationFix:
    """One position estimate produced by the server."""

    object_id: str
    position: Point
    produced_at: float
    num_reports: int
    relaxation_cost: float
