"""Wiring a scenario into a running NomLoc network simulation.

:class:`NomLocNetwork` assembles the full Fig. 2 deployment — one object,
the scenario's static and nomadic APs, and the localization server — on a
shared event simulator, and runs it for a span of virtual time.
"""

from __future__ import annotations

import numpy as np

from ..channel import CSISynthesizer, LinkSimulator, PropagationModel
from ..core import LocalizerConfig, NomLocLocalizer
from ..environment import Scenario
from ..geometry import Point
from ..mobility import MarkovMobilityModel, PositionErrorModel
from .messages import LocationFix
from .nodes import (
    APNode,
    MovingObjectNode,
    NetworkConfig,
    NomadicAPNode,
    ObjectNode,
    ServerNode,
)
from .simulator import EventSimulator

__all__ = ["NomLocNetwork"]


class NomLocNetwork:
    """A complete simulated NomLoc deployment.

    Parameters
    ----------
    scenario:
        Venue and AP deployment.
    object_position:
        Where the target stands during the run.
    config:
        Data-path timing/reliability parameters.
    localizer_config:
        SP localizer knobs used by the server.
    error_model:
        Position-error model applied to nomadic coordinate reports.
    seed:
        Seeds all stochastic components.
    """

    def __init__(
        self,
        scenario: Scenario,
        object_position: Point,
        config: NetworkConfig | None = None,
        localizer_config: LocalizerConfig | None = None,
        error_model: PositionErrorModel | None = None,
        seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.config = config or NetworkConfig()
        self.sim = EventSimulator()
        rng = np.random.default_rng(seed)

        link_sim = LinkSimulator(
            scenario.plan,
            CSISynthesizer(
                propagation=PropagationModel(
                    path_loss_exponent=scenario.path_loss_exponent
                )
            ),
        )
        self.server = ServerNode(
            NomLocLocalizer(scenario.plan.boundary, localizer_config)
        )
        self.object = ObjectNode(self.sim, object_position, self.config)
        self.objects: list[ObjectNode] = [self.object]
        self.aps: list[APNode] = []
        for ap in scenario.aps:
            node_rng = np.random.default_rng(rng.integers(0, 2**63))
            if ap.nomadic:
                node = NomadicAPNode(
                    self.sim,
                    ap.name,
                    MarkovMobilityModel(ap.sites),
                    link_sim,
                    self.server,
                    self.config,
                    node_rng,
                    error_model,
                )
            else:
                node = APNode(
                    self.sim,
                    ap.name,
                    ap.position,
                    link_sim,
                    self.server,
                    self.config,
                    node_rng,
                )
            self.aps.append(node)
            self.object.register_ap(node)

    def add_object(self, position: Point, object_id: str) -> ObjectNode:
        """Register an additional target to localize concurrently."""
        if any(o.object_id == object_id for o in self.objects):
            raise ValueError(f"duplicate object id {object_id!r}")
        node = ObjectNode(self.sim, position, self.config, object_id)
        for ap in self.aps:
            node.register_ap(ap)
        self.objects.append(node)
        return node

    def run(self, duration_s: float) -> LocationFix:
        """Run the deployment for ``duration_s`` and produce a fix.

        Starts every object's probing and the nomadic walks, drains the
        event queue up to the deadline, flushes stragglers, and asks the
        server for a fix of the primary object.  Fixes for additional
        objects are available via :meth:`fix_for`.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        for obj in self.objects:
            obj.start()
        for ap in self.aps:
            if isinstance(ap, NomadicAPNode):
                ap.start_moving()
        self.sim.run(until=duration_s)
        for obj in self.objects:
            obj.stop()
        for ap in self.aps:
            if isinstance(ap, NomadicAPNode):
                ap.stop_moving()
            ap.flush()
        # Deliver the final in-flight reports.
        self.sim.run(until=duration_s + 10 * self.config.report_latency_s)
        return self.server.produce_fix(self.sim.now, self.object.object_id)

    def fix_for(self, object_id: str) -> LocationFix:
        """Produce a fix for one of the registered objects."""
        return self.server.produce_fix(self.sim.now, object_id)

    def add_moving_object(self, trajectory, object_id: str) -> MovingObjectNode:
        """Register a target that walks ``trajectory`` while probing."""
        if any(o.object_id == object_id for o in self.objects):
            raise ValueError(f"duplicate object id {object_id!r}")
        node = MovingObjectNode(self.sim, trajectory, self.config, object_id)
        for ap in self.aps:
            node.register_ap(ap)
        self.objects.append(node)
        return node

    def run_streaming(
        self,
        duration_s: float,
        fix_interval_s: float,
        window_s: float,
        object_id: str = "object",
    ) -> list[LocationFix]:
        """Run the deployment and emit periodic windowed fixes.

        The server produces one fix every ``fix_interval_s`` from the
        trailing ``window_s`` of measurements — the real-time tracking
        mode for moving targets.  Returns the fix stream in time order.
        """
        if duration_s <= 0 or fix_interval_s <= 0 or window_s <= 0:
            raise ValueError("durations must be positive")
        fixes: list[LocationFix] = []

        def emit() -> None:
            # Flush AP batches so the window reflects recent probes even
            # when batches fill slowly.
            for ap in self.aps:
                ap.flush()

            def produce() -> None:
                try:
                    fixes.append(
                        self.server.produce_fix(
                            self.sim.now, object_id, window_s
                        )
                    )
                except ValueError:
                    pass  # not enough anchors heard yet
                self.sim.schedule(
                    max(
                        fix_interval_s - 2 * self.config.report_latency_s,
                        fix_interval_s / 2,
                    ),
                    emit,
                )

            # Give the flushed reports time to arrive before localizing.
            self.sim.schedule(2 * self.config.report_latency_s, produce)

        for obj in self.objects:
            obj.start()
        for ap in self.aps:
            if isinstance(ap, NomadicAPNode):
                ap.start_moving()
        self.sim.schedule(fix_interval_s, emit)
        self.sim.run(until=duration_s)
        for obj in self.objects:
            obj.stop()
        for ap in self.aps:
            if isinstance(ap, NomadicAPNode):
                ap.stop_moving()
        return fixes
