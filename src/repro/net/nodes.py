"""Nodes of the NomLoc system architecture (Fig. 2).

* :class:`ObjectNode` — "transmits the probe request packages ... to the
  APs"; a person with a WiFi device, pinging every millisecond.
* :class:`APNode` — static AP: "only maintain[s] the task of collecting
  CSI samples ... and export[s] the measurements to the server".
* :class:`NomadicAPNode` — additionally walks its Markov site set and
  "report[s] its coordinates of the current sites with CSI measurements".
* :class:`ServerNode` — "finalizes the task of positioning": aggregates
  reports, estimates PDPs, runs the SP localizer.

All radio physics go through the shared :class:`~repro.channel.LinkSimulator`;
all timing goes through the :class:`~repro.net.simulator.EventSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel import LinkSimulator
from ..core import Anchor, NomLocLocalizer, estimate_pdp_batch
from ..geometry import Point
from ..mobility import MarkovMobilityModel, PositionErrorModel
from .messages import CSIReport, LocationFix, ProbePacket
from .simulator import EventSimulator

__all__ = ["NetworkConfig", "ObjectNode", "APNode", "NomadicAPNode", "ServerNode"]


@dataclass(frozen=True)
class NetworkConfig:
    """Timing and reliability parameters of the data path.

    Attributes
    ----------
    ping_interval_s:
        Object probe period ("sends PING message in millisecond").
    batch_size:
        CSI snapshots an AP accumulates before exporting to the server.
    report_latency_s:
        Mean one-way AP-to-server report latency.
    packet_loss:
        Probability a probe is lost on a link (i.i.d.).
    dwell_time_s:
        How long a nomadic AP measures at one site before moving.
    """

    ping_interval_s: float = 1e-3
    batch_size: int = 10
    report_latency_s: float = 5e-3
    packet_loss: float = 0.02
    dwell_time_s: float = 0.5

    def __post_init__(self) -> None:
        if self.ping_interval_s <= 0 or self.dwell_time_s <= 0:
            raise ValueError("intervals must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if not 0.0 <= self.packet_loss < 1.0:
            raise ValueError("packet_loss must be in [0, 1)")
        if self.report_latency_s < 0:
            raise ValueError("latency must be non-negative")


class ObjectNode:
    """The target being localized; emits probes to every registered AP."""

    def __init__(
        self,
        sim: EventSimulator,
        position: Point,
        config: NetworkConfig,
        object_id: str = "object",
    ) -> None:
        self.sim = sim
        self.position = position
        self.config = config
        self.object_id = object_id
        self.aps: list["APNode"] = []
        self.probes_sent = 0
        self._running = False

    def register_ap(self, ap: "APNode") -> None:
        """Make ``ap`` hear this object's probes."""
        self.aps.append(ap)

    def start(self) -> None:
        """Begin the periodic probe schedule."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._ping)

    def stop(self) -> None:
        """Stop emitting probes (pending probes still deliver)."""
        self._running = False

    def _ping(self) -> None:
        if not self._running:
            return
        packet = ProbePacket(self.probes_sent, self.sim.now, self.object_id)
        self.probes_sent += 1
        for ap in self.aps:
            ap.on_probe(packet, self.position)
        self.sim.schedule(self.config.ping_interval_s, self._ping)


class MovingObjectNode(ObjectNode):
    """An object that follows a ground-truth trajectory while probing.

    Each probe is transmitted from the trajectory position at the current
    virtual time (linear interpolation between samples); the node records
    where it truly was at each probe for later scoring.
    """

    def __init__(
        self,
        sim: EventSimulator,
        trajectory,
        config: NetworkConfig,
        object_id: str = "object",
    ) -> None:
        super().__init__(sim, trajectory.positions[0], config, object_id)
        self.trajectory = trajectory
        self.probe_log: list[tuple[float, Point]] = []

    def position_at(self, t: float) -> Point:
        """Ground-truth position at virtual time ``t`` (clamped ends)."""
        times = self.trajectory.times_s
        positions = self.trajectory.positions
        if t <= times[0]:
            return positions[0]
        if t >= times[-1]:
            return positions[-1]
        # Linear scan is fine: trajectories have tens of samples.
        for i in range(len(times) - 1):
            if times[i] <= t <= times[i + 1]:
                span = times[i + 1] - times[i]
                frac = (t - times[i]) / span
                a, b = positions[i], positions[i + 1]
                return a + (b - a) * frac
        return positions[-1]  # pragma: no cover - loop always matches

    def _ping(self) -> None:
        if not self._running:
            return
        self.position = self.position_at(self.sim.now)
        self.probe_log.append((self.sim.now, self.position))
        packet = ProbePacket(self.probes_sent, self.sim.now, self.object_id)
        self.probes_sent += 1
        for ap in self.aps:
            ap.on_probe(packet, self.position)
        self.sim.schedule(self.config.ping_interval_s, self._ping)


class APNode:
    """A static AP: measures CSI per probe, exports batches to the server."""

    def __init__(
        self,
        sim: EventSimulator,
        name: str,
        position: Point,
        link_sim: LinkSimulator,
        server: "ServerNode",
        config: NetworkConfig,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.name = name
        self.position = position
        self.link_sim = link_sim
        self.server = server
        self.config = config
        self.rng = rng
        self.probes_heard = 0
        self.probes_lost = 0
        self.failed = False
        self._pending: dict[str, list] = {}

    @property
    def nomadic(self) -> bool:
        return False

    def report_name(self) -> str:
        """Key the server groups this AP's measurements under."""
        return self.name

    def reported_position(self) -> Point:
        """Coordinates stamped on exported reports."""
        return self.position

    def fail(self) -> None:
        """Take the AP down: pending batches are lost, probes ignored."""
        self.failed = True
        self._pending.clear()

    def recover(self) -> None:
        """Bring a failed AP back online."""
        self.failed = False

    def on_probe(self, packet: ProbePacket, object_position: Point) -> None:
        """Receive one probe: channel-estimate it or lose it."""
        if self.failed:
            return
        if self.rng.uniform() < self.config.packet_loss:
            self.probes_lost += 1
            return
        self.probes_heard += 1
        measurement = self.link_sim.measure(
            object_position, self.position, self.rng
        )
        pending = self._pending.setdefault(packet.object_id, [])
        pending.append(measurement)
        if len(pending) >= self.config.batch_size:
            self.flush(packet.object_id)

    def flush(self, object_id: str | None = None) -> None:
        """Export accumulated measurements to the server.

        ``None`` flushes every object's pending batch.
        """
        if self.failed:
            return
        object_ids = (
            [object_id] if object_id is not None else list(self._pending)
        )
        for oid in object_ids:
            pending = self._pending.get(oid)
            if not pending:
                continue
            report = CSIReport(
                ap_name=self.report_name(),
                reported_position=self.reported_position(),
                measurements=tuple(pending),
                nomadic=self.nomadic,
                exported_at=self.sim.now,
                object_id=oid,
            )
            self._pending[oid] = []
            latency = float(
                self.rng.uniform(0.5, 1.5) * self.config.report_latency_s
            )
            self.sim.schedule(
                latency, lambda r=report: self.server.on_report(r)
            )


class NomadicAPNode(APNode):
    """A nomadic AP: walks its site set, stamping reports per site."""

    def __init__(
        self,
        sim: EventSimulator,
        name: str,
        mobility: MarkovMobilityModel,
        link_sim: LinkSimulator,
        server: "ServerNode",
        config: NetworkConfig,
        rng: np.random.Generator,
        error_model: PositionErrorModel | None = None,
        start_site: int = 0,
    ) -> None:
        super().__init__(
            sim, name, mobility.sites[start_site], link_sim, server, config, rng
        )
        self.mobility = mobility
        self.error_model = error_model or PositionErrorModel(0.0)
        self.site_index = start_site
        self.moves = 0
        self._reported = self.error_model.perturb(self.position, rng)
        self._moving = False

    @property
    def nomadic(self) -> bool:
        return True

    def report_name(self) -> str:
        """Group key including the current site (``"AP1@s2"``)."""
        return f"{self.name}@s{self.site_index}"

    def reported_position(self) -> Point:
        """The (possibly erroneous) coordinates stamped on reports."""
        return self._reported

    def start_moving(self) -> None:
        """Begin the dwell-move cycle."""
        if self._moving:
            return
        self._moving = True
        self.sim.schedule(self.config.dwell_time_s, self._move)

    def stop_moving(self) -> None:
        """Halt the dwell-move cycle (the AP stays at its current site)."""
        self._moving = False

    def _move(self) -> None:
        if not self._moving or self.failed:
            return
        # Export what this site measured before leaving it.
        self.flush()
        self.site_index = self.mobility.step(self.site_index, self.rng)
        self.position = self.mobility.sites[self.site_index]
        self._reported = self.error_model.perturb(self.position, self.rng)
        self.moves += 1
        self.sim.schedule(self.config.dwell_time_s, self._move)


class ServerNode:
    """The localization server: aggregates CSI reports, produces fixes.

    Reports are grouped per (object, AP/site) pair, so several objects
    can be localized concurrently off one deployment.
    """

    def __init__(self, localizer: NomLocLocalizer) -> None:
        self.localizer = localizer
        self.reports: list[CSIReport] = []
        self.fixes: list[LocationFix] = []
        self._groups: dict[tuple[str, str], list[CSIReport]] = {}

    def on_report(self, report: CSIReport) -> None:
        """Ingest one AP batch."""
        self.reports.append(report)
        key = (report.object_id, report.ap_name)
        self._groups.setdefault(key, []).append(report)

    def known_objects(self) -> list[str]:
        """Objects the server has heard measurements for."""
        return sorted({obj for obj, _ in self._groups})

    def anchors(
        self, object_id: str = "object", since: float | None = None
    ) -> list[Anchor]:
        """Current anchor view for one object: one per AP/site group.

        ``since`` restricts to reports exported at or after that time —
        the sliding window that keeps fixes fresh for moving targets.
        """
        anchors = []
        for (obj, name), group in sorted(self._groups.items()):
            if obj != object_id:
                continue
            if since is not None:
                group = [r for r in group if r.exported_at >= since]
                if not group:
                    continue
            measurements = [m for r in group for m in r.measurements]
            # Batched PDP: one stacked IFFT per aggregated group,
            # bit-identical to the per-measurement reference estimator.
            pdp = estimate_pdp_batch(measurements)
            # Latest reported position wins (positions of one nomadic site
            # may differ across reports only through the error model).
            position = group[-1].reported_position
            anchors.append(Anchor(name, position, pdp, group[-1].nomadic))
        return anchors

    def produce_fix(
        self,
        now: float,
        object_id: str = "object",
        window_s: float | None = None,
    ) -> LocationFix:
        """Run the SP localizer over measurements of ``object_id``.

        ``window_s`` limits the evidence to the trailing window — stale
        measurements from a moving target's old positions would otherwise
        drag the fix backwards.
        """
        since = None if window_s is None else max(0.0, now - window_s)
        anchors = self.anchors(object_id, since)
        estimate = self.localizer.locate(anchors)
        fix = LocationFix(
            object_id=object_id,
            position=estimate.position,
            produced_at=now,
            num_reports=len(self.reports),
            relaxation_cost=estimate.relaxation_cost,
        )
        self.fixes.append(fix)
        return fix

    def distinct_sources(self, object_id: str = "object") -> int:
        """How many AP/site groups the server has heard for one object."""
        return sum(1 for obj, _ in self._groups if obj == object_id)
