"""Minimal discrete-event simulator.

Drives the NomLoc data path of Fig. 2 (object pings, AP measurement
batches, server aggregation) in virtual time.  Heap-based, deterministic:
events at equal timestamps fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventSimulator"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventSimulator:
    """A virtual clock with a heap of scheduled callbacks."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns a handle that can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = _Event(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        event = _Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` drains the queue.
        max_events:
            Safety valve against runaway self-rescheduling loops.
        """
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; runaway schedule?"
                )
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            processed += 1
        if until is not None and self._now < until:
            self._now = until

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(not e.cancelled for e in self._heap)
