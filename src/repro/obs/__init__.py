"""Observability: tracing + profiling for the whole NomLoc pipeline.

The pipeline's accuracy *and* latency are stage-dominated (CSI synthesis
→ IFFT/CIR → PDP proximity → weighted relaxation LP → feasible-region
merge), so this package attributes wall time to stages the way the
paper's SLV analysis attributes error to them:

* :mod:`~repro.obs.trace` — nested, attributed, counted spans with
  per-thread active stacks (safe under the serving worker pool);
* :mod:`~repro.obs.instrument` — the process-global switch; ``span()``
  is a shared no-op while disabled, so always-on instrumentation in the
  hot path costs ~nothing (benchmark-guarded);
* :mod:`~repro.obs.exporters` — JSONL trace files and the per-stage
  count/total/p50/p95 aggregator that merges into serving metrics
  snapshots;
* :mod:`~repro.obs.profile` — the ``repro profile`` engine: trace a
  reproducible batch of end-to-end queries.

Instrumented call sites only ever do::

    from ..obs import span, add_counter

and stay bit-identical with tracing on or off.
"""

from .exporters import (
    SpanAggregator,
    aggregate,
    dump_jsonl,
    format_stage_table,
    load_jsonl,
    write_jsonl,
)
from .instrument import (
    NULL_SPAN,
    add_counter,
    capture,
    current_span,
    disable,
    enable,
    get_tracer,
    is_enabled,
    span,
)
from .profile import ProfileResult, profile_scenario
from .trace import Span, Tracer

__all__ = [
    "NULL_SPAN",
    "ProfileResult",
    "Span",
    "SpanAggregator",
    "Tracer",
    "add_counter",
    "aggregate",
    "capture",
    "current_span",
    "disable",
    "dump_jsonl",
    "enable",
    "format_stage_table",
    "get_tracer",
    "is_enabled",
    "load_jsonl",
    "profile_scenario",
    "span",
    "write_jsonl",
]
