"""Trace sinks: JSONL files and an in-memory per-stage aggregator.

Two consumption modes for the spans a :class:`~repro.obs.Tracer`
collects:

* **JSONL export** — one span per line, loadable by any tooling (or by
  :func:`load_jsonl` for a lossless round-trip).  This is the raw-trace
  path behind ``repro profile --trace-out``.
* **Aggregation** — :class:`SpanAggregator` folds spans into per-name
  count / total / mean / p50 / p95 rows plus summed counters.  Its
  :meth:`~SpanAggregator.snapshot` dict merges into
  :meth:`repro.serving.LocalizationService.metrics_snapshot`, and
  :func:`format_stage_table` renders it as the CLI's stage-latency
  breakdown.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from .trace import Span

__all__ = [
    "SpanAggregator",
    "aggregate",
    "dump_jsonl",
    "format_stage_table",
    "load_jsonl",
    "write_jsonl",
]


def write_jsonl(spans: Iterable[Span], stream: IO[str]) -> int:
    """Write one JSON record per span to ``stream``; returns the count."""
    count = 0
    for span in spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def dump_jsonl(spans: Iterable[Span], path) -> int:
    """Write spans to a JSONL file; returns the number written."""
    with open(path, "w", encoding="utf-8") as stream:
        return write_jsonl(spans, stream)


def load_jsonl(path) -> list[Span]:
    """Rebuild spans from a JSONL trace file (blank lines ignored)."""
    spans = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return float(sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac)


class SpanAggregator:
    """Folds spans into per-span-name latency/counter statistics.

    Not thread-safe by itself — feed it a finished-span snapshot
    (:meth:`Tracer.finished` already copies under the tracer lock).
    """

    def __init__(self) -> None:
        self._durations: dict[str, list[float]] = {}
        self._counters: dict[str, dict[str, float]] = {}

    def add(self, span: Span) -> None:
        """Fold one finished span into the aggregate."""
        self._durations.setdefault(span.name, []).append(span.duration_s)
        if span.counters:
            sums = self._counters.setdefault(span.name, {})
            for key, value in span.counters.items():
                sums[key] = sums.get(key, 0.0) + value

    def add_all(self, spans: Iterable[Span]) -> "SpanAggregator":
        """Fold every span in; returns self for chaining."""
        for span in spans:
            self.add(span)
        return self

    def __len__(self) -> int:
        return sum(len(d) for d in self._durations.values())

    def snapshot(self) -> dict:
        """``{span_name: {count, total_s, mean_s, p50_s, p95_s, counters}}``.

        The same plain-dict discipline as
        :meth:`repro.serving.metrics.ServiceMetrics.snapshot`, so the two
        merge into one observable service state.
        """
        out: dict = {}
        for name, durations in self._durations.items():
            data = sorted(durations)
            total = float(sum(data))
            row = {
                "count": len(data),
                "total_s": total,
                "mean_s": total / len(data),
                "p50_s": _percentile(data, 50.0),
                "p95_s": _percentile(data, 95.0),
            }
            counters = self._counters.get(name)
            if counters:
                row["counters"] = dict(counters)
            out[name] = row
        return out


def aggregate(spans: Iterable[Span]) -> dict:
    """One-shot aggregation: spans in, snapshot dict out."""
    return SpanAggregator().add_all(spans).snapshot()


def format_stage_table(stages: dict) -> str:
    """Render an aggregator snapshot as the per-stage latency table.

    Stages are ordered by total time spent (descending) — the profile
    reader's first question is "where did the time go".
    """
    header = [
        "stage",
        "count",
        "total(ms)",
        "mean(ms)",
        "p50(ms)",
        "p95(ms)",
        "counters",
    ]
    rows = []
    for name, row in sorted(
        stages.items(), key=lambda item: item[1]["total_s"], reverse=True
    ):
        counters = row.get("counters") or {}
        rows.append(
            [
                name,
                row["count"],
                f"{row['total_s'] * 1e3:.2f}",
                f"{row['mean_s'] * 1e3:.3f}",
                f"{row['p50_s'] * 1e3:.3f}",
                f"{row['p95_s'] * 1e3:.3f}",
                ", ".join(f"{k}={v:g}" for k, v in sorted(counters.items())) or "-",
            ]
        )
    widths = [
        max(len(str(header[col])), *(len(str(r[col])) for r in rows))
        if rows
        else len(header[col])
        for col in range(len(header))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for r in rows:
        lines.append(
            "  ".join(str(v).ljust(widths[i]) for i, v in enumerate(r)).rstrip()
        )
    return "\n".join(lines)
