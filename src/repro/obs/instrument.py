"""The instrumentation switch: ``span()`` that costs ~nothing when off.

Pipeline code imports exactly two functions from here::

    from ..obs import span, add_counter

    def solve_piece(...):
        with span("lp.solve", piece=index):
            ...

    # deep inside the simplex:
    add_counter("simplex.pivots", iterations)

When no tracer is installed (the default), :func:`span` returns a shared
:data:`NULL_SPAN` and :func:`add_counter` returns after one global read —
the disabled cost is one function call plus a ``None`` check, guarded by
``benchmarks/bench_obs_overhead.py``.  Instrumentation never alters what
the instrumented code computes; it only observes wall time.

Enabling is process-global on purpose: tracing is an operator decision
(the ``repro profile`` command, a debugging session), not a per-call-site
one, and a module-level global is the cheapest thing the disabled path
can read.  :func:`capture` scopes enablement for tests.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from .trace import Tracer

__all__ = [
    "NULL_SPAN",
    "add_counter",
    "capture",
    "current_span",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "span",
]

#: The installed tracer; ``None`` means tracing is off (the default).
_tracer: Tracer | None = None


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attributes (tracing is off)."""
        return self

    def incr(self, counter: str, value: float = 1.0) -> "_NullSpan":
        """Ignore counters (tracing is off)."""
        return self


NULL_SPAN = _NullSpan()


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-global tracer."""
    global _tracer
    if tracer is None:
        tracer = Tracer()
    _tracer = tracer
    return tracer


def disable() -> None:
    """Remove the global tracer; ``span()`` reverts to the no-op."""
    global _tracer
    _tracer = None


def is_enabled() -> bool:
    """True when a tracer is installed."""
    return _tracer is not None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is off."""
    return _tracer


def span(name: str, **attrs):
    """A context-managed span when tracing is on; the no-op otherwise.

    This is the only function instrumented call sites should need; its
    disabled path is deliberately branch-one-global-read cheap.
    """
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.start(name, **attrs)


def current_span() -> "Span | _NullSpan":
    """The calling thread's innermost active span (no-op span when off)."""
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.current() or NULL_SPAN


def add_counter(counter: str, value: float = 1.0) -> None:
    """Accumulate onto the active span's counter, if tracing is on.

    Lets deep code (the simplex pivot loop) report volume metrics without
    knowing which stage span it runs under.
    """
    tracer = _tracer
    if tracer is None:
        return
    active = tracer.current()
    if active is not None:
        active.incr(counter, value)


@contextlib.contextmanager
def capture(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope tracing to a ``with`` block, restoring the previous state.

    The test-and-tooling entry point::

        with obs.capture() as tracer:
            localizer.locate(anchors)
        names = [s.name for s in tracer.finished()]
    """
    global _tracer
    previous = _tracer
    installed = tracer if tracer is not None else Tracer()
    _tracer = installed
    try:
        yield installed
    finally:
        _tracer = previous
