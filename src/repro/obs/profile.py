"""End-to-end pipeline profiling: trace a batch of queries per stage.

The engine behind ``repro profile``: run ``n`` localization queries over
a scenario with tracing enabled — measurement (CSI synthesis, IFFT/CIR)
client-side, solving (constraint build, per-piece LP, merge) through a
:class:`~repro.serving.LocalizationService` — and return the captured
spans plus the served responses.  The paper's SLV analysis attributes
error to *stages*; this attributes latency the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exporters import aggregate
from .instrument import capture
from .trace import Span, Tracer

__all__ = ["ProfileResult", "profile_scenario"]


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of one profiling run.

    Attributes
    ----------
    spans:
        Every span captured across the run, in completion order.
    errors_m:
        Per-query localization error against the known truth sites.
    metrics:
        The service's metrics snapshot (includes the obs aggregates).
    """

    spans: tuple[Span, ...]
    errors_m: tuple[float, ...]
    metrics: dict

    def stages(self) -> dict:
        """Per-stage latency aggregate of :attr:`spans`."""
        return aggregate(self.spans)


def profile_scenario(
    scenario_name: str,
    queries: int = 6,
    packets: int = 8,
    seed: int = 0,
    workers: int = 0,
    tracer: Tracer | None = None,
) -> ProfileResult:
    """Trace ``queries`` end-to-end localization queries over a scenario.

    Queries cycle through the scenario's test sites with per-query
    deterministic seeding (the same scheme as the serving CLI), so a
    profile is reproducible and comparable across code versions.
    """
    import numpy as np

    from ..core import NomLocSystem, SystemConfig
    from ..environment import get_scenario
    from ..serving import LocalizationService, ServingConfig

    if queries < 1:
        raise ValueError("queries must be at least 1")
    scenario = get_scenario(scenario_name)
    system = NomLocSystem(scenario, SystemConfig(packets_per_link=packets))
    config = ServingConfig(max_workers=workers)
    with capture(tracer) as active:
        errors = []
        with LocalizationService(
            scenario.plan.boundary, config=config
        ) as service:
            for i in range(queries):
                site = scenario.test_sites[i % len(scenario.test_sites)]
                rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
                anchors = tuple(system.gather_anchors(site, rng))
                response = service.locate(anchors, query_id=f"q{i}")
                errors.append(response.error_to(site))
            metrics = service.metrics_snapshot()
        spans = active.finished()
    return ProfileResult(spans, tuple(errors), metrics)
