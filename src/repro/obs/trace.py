"""Lightweight span tracing for the NomLoc pipeline.

A *span* is one timed stage of a localization query — ``csi.synthesize``,
``lp.solve``, ``serve.query`` — with monotonic start/duration, arbitrary
attributes, and accumulating counters (e.g. simplex pivots).  Spans nest:
each thread keeps its own active-span stack, so the tracer is safe under
:class:`repro.serving.pool.WorkerPool` without any cross-thread locking
on the hot path (only finishing a span takes the tracer lock, to append
it to the shared finished list).

Design constraints, in order:

1. **Zero behavioural impact** — spans only observe wall time; every
   instrumented code path computes bit-identical results with tracing on
   or off (asserted in ``tests/obs`` and the overhead benchmark).
2. **Cheap when off** — call sites go through
   :func:`repro.obs.instrument.span`, which returns a shared no-op when
   no tracer is installed; this module is only on the hot path when
   tracing is actually enabled.
3. **Zero dependencies** — stdlib only, so the lowest layers of the
   stack (``repro.channel``, ``repro.optimize``) can import it without
   cycles.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterable

__all__ = ["Span", "Tracer"]


class Span:
    """One timed, attributed, countable stage of the pipeline.

    Spans are context managers::

        with tracer.start("lp.solve", piece=3) as sp:
            ...
            sp.incr("simplex.pivots", result.iterations)

    ``span_id``/``parent_id`` encode the nesting that was active on this
    span's thread when it started; ``parent_id`` is ``None`` for roots.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread_name",
        "start_s",
        "duration_s",
        "attributes",
        "counters",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        tracer: "Tracer | None" = None,
        attributes: dict | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_name = threading.current_thread().name
        self.start_s = 0.0
        self.duration_s = 0.0
        self.attributes: dict = dict(attributes) if attributes else {}
        self.counters: dict[str, float] = {}
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Attach key/value attributes to the span (last write wins)."""
        self.attributes.update(attrs)
        return self

    def incr(self, counter: str, value: float = 1.0) -> "Span":
        """Accumulate ``value`` onto a named counter of the span."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value
        return self

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, the JSONL exporter's record schema."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread_name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attributes": self.attributes,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a finished span from its :meth:`to_dict` record."""
        span = cls(
            record["name"],
            record["span_id"],
            record.get("parent_id"),
            attributes=record.get("attributes") or {},
        )
        span.thread_name = record.get("thread", span.thread_name)
        span.start_s = float(record.get("start_s", 0.0))
        span.duration_s = float(record.get("duration_s", 0.0))
        span.counters = dict(record.get("counters") or {})
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_s * 1e3:.3f} ms)"
        )


class Tracer:
    """Collects finished spans from any number of threads.

    Each thread sees its own active-span stack (``threading.local``), so
    nested ``with`` blocks on one thread parent correctly while worker
    threads start independent span trees — exactly the shape of a pooled
    serving query, where ``serve.query`` runs on a worker and its nested
    ``lp.solve`` spans land under it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: list[Span] = []
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------
    def start(self, name: str, **attrs) -> Span:
        """Create a span parented to this thread's currently active span."""
        parent = self.current()
        parent_id = parent.span_id if parent is not None else None
        return Span(name, next(self._ids), parent_id, tracer=self, attributes=attrs)

    def current(self) -> Span | None:
        """This thread's innermost active span, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # unwound out of order (generators)
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- cross-process merging ------------------------------------------
    def adopt(
        self,
        records: Iterable[dict],
        parent_id: int | None = None,
    ) -> list[Span]:
        """Merge spans recorded by another process into this tracer.

        ``records`` are :meth:`Span.to_dict` dicts from one *single*
        foreign tracer — every worker tracer numbers its spans from 1, so
        batches from different workers collide and must be adopted one
        batch at a time.  Each span receives a fresh id from this
        tracer's counter; intra-batch parent links are remapped to the
        new ids, and the batch's roots are re-parented under
        ``parent_id`` (``None`` leaves them roots).  Completion order
        within the batch is preserved.
        """
        spans = [Span.from_dict(r) for r in records]
        with self._lock:
            id_map = {sp.span_id: next(self._ids) for sp in spans}
            for sp in spans:
                # Children finish (and therefore serialize) before their
                # parents, so the full id map must exist before any link
                # is rewritten — hence the two passes.
                if sp.parent_id in id_map:
                    sp.parent_id = id_map[sp.parent_id]
                else:
                    sp.parent_id = parent_id
                sp.span_id = id_map[sp.span_id]
            self._finished.extend(spans)
        return spans

    def reparent(
        self, span_ids: Iterable[int], parent_id: int | None
    ) -> int:
        """Re-home already-finished spans under a new parent.

        The in-process sibling of :meth:`adopt`: spans recorded on a
        *different thread* of the same tracer (a hedged cluster attempt,
        a worker-pool task) start as thread-local roots, because the
        per-thread active stack cannot see the caller's span.  Once the
        caller knows which root spans belong to it, it re-parents them —
        ids are already unique within one tracer, so unlike ``adopt`` no
        re-issuing is needed.  Returns the number of spans re-homed.
        """
        wanted = set(span_ids)
        moved = 0
        with self._lock:
            for sp in self._finished:
                if sp.span_id in wanted:
                    sp.parent_id = parent_id
                    moved += 1
        return moved

    # -- inspection -----------------------------------------------------
    def finished(self) -> tuple[Span, ...]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def reset(self) -> None:
        """Drop all finished spans (active stacks are left alone)."""
        with self._lock:
            self._finished.clear()
