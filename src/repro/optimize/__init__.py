"""From-scratch linear-programming substrate (simplex + interior point).

Replaces the CVX solver the paper uses: a two-phase tableau simplex for the
weighted relaxation LP (Eq. 19) and a log-barrier Newton solver for the
analytic "centre of the feasible region" the paper extracts from CVX's
interior-point method.
"""

from .batched import simplex_standard_form_batch
from .chebyshev import chebyshev_center, chebyshev_center_batch
from .interior_point import analytic_center, barrier_solve_lp
from .linprog import InequalityLP, solve_lp, solve_lp_batch
from .simplex import simplex_standard_form
from .types import LPResult, LPStatus

__all__ = [
    "LPResult",
    "LPStatus",
    "InequalityLP",
    "solve_lp",
    "solve_lp_batch",
    "simplex_standard_form",
    "simplex_standard_form_batch",
    "chebyshev_center",
    "chebyshev_center_batch",
    "analytic_center",
    "barrier_solve_lp",
]
