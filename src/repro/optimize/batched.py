"""Batched two-phase simplex: N same-shape tableaux, one NumPy pass.

The serving hot path is dominated by many *small* independent LP solves
(tens of rows each), so the scalar simplex spends its time in Python-level
loop overhead, not arithmetic — and the GIL serializes it across worker
threads.  This module stacks N problems' tableaux into one ``(N, m+1,
cols)`` array and runs every problem's own Bland-rule pivot sequence in
lockstep: each driver iteration performs one pivot *per still-active
problem* with a handful of vectorized operations, so one thread advances N
solves per GIL slice.

Bit-exactness contract: for every problem in the batch the returned
:class:`~repro.optimize.types.LPResult` is **bit-identical** to what
:func:`~repro.optimize.simplex.simplex_standard_form` returns for that
problem alone.  Three properties guarantee it:

* setup and transition steps either call the *same* helper functions as
  the scalar path on 2-D views of the stack (artificial drive-out,
  solution extraction) or replay their exact elementwise operation
  sequence across the stack (Phase-I tableau build, Phase-II objective
  install — see those helpers' docstrings for the order-preservation
  argument);
* the lockstep driver makes every decision (entering column, ratio test,
  Bland tie-break) per problem from that problem's own tableau, so pivot
  sequences match the scalar solver's exactly;
* every batched pivot applies the exact elementwise operation sequence of
  the scalar ``_pivot`` (one divide for the pivot row; one multiply and
  one subtract per updated element), and untouched rows receive a bitwise
  no-op (``t - 0.0``).

Problems that halt early (optimal, unbounded, budget) simply drop out of
the active set; stragglers keep pivoting until the whole batch is done.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs import add_counter
from .simplex import (
    _PHASE1_TOL,
    _TOL,
    _drive_out_artificials,
    _extract_solution,
    simplex_standard_form,
)
from .types import LPResult, LPStatus

__all__ = ["simplex_standard_form_batch"]

# Driver termination codes (int8 for the per-problem status vector).
_OPTIMAL = 0
_UNBOUNDED = 2
_ITERATION_LIMIT = 3
_CODE_STATUS = {
    _OPTIMAL: LPStatus.OPTIMAL,
    _UNBOUNDED: LPStatus.UNBOUNDED,
    _ITERATION_LIMIT: LPStatus.ITERATION_LIMIT,
}

#: Sentinel larger than any variable index, for the Bland tie-break argmin.
_NO_CANDIDATE = np.iinfo(np.int64).max


def simplex_standard_form_batch(
    problems: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
    max_iterations: int = 10_000,
) -> list[LPResult]:
    """Solve ``min c.x  s.t.  a_eq x = b_eq, x >= 0`` for a whole batch.

    Parameters
    ----------
    problems:
        ``(c, a_eq, b_eq)`` triples.  Every problem must have the same
        ``(m, n)`` shape — callers group by shape (the serving layer's
        micro-batches naturally do: same topology, same anchor count).
    max_iterations:
        Combined per-problem pivot budget across both phases.

    Returns
    -------
    list[LPResult]
        One result per problem, in input order, each bit-identical to the
        scalar :func:`~repro.optimize.simplex.simplex_standard_form`.
    """
    if not problems:
        return []
    parsed: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for c, a_eq, b_eq in problems:
        c = np.asarray(c, dtype=float).ravel()
        a = np.asarray(a_eq, dtype=float)
        b = np.asarray(b_eq, dtype=float).ravel()
        if a.ndim != 2:
            raise ValueError("a_eq must be a 2-D matrix")
        m, n = a.shape
        if c.shape != (n,) or b.shape != (m,):
            raise ValueError("inconsistent LP dimensions")
        parsed.append((c, a, b))
    m, n = parsed[0][1].shape
    if any(a.shape != (m, n) for _, a, _ in parsed):
        raise ValueError(
            "batched simplex needs same-shape problems; group by shape first"
        )
    if m == 0 or len(parsed) == 1:
        # Constraint-free problems resolve without pivoting, and a batch of
        # one gains nothing from stacking: the scalar path is the reference.
        return [simplex_standard_form(c, a, b, max_iterations) for c, a, b in parsed]

    batch = len(parsed)
    results: list[LPResult | None] = [None] * batch
    costs = np.stack([c for c, _, _ in parsed])

    # Phase I: all tableaux and crash bases built in one stacked pass
    # (bit-identical to stacking the scalar helper's per-problem output,
    # modulo padding — see the helper's docstring).
    tabs, basis = _phase1_tableau_batch(
        np.stack([a for _, a, _ in parsed]),
        np.stack([b for _, _, b in parsed]),
    )
    iterations = np.zeros(batch, dtype=np.int64)
    budgets = np.full(batch, max_iterations, dtype=np.int64)

    codes = _run_pivots_batch(
        tabs, basis, tabs.shape[2] - 1, budgets, iterations, np.arange(batch)
    )
    survivors: list[int] = []
    for k in range(batch):
        if codes[k] != _OPTIMAL:
            results[k] = LPResult(
                _CODE_STATUS[int(codes[k])],
                iterations=int(iterations[k]),
                message="phase 1 failed",
            )
        elif tabs[k, m, -1] < -_PHASE1_TOL:
            results[k] = LPResult(
                LPStatus.INFEASIBLE,
                iterations=int(iterations[k]),
                message=f"phase-1 objective {-tabs[k, m, -1]:.3e} > 0",
            )
        else:
            survivors.append(k)

    # Artificial drive-out pivots are rare (only lanes with redundant
    # constraint rows keep a basic artificial after Phase I), so the
    # scalar helper runs only on lanes that actually need it; everyone
    # else skips both the pivots and the list round-trip.  Lanes are
    # independent, so ordering drive-outs before the stacked objective
    # install leaves per-lane state identical to the interleaved order.
    if survivors:
        needs_drive_out = (basis >= n).any(axis=1)
        for k in survivors:
            if needs_drive_out[k]:
                basis_list = [int(v) for v in basis[k]]
                _drive_out_artificials(tabs[k], basis_list, n)
                basis[k] = basis_list
        _install_phase2_objective_batch(tabs, basis, costs, n, survivors)

    # Phase II: artificial columns are forbidden from re-entering by
    # restricting the entering-column scan to the first ``n`` columns.
    # Budgets stay cumulative: total pivots (both phases) <= max_iterations,
    # matching the scalar solver's budget hand-down.
    if survivors:
        # Phase II never *reads* the artificial block either: the
        # entering scan stops at ``n``, the ratio test uses the entering
        # column and the RHS, and extraction reads the RHS.  Under a
        # pivot each column's values depend only on itself and the factor
        # (entering) column, so dropping the artificial columns from the
        # stack leaves every kept value — hence every decision and
        # result — bit-identical while cutting per-pivot element work by
        # roughly the artificial block's share of the width.
        tabs = np.concatenate([tabs[:, :, :n], tabs[:, :, -1:]], axis=2)
        codes = _run_pivots_batch(
            tabs, basis, n, budgets, iterations, np.asarray(survivors)
        )
        for k in survivors:
            if codes[k] != _OPTIMAL:
                results[k] = LPResult(
                    _CODE_STATUS[int(codes[k])],
                    iterations=int(iterations[k]),
                    message="phase 2 failed",
                )
            else:
                results[k] = _extract_solution(
                    tabs[k],
                    [int(v) for v in basis[k]],
                    costs[k],
                    n,
                    m,
                    int(iterations[k]),
                )
    # One volume counter for the whole batch: same total as the scalar
    # path would accumulate solving each problem in turn.
    add_counter("simplex.pivots", int(iterations.sum()))
    return results  # type: ignore[return-value]  # every slot is filled


def _phase1_tableau_batch(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked Phase-I tableaux: the scalar ``_phase1_tableau`` over a batch.

    Per lane this replays the scalar construction exactly — same sign
    normalization, same lowest-index crash-column rule (``minimum.at`` is
    an unbuffered scatter-reduce, so the per-row minimum is well defined),
    same packed artificial placement, and per-lane *subset* sums for the
    Phase-I objective row (a masked full-stack sum would flip signed
    zeros).  Lanes needing fewer artificials than the batch maximum are
    padded with all-zero columns whose reduced cost is 0: they are never
    selected as entering columns and stay identically zero under pivots,
    so every per-lane decision and value matches the scalar solver's
    unpadded tableau.
    """
    batch, m, n = a.shape
    a = a.copy()
    b = b.copy()
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # Crash scan, all lanes at once: unit columns (exactly one nonzero,
    # equal to +1) cover their row; remaining rows take artificials.
    nonzero = a != 0.0
    single = nonzero.sum(axis=1) == 1
    rows = nonzero.argmax(axis=1)
    entry = np.take_along_axis(a, rows[:, None, :], axis=1)[:, 0, :]
    good = single & (entry == 1.0)
    basis = np.full((batch, m), n, dtype=np.int64)  # sentinel: uncovered
    ln, jn = np.nonzero(good)
    np.minimum.at(basis, (ln, rows[ln, jn]), jn)
    need_art = basis >= n

    lane_idx, row_idx = np.nonzero(need_art)  # row-major: rows ascending
    counts = need_art.sum(axis=1)
    n_art_max = int(counts.max()) if batch else 0
    offsets = np.cumsum(counts) - counts
    rank = np.arange(lane_idx.size) - offsets[lane_idx]

    tabs = np.zeros((batch, m + 1, n + n_art_max + 1))
    tabs[:, :m, :n] = a
    tabs[:, :m, -1] = b
    tabs[lane_idx, row_idx, n + rank] = 1.0
    basis[lane_idx, row_idx] = n + rank
    # Phase-I objective rows: per-lane reduced costs over that lane's
    # artificial rows only (zero when the lane is fully crashed).
    for k in np.flatnonzero(counts):
        sel = need_art[k]
        tabs[k, m, :n] = -a[k][sel].sum(axis=0)
        tabs[k, m, -1] = -b[k][sel].sum()
    return tabs, basis


def _install_phase2_objective_batch(
    tabs: np.ndarray,
    basis: np.ndarray,
    costs: np.ndarray,
    n: int,
    survivors: Sequence[int],
) -> None:
    """Install every survivor's real objective in its current basis.

    Row-lockstep version of the scalar ``_install_phase2_objective``: the
    elimination loop runs over *rows* (same 0..m-1 order every lane uses
    scalar-wise) with lanes whose factor is zero masked out of the
    subtraction — skipped, not subtracted-by-zero, because ``t - (-0.0)``
    would flip negative zeros the scalar path never touches.  Non-survivor
    lanes are masked out of every write.
    """
    m = tabs.shape[1] - 1
    batch = tabs.shape[0]
    sub = np.zeros(batch, dtype=bool)
    sub[list(survivors)] = True
    obj = tabs[:, m, :]
    obj[sub] = 0.0
    obj[sub, :n] = costs[sub]
    # factors[k, row] = c_k[basis[k, row]] for real basic variables, else 0.
    var_ok = basis < n
    factors = np.take_along_axis(costs, np.where(var_ok, basis, 0), axis=1)
    factors[~var_ok] = 0.0
    factors[~sub] = 0.0
    # Masked-out lanes still participate in the dense products; any 0 * inf
    # from a non-survivor's garbage tableau is never read.
    with np.errstate(invalid="ignore", over="ignore"):
        for row in range(m):
            f = factors[:, row]
            mask = np.abs(f) > 0
            if not mask.any():
                continue
            np.subtract(
                obj, f[:, None] * tabs[:, row, :], out=obj, where=mask[:, None]
            )


def _run_pivots_batch(
    tabs: np.ndarray,
    basis: np.ndarray,
    limit: int,
    budgets: np.ndarray,
    iterations: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Run per-problem Bland pivots in lockstep until every problem halts.

    ``tabs`` (batch, m+1, cols) and ``basis`` (batch, m) are updated in
    place; ``iterations`` accumulates per-problem pivot counts against
    ``budgets``.  Only problems listed in ``active`` participate.  Returns
    a per-problem termination-code vector (optimal/unbounded/budget).

    The loop deliberately operates on the *full* stack every iteration —
    halted problems execute bitwise no-op pivots (divide by 1.0, zero
    factors) instead of being gathered out, because batch-axis fancy
    indexing costs two full copies per step while a no-op lane is nearly
    free.  Decisions for halted lanes are garbage and masked out of the
    state updates.
    """
    batch, m1, cols = tabs.shape
    m = m1 - 1
    codes = np.full(batch, _OPTIMAL, dtype=np.int8)
    running = np.zeros(batch, dtype=bool)
    running[np.asarray(active, dtype=np.int64)] = True
    lanes = np.arange(batch)
    # Scratch reused across iterations: the (batch, m+1, cols) update block
    # is large enough that a fresh allocation per pivot would round-trip
    # through mmap, dwarfing the arithmetic.
    ratios = np.empty((batch, m))
    delta = np.empty((batch, m1, cols))
    update = np.empty((batch, m1), dtype=bool)
    # The budget comparison runs before the optimality scan (scalar check
    # order: a problem exactly at budget reports ITERATION_LIMIT even if
    # the next scan would have found it optimal), but it cannot *fire*
    # until the closest-to-budget running lane has pivoted ``headroom``
    # more times — so it is skipped until then.  A check that cannot
    # trigger is bitwise equivalent to one that runs and does nothing.
    headroom = 0
    # Halted lanes' no-op pivots can hit 0 * inf / inf * x in the dense
    # products; those entries are masked out of every read, so the
    # spurious warnings are silenced for the whole loop.
    with np.errstate(invalid="ignore", over="ignore"):
        while running.any():
            if headroom <= 0:
                over = running & (iterations >= budgets)
                codes[over] = _ITERATION_LIMIT
                running &= ~over
                if not running.any():
                    break
                headroom = int((budgets - iterations)[running].min())
            headroom -= 1
            # Bland's rule: first improving column, per problem.  argmax
            # returns the first True; when a lane has none it returns 0
            # and the gather reads False, so the single-element gather
            # replaces a full-width ``any`` reduction.
            improving = tabs[:, m, :limit] < -_TOL
            entering = improving.argmax(axis=1)
            running &= improving[lanes, entering]
            if not running.any():
                break
            # Each problem's entering column, objective row included — the
            # ratio test reads rows :m and the pivot reuses the same gather
            # as its factor column.
            colfull = tabs[lanes, :, entering]
            col = colfull[:, :m]
            rhs = tabs[:, :m, -1]
            positive = col > _TOL
            ratios.fill(np.inf)
            np.divide(rhs, col, out=ratios, where=positive)
            best = ratios.min(axis=1)
            # A lane is unbounded when no positive-coefficient row exists:
            # every ratio stays inf and the min is non-finite (a NaN min —
            # possible only from a non-finite tableau — also halts, where
            # the scalar path would fail its empty-candidates argmin).
            bounded = np.isfinite(best)
            codes[running & ~bounded] = _UNBOUNDED
            running &= bounded
            if not running.any():
                break
            # Bland's rule on ties: leave the row whose basic variable has
            # the smallest index.  Basis entries are distinct, so the
            # argmin over the candidate-masked basis row picks exactly the
            # scalar row.
            candidates = ratios <= (best + _TOL)[:, None]
            keyed = np.where(candidates, basis, _NO_CANDIDATE)
            leaving = keyed.argmin(axis=1)
            # Halted lanes pivot on (row 0, their own value forced to 1.0):
            # x / 1.0 and t - 0.0 are bitwise no-ops, so their tableaux are
            # untouched without any batch-axis gather/scatter.
            notrun = ~running
            leaving[notrun] = 0
            entering[notrun] = 0
            _pivot_batch(tabs, lanes, leaving, colfull, running, delta, update)
            basis[running, leaving[running]] = entering[running]
            iterations += running
    return codes


def _pivot_batch(
    tabs: np.ndarray,
    lanes: np.ndarray,
    rows: np.ndarray,
    colfull: np.ndarray,
    running: np.ndarray,
    delta: np.ndarray,
    update: np.ndarray,
) -> None:
    """Gaussian pivot on row ``rows[k]`` of each running problem ``k``.

    ``colfull`` is each problem's entering column (objective row
    included) as gathered by the driver *before* any update — it supplies
    both the pivot element and the per-row elimination factors, saving a
    second gather.  (The scalar path reads factors after normalizing the
    pivot row, but only the pivot row's own entry differs and that factor
    is forced to zero below, so the values used are identical.)

    Elementwise this is the exact operation sequence of the scalar
    ``_pivot`` — one divide for the pivot row, then one multiply and one
    subtract per updated element — so per-problem tableaux stay
    bit-identical to the scalar solver's.  Rows the scalar path skips
    (zero or non-finite factors) and entire halted lanes receive
    ``t - 0.0`` / ``x / 1.0``, both bitwise no-ops.
    """
    pivot_vals = np.where(running, colfull[lanes, rows], 1.0)
    pivot_rows = tabs[lanes, rows, :]  # advanced indexing: a fresh copy
    pivot_rows /= pivot_vals[:, None]
    tabs[lanes, rows, :] = pivot_rows
    factors = colfull
    factors[lanes, rows] = 0.0
    np.not_equal(factors, 0.0, out=update)
    update &= np.isfinite(factors)
    update &= running[:, None]
    # ``delta`` and ``update`` are caller-owned scratch (reused across
    # pivots); masked entries may hold 0 * inf garbage but are never read.
    np.multiply(factors[:, :, None], pivot_rows[:, None, :], out=delta)
    # Untouched rows are skipped outright — same as the scalar path's
    # boolean-mask row update, so their bits never change.
    np.subtract(tabs, delta, out=tabs, where=update[:, :, None])
