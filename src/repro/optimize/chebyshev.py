"""Chebyshev centre of a polyhedron via LP.

The Chebyshev centre — the centre of the largest inscribed ball — is one of
the "centre of the feasible region" estimators NomLoc can use after space
partitioning.  For ``{x : a_i . x <= b_i}`` it solves

    maximize  r
    s.t.      a_i . x + r ||a_i|| <= b_i   for all i,   r >= 0

with our own simplex; the optimal ``r`` doubles as a feasibility
certificate (``r > 0`` iff the polyhedron has non-empty interior).
"""

from __future__ import annotations

import numpy as np

from .linprog import solve_lp
from .types import LPResult, LPStatus

__all__ = ["chebyshev_center"]


def chebyshev_center(a_ub: np.ndarray, b_ub: np.ndarray) -> LPResult:
    """Chebyshev centre of ``{x : a_ub x <= b_ub}``.

    Returns
    -------
    LPResult
        ``x`` is the centre, ``objective`` the inscribed-ball radius.
        ``INFEASIBLE`` when the polyhedron is empty, ``UNBOUNDED`` when the
        inscribed radius is unbounded (region not bounded in all
        directions).
    """
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float).ravel()
    m, n = a.shape
    if b.size != m:
        raise ValueError("a_ub and b_ub row counts differ")
    if m == 0:
        return LPResult(LPStatus.UNBOUNDED, message="no constraints")

    norms = np.linalg.norm(a, axis=1)
    if np.any(norms <= 0):
        raise ValueError("constraint rows must have non-zero normals")

    # Variables: [x (free, n), r (nonneg, 1)]; minimize -r.
    c = np.zeros(n + 1)
    c[-1] = -1.0
    a_aug = np.hstack([a, norms[:, None]])
    nonneg = np.zeros(n + 1, dtype=bool)
    nonneg[-1] = True

    result = solve_lp(c, a_aug, b, nonneg)
    if result.status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, message="inscribed radius unbounded")
    if not result.ok:
        return result
    radius = float(result.x[-1])
    if radius < -1e-9:
        return LPResult(LPStatus.INFEASIBLE, message="polyhedron is empty")
    return LPResult(
        LPStatus.OPTIMAL, result.x[:n], radius, result.iterations
    )
