"""Chebyshev centre of a polyhedron via LP.

The Chebyshev centre — the centre of the largest inscribed ball — is one of
the "centre of the feasible region" estimators NomLoc can use after space
partitioning.  For ``{x : a_i . x <= b_i}`` it solves

    maximize  r
    s.t.      a_i . x + r ||a_i|| <= b_i   for all i,   r >= 0

with our own simplex; the optimal ``r`` doubles as a feasibility
certificate (``r > 0`` iff the polyhedron has non-empty interior).

``chebyshev_center_batch`` solves many such centres in lockstep through
:func:`~repro.optimize.linprog.solve_lp_batch`: same-shape problems are
stacked and every problem replays its own scalar pivot sequence, so each
batched result is bit-identical to :func:`chebyshev_center` on that
polyhedron alone.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .linprog import InequalityLP, solve_lp, solve_lp_batch
from .types import LPResult, LPStatus

__all__ = ["chebyshev_center", "chebyshev_center_batch"]


def _chebyshev_lp(
    a_ub: np.ndarray, b_ub: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | LPResult:
    """Build the inscribed-ball LP, or short-circuit with a result."""
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float).ravel()
    m, n = a.shape
    if b.size != m:
        raise ValueError("a_ub and b_ub row counts differ")
    if m == 0:
        return LPResult(LPStatus.UNBOUNDED, message="no constraints")

    norms = np.linalg.norm(a, axis=1)
    if np.any(norms <= 0):
        raise ValueError("constraint rows must have non-zero normals")

    # Variables: [x (free, n), r (nonneg, 1)]; minimize -r.
    c = np.zeros(n + 1)
    c[-1] = -1.0
    a_aug = np.hstack([a, norms[:, None]])
    nonneg = np.zeros(n + 1, dtype=bool)
    nonneg[-1] = True
    return c, a_aug, b, nonneg


def _finish_chebyshev(result: LPResult, n: int) -> LPResult:
    """Map the raw LP result back to centre + inscribed radius."""
    if result.status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, message="inscribed radius unbounded")
    if not result.ok:
        return result
    radius = float(result.x[-1])
    if radius < -1e-9:
        return LPResult(LPStatus.INFEASIBLE, message="polyhedron is empty")
    return LPResult(LPStatus.OPTIMAL, result.x[:n], radius, result.iterations)


def chebyshev_center(a_ub: np.ndarray, b_ub: np.ndarray) -> LPResult:
    """Chebyshev centre of ``{x : a_ub x <= b_ub}``.

    Returns
    -------
    LPResult
        ``x`` is the centre, ``objective`` the inscribed-ball radius.
        ``INFEASIBLE`` when the polyhedron is empty, ``UNBOUNDED`` when the
        inscribed radius is unbounded (region not bounded in all
        directions).
    """
    lp = _chebyshev_lp(a_ub, b_ub)
    if isinstance(lp, LPResult):
        return lp
    c, a_aug, b, nonneg = lp
    n = a_aug.shape[1] - 1
    return _finish_chebyshev(solve_lp(c, a_aug, b, nonneg), n)


def chebyshev_center_batch(
    systems: Sequence[tuple[np.ndarray, np.ndarray]],
) -> list[LPResult]:
    """Chebyshev centres of many polyhedra in stacked lockstep passes.

    ``systems`` is a sequence of ``(a_ub, b_ub)`` pairs.  Problems are
    grouped by shape (the lockstep stack needs same-shape tableaux) and
    each group solves through :func:`solve_lp_batch`; singleton groups and
    degenerate inputs take the scalar path.  Every result is
    **bit-identical** to :func:`chebyshev_center` on that system alone.
    """
    results: list[LPResult | None] = [None] * len(systems)
    groups: dict[tuple[int, int], list[int]] = {}
    built: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
    for i, (a_ub, b_ub) in enumerate(systems):
        lp = _chebyshev_lp(a_ub, b_ub)
        if isinstance(lp, LPResult):
            results[i] = lp
            continue
        built[i] = lp
        groups.setdefault(lp[1].shape, []).append(i)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            c, a_aug, b, nonneg = built[i]
            n = a_aug.shape[1] - 1
            results[i] = _finish_chebyshev(solve_lp(c, a_aug, b, nonneg), n)
            continue
        problems = [InequalityLP(*built[i]) for i in idxs]
        n = built[idxs[0]][1].shape[1] - 1
        for i, result in zip(idxs, solve_lp_batch(problems)):
            results[i] = _finish_chebyshev(result, n)
    return results  # type: ignore[return-value]  # every slot is filled
