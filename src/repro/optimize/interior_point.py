"""Log-barrier interior-point machinery.

The paper (Sec. IV-B4) solves its LPs with CVX's interior-point method and
notes that it "can return the center of the feasible region by using
logarithmic barrier functions".  This module reproduces both halves from
scratch:

* :func:`analytic_center` — the minimizer of the log-barrier
  ``phi(x) = -sum_i log(b_i - a_i . x)`` over ``{A x < b}`` (damped Newton
  with backtracking).
* :func:`barrier_solve_lp` — a textbook (Boyd & Vandenberghe, ch. 11)
  barrier-method LP solver ``min c.x s.t. A x <= b`` that follows the
  central path ``x*(t) = argmin t c.x + phi(x)``; with ``c = 0`` it reduces
  to the analytic centre, matching the paper's observation.
"""

from __future__ import annotations

import numpy as np

from .chebyshev import chebyshev_center
from .types import LPResult, LPStatus

__all__ = ["analytic_center", "barrier_solve_lp"]

_FEAS_TOL = 1e-9


def _newton_centering(
    a: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    c_scaled: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> tuple[np.ndarray, int, bool]:
    """Damped Newton for ``min (c_scaled . x) + phi(x)`` from interior x0.

    Returns ``(x, iterations, converged)``.
    """
    x = x0.astype(float).copy()
    n = x.size
    for it in range(max_iterations):
        slack = b - a @ x
        if np.any(slack <= 0):  # pragma: no cover - guarded by line search
            raise RuntimeError("Newton iterate left the interior")
        inv_s = 1.0 / slack
        grad = a.T @ inv_s
        if c_scaled is not None:
            grad = grad + c_scaled
        hess = (a * inv_s[:, None] ** 2).T @ a
        # Tikhonov fallback keeps the step defined when constraints are
        # rank-deficient (e.g. all normals parallel).
        try:
            step = -np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            step = -np.linalg.solve(hess + 1e-10 * np.eye(n), grad)
        decrement_sq = float(-grad @ step)
        if decrement_sq / 2.0 <= tol:
            return x, it, True
        # Backtracking line search: stay strictly interior, Armijo on the
        # barrier objective.
        t = 1.0
        fx = _barrier_value(a, b, x, c_scaled)
        alpha, beta = 0.25, 0.5
        for _ in range(60):
            cand = x + t * step
            if np.all(b - a @ cand > 0):
                f_cand = _barrier_value(a, b, cand, c_scaled)
                if f_cand <= fx + alpha * t * float(grad @ step):
                    break
            t *= beta
        else:
            return x, it, False
        x = x + t * step
    return x, max_iterations, False


def _barrier_value(
    a: np.ndarray, b: np.ndarray, x: np.ndarray, c_scaled: np.ndarray | None
) -> float:
    val = -float(np.sum(np.log(b - a @ x)))
    if c_scaled is not None:
        val += float(c_scaled @ x)
    return val


def analytic_center(
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
) -> LPResult:
    """Analytic centre of the polyhedron ``{x : a_ub x <= b_ub}``.

    The polyhedron must be bounded with non-empty interior; a strictly
    interior starting point is found via the Chebyshev centre when ``x0``
    is not supplied.
    """
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float).ravel()
    if a.shape[0] != b.size:
        raise ValueError("a_ub and b_ub row counts differ")
    if x0 is None:
        cheb = chebyshev_center(a, b)
        if not cheb.ok:
            return LPResult(
                cheb.status, message=f"no interior point: {cheb.message}"
            )
        if cheb.objective <= _FEAS_TOL:
            return LPResult(
                LPStatus.INFEASIBLE,
                message="polyhedron has empty interior",
            )
        x0 = cheb.x
    x0 = np.asarray(x0, dtype=float).ravel()
    if np.any(b - a @ x0 <= 0):
        return LPResult(
            LPStatus.INFEASIBLE, message="supplied x0 is not strictly interior"
        )
    x, iters, converged = _newton_centering(a, b, x0, None, tol)
    if not converged:
        return LPResult(
            LPStatus.ITERATION_LIMIT,
            x,
            _barrier_value(a, b, x, None),
            iters,
            "Newton centering did not converge",
        )
    return LPResult(LPStatus.OPTIMAL, x, _barrier_value(a, b, x, None), iters)


def barrier_solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    t0: float = 1.0,
    mu: float = 20.0,
    duality_gap: float = 1e-8,
    x0: np.ndarray | None = None,
) -> LPResult:
    """Barrier-method LP: ``min c.x  s.t.  a_ub x <= b_ub``.

    Follows the central path, multiplying the barrier parameter by ``mu``
    each outer iteration until ``m / t`` (the duality-gap bound) drops
    below ``duality_gap``.  Requires a bounded feasible region with
    interior, which NomLoc's boundary constraints guarantee.
    """
    c = np.asarray(c, dtype=float).ravel()
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float).ravel()
    m = b.size

    center = analytic_center(a, b, x0=x0)
    if not center.ok:
        return center
    x = center.x
    total_iters = center.iterations

    if np.allclose(c, 0.0):
        # Degenerate objective: the central path is a single point (the
        # analytic centre), which the paper exploits for Eq. 12/16.
        return LPResult(LPStatus.OPTIMAL, x, 0.0, total_iters)

    t = t0
    while m / t > duality_gap:
        x, iters, converged = _newton_centering(a, b, x, t * c)
        total_iters += iters
        if not converged:
            # Near the end of the path the Hessian is badly conditioned
            # and the line search can stall; if the duality-gap bound is
            # already small the point is optimal for practical purposes.
            if m / t <= 1e-4:
                return LPResult(
                    LPStatus.OPTIMAL,
                    x,
                    float(c @ x),
                    total_iters,
                    f"accepted after stall at gap bound {m / t:.1e}",
                )
            return LPResult(
                LPStatus.ITERATION_LIMIT,
                x,
                float(c @ x),
                total_iters,
                f"centering stalled at t={t:.3e}",
            )
        t *= mu
    return LPResult(LPStatus.OPTIMAL, x, float(c @ x), total_iters)
