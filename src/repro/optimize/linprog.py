"""Inequality-form LP facade over the simplex core.

NomLoc's optimization problems arrive in the natural inequality form

    minimize    c . x
    subject to  A x <= b

with *free* (sign-unrestricted) variables — the position ``z`` may be
anywhere in the plane, and the relaxation variables ``t`` are non-negative.
This module converts that form to the standard form the tableau simplex
consumes (free variables split as ``x = x+ - x-``, slacks appended) and maps
the solution back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .simplex import simplex_standard_form
from .types import LPResult, LPStatus

__all__ = ["InequalityLP", "solve_lp"]


@dataclass(frozen=True)
class InequalityLP:
    """``min c.x  s.t.  a_ub x <= b_ub`` with per-variable sign info.

    Attributes
    ----------
    c:
        Cost vector, length ``n``.
    a_ub, b_ub:
        Inequality stack, ``(m, n)`` and ``(m,)``.
    nonneg:
        Boolean mask of length ``n``; ``True`` entries are constrained to
        ``x_i >= 0``, ``False`` entries are free.
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    nonneg: np.ndarray

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float).ravel()
        a = np.atleast_2d(np.asarray(self.a_ub, dtype=float))
        b = np.asarray(self.b_ub, dtype=float).ravel()
        nn = np.asarray(self.nonneg, dtype=bool).ravel()
        if a.shape[1] != c.size and not (a.size == 0 and c.size >= 0):
            raise ValueError(
                f"a_ub has {a.shape[1]} columns but c has {c.size} entries"
            )
        if a.shape[0] != b.size:
            raise ValueError("a_ub and b_ub row counts differ")
        if nn.size != c.size:
            raise ValueError("nonneg mask length must match variable count")
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "a_ub", a)
        object.__setattr__(self, "b_ub", b)
        object.__setattr__(self, "nonneg", nn)

    @property
    def num_vars(self) -> int:
        return self.c.size

    @property
    def num_constraints(self) -> int:
        return self.b_ub.size


def solve_lp(
    c: Sequence[float] | np.ndarray,
    a_ub: Sequence[Sequence[float]] | np.ndarray,
    b_ub: Sequence[float] | np.ndarray,
    nonneg: Sequence[bool] | np.ndarray | None = None,
    max_iterations: int = 10_000,
) -> LPResult:
    """Solve ``min c.x  s.t.  a_ub x <= b_ub``.

    Parameters
    ----------
    nonneg:
        Mask of variables constrained to be non-negative.  ``None`` means
        all variables are free (the natural setting for planar positions).

    Returns
    -------
    LPResult
        ``x`` has the original variable count and ordering.
    """
    c = np.asarray(c, dtype=float).ravel()
    if nonneg is None:
        nonneg = np.zeros(c.size, dtype=bool)
    problem = InequalityLP(c, np.asarray(a_ub, dtype=float), b_ub, nonneg)
    return _solve(problem, max_iterations)


def _solve(problem: InequalityLP, max_iterations: int) -> LPResult:
    n = problem.num_vars
    m = problem.num_constraints
    free = ~problem.nonneg
    num_free = int(free.sum())

    # Column layout of the standard-form variable vector:
    #   [x_nonneg..., x_free_plus..., x_free_minus..., slack...]
    # Every standard-form variable is >= 0.
    total = n + num_free + m
    c_std = np.zeros(total)
    a_std = np.zeros((m, total))
    b_std = problem.b_ub.copy()

    # Map original variable j -> its positive-part column.
    plus_col = np.arange(n)
    minus_col = np.full(n, -1)
    next_col = n
    for j in np.flatnonzero(free):
        minus_col[j] = next_col
        next_col += 1

    c_std[plus_col] = problem.c
    for j in np.flatnonzero(free):
        c_std[minus_col[j]] = -problem.c[j]

    if m:
        a_std[:, :n] = problem.a_ub
        for j in np.flatnonzero(free):
            a_std[:, minus_col[j]] = -problem.a_ub[:, j]
        a_std[:, n + num_free :] = np.eye(m)

    result = simplex_standard_form(c_std, a_std, b_std, max_iterations)
    if not result.ok:
        return result

    x = result.x[plus_col].copy()
    for j in np.flatnonzero(free):
        x[j] -= result.x[minus_col[j]]
    return LPResult(
        LPStatus.OPTIMAL,
        x,
        float(problem.c @ x),
        result.iterations,
        result.message,
    )
