"""Inequality-form LP facade over the simplex core.

NomLoc's optimization problems arrive in the natural inequality form

    minimize    c . x
    subject to  A x <= b

with *free* (sign-unrestricted) variables — the position ``z`` may be
anywhere in the plane, and the relaxation variables ``t`` are non-negative.
This module converts that form to the standard form the tableau simplex
consumes (free variables split as ``x = x+ - x-``, slacks appended) and maps
the solution back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .batched import simplex_standard_form_batch
from .simplex import simplex_standard_form
from .types import LPResult, LPStatus

__all__ = ["InequalityLP", "solve_lp", "solve_lp_batch"]


@dataclass(frozen=True)
class InequalityLP:
    """``min c.x  s.t.  a_ub x <= b_ub`` with per-variable sign info.

    Attributes
    ----------
    c:
        Cost vector, length ``n``.
    a_ub, b_ub:
        Inequality stack, ``(m, n)`` and ``(m,)``.
    nonneg:
        Boolean mask of length ``n``; ``True`` entries are constrained to
        ``x_i >= 0``, ``False`` entries are free.
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    nonneg: np.ndarray

    def __post_init__(self) -> None:
        c = np.asarray(self.c, dtype=float).ravel()
        a = np.atleast_2d(np.asarray(self.a_ub, dtype=float))
        b = np.asarray(self.b_ub, dtype=float).ravel()
        nn = np.asarray(self.nonneg, dtype=bool).ravel()
        if a.shape[1] != c.size and not (a.size == 0 and c.size >= 0):
            raise ValueError(
                f"a_ub has {a.shape[1]} columns but c has {c.size} entries"
            )
        if a.shape[0] != b.size:
            raise ValueError("a_ub and b_ub row counts differ")
        if nn.size != c.size:
            raise ValueError("nonneg mask length must match variable count")
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "a_ub", a)
        object.__setattr__(self, "b_ub", b)
        object.__setattr__(self, "nonneg", nn)

    @property
    def num_vars(self) -> int:
        return self.c.size

    @property
    def num_constraints(self) -> int:
        return self.b_ub.size


def solve_lp(
    c: Sequence[float] | np.ndarray,
    a_ub: Sequence[Sequence[float]] | np.ndarray,
    b_ub: Sequence[float] | np.ndarray,
    nonneg: Sequence[bool] | np.ndarray | None = None,
    max_iterations: int = 10_000,
) -> LPResult:
    """Solve ``min c.x  s.t.  a_ub x <= b_ub``.

    Parameters
    ----------
    nonneg:
        Mask of variables constrained to be non-negative.  ``None`` means
        all variables are free (the natural setting for planar positions).

    Returns
    -------
    LPResult
        ``x`` has the original variable count and ordering.
    """
    c = np.asarray(c, dtype=float).ravel()
    if nonneg is None:
        nonneg = np.zeros(c.size, dtype=bool)
    problem = InequalityLP(c, np.asarray(a_ub, dtype=float), b_ub, nonneg)
    return _solve(problem, max_iterations)


def solve_lp_batch(
    problems: Sequence[InequalityLP],
    max_iterations: int = 10_000,
) -> list[LPResult]:
    """Solve many **same-shape** inequality LPs in one stacked pass.

    Every problem must share ``(num_constraints, num_vars)`` and the
    ``nonneg`` mask — the shape of the stacked standard-form tableaux.
    The serving layer's micro-batches satisfy this naturally (same
    topology piece, same anchor count); callers with mixed shapes group
    first and fall back to :func:`solve_lp` for the remainder.

    Each returned :class:`~repro.optimize.types.LPResult` is bit-identical
    to ``solve_lp`` on that problem alone: the standard-form conversion is
    the same code, and the batched simplex replays each problem's scalar
    pivot sequence (see :mod:`repro.optimize.batched`).
    """
    if not problems:
        return []
    shape = (problems[0].num_constraints, problems[0].num_vars)
    mask = problems[0].nonneg
    for problem in problems[1:]:
        if (problem.num_constraints, problem.num_vars) != shape or not (
            np.array_equal(problem.nonneg, mask)
        ):
            raise ValueError(
                "solve_lp_batch needs same-shape problems with identical "
                "nonneg masks; group by shape first"
            )
    standard = [_standard_form(p) for p in problems]
    raw = simplex_standard_form_batch(
        [(c, a, b) for c, a, b, _, _ in standard], max_iterations
    )
    return [
        _map_back(problem, result, plus_col, minus_col)
        for problem, result, (_, _, _, plus_col, minus_col) in zip(
            problems, raw, standard
        )
    ]


def _standard_form(
    problem: InequalityLP,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert an inequality LP to standard form.

    Returns ``(c_std, a_std, b_std, plus_col, minus_col)`` where the
    column maps recover original variables from the standard-form point.
    """
    n = problem.num_vars
    m = problem.num_constraints
    free = ~problem.nonneg
    num_free = int(free.sum())

    # Column layout of the standard-form variable vector:
    #   [x_nonneg..., x_free_plus..., x_free_minus..., slack...]
    # Every standard-form variable is >= 0.
    total = n + num_free + m
    c_std = np.zeros(total)
    a_std = np.zeros((m, total))
    b_std = problem.b_ub.copy()

    # Map original variable j -> its positive-part column.
    plus_col = np.arange(n)
    minus_col = np.full(n, -1)
    next_col = n
    for j in np.flatnonzero(free):
        minus_col[j] = next_col
        next_col += 1

    c_std[plus_col] = problem.c
    for j in np.flatnonzero(free):
        c_std[minus_col[j]] = -problem.c[j]

    if m:
        a_std[:, :n] = problem.a_ub
        for j in np.flatnonzero(free):
            a_std[:, minus_col[j]] = -problem.a_ub[:, j]
        a_std[:, n + num_free :] = np.eye(m)
    return c_std, a_std, b_std, plus_col, minus_col


def _map_back(
    problem: InequalityLP,
    result: LPResult,
    plus_col: np.ndarray,
    minus_col: np.ndarray,
) -> LPResult:
    """Recover the original variables from a standard-form solution."""
    if not result.ok:
        return result
    x = result.x[plus_col].copy()
    for j in np.flatnonzero(~problem.nonneg):
        x[j] -= result.x[minus_col[j]]
    return LPResult(
        LPStatus.OPTIMAL,
        x,
        float(problem.c @ x),
        result.iterations,
        result.message,
    )


def _solve(problem: InequalityLP, max_iterations: int) -> LPResult:
    c_std, a_std, b_std, plus_col, minus_col = _standard_form(problem)
    result = simplex_standard_form(c_std, a_std, b_std, max_iterations)
    return _map_back(problem, result, plus_col, minus_col)
