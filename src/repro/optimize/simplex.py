"""Two-phase dense tableau simplex, written from scratch.

The paper solves its location-estimation LPs with CVX; this module is the
self-contained replacement.  It solves the standard form

    minimize    c . x
    subject to  A x = b,   x >= 0

with a Phase-I artificial-variable start and Bland's anti-cycling rule.
Problems in inequality form (including free variables) are converted by
:func:`repro.optimize.linprog.solve_lp`, which is what the rest of the
codebase calls.

The constraint stacks NomLoc produces are tiny (tens of rows), so a dense
tableau is both the simplest and the fastest-in-practice choice.
"""

from __future__ import annotations

import numpy as np

from ..obs import add_counter
from .types import LPResult, LPStatus

__all__ = ["simplex_standard_form"]

_TOL = 1e-9

#: Phase-I optimum above this is declared infeasible (sum of artificials).
_PHASE1_TOL = 1e-7


def simplex_standard_form(
    c: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int = 10_000,
) -> LPResult:
    """Solve ``min c.x  s.t.  a_eq x = b_eq, x >= 0``.

    Parameters
    ----------
    c, a_eq, b_eq:
        Problem data; ``a_eq`` is ``(m, n)``.
    max_iterations:
        Combined pivot budget across both phases.

    Returns
    -------
    LPResult
        With ``x`` of length ``n`` on success.
    """
    c = np.asarray(c, dtype=float).ravel()
    a = np.asarray(a_eq, dtype=float)
    b = np.asarray(b_eq, dtype=float).ravel()
    if a.ndim != 2:
        raise ValueError("a_eq must be a 2-D matrix")
    m, n = a.shape
    if c.shape != (n,) or b.shape != (m,):
        raise ValueError("inconsistent LP dimensions")

    if m == 0:
        # No constraints: optimum is 0 if c >= 0 (at x = 0), else unbounded.
        if np.all(c >= -_TOL):
            return LPResult(LPStatus.OPTIMAL, np.zeros(n), 0.0, 0)
        return LPResult(LPStatus.UNBOUNDED, message="no constraints, negative cost")

    tableau, basis = _phase1_tableau(a, b)

    status, iters1 = _run_pivots(
        tableau, basis, tableau.shape[1] - 1, max_iterations
    )
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, iterations=iters1, message="phase 1 failed")
    if tableau[m, -1] < -_PHASE1_TOL:
        return LPResult(
            LPStatus.INFEASIBLE,
            iterations=iters1,
            message=f"phase-1 objective {-tableau[m, -1]:.3e} > 0",
        )

    _drive_out_artificials(tableau, basis, n)
    _install_phase2_objective(tableau, basis, c, n)
    # Artificial columns are forbidden from re-entering by restricting the
    # entering-column scan to the first ``n`` columns below.
    status, iters2 = _run_pivots(
        tableau, basis, n, max_iterations - iters1, allowed_cols=n
    )
    iterations = iters1 + iters2
    # Volume counter for the enclosing obs span (lp.solve): pivots are the
    # simplex's unit of work, the per-stage analogue of queries served.
    add_counter("simplex.pivots", iterations)
    if status is not LPStatus.OPTIMAL:
        return LPResult(status, iterations=iterations, message="phase 2 failed")
    return _extract_solution(tableau, basis, c, n, m, iterations)


def _crash_basis(a: np.ndarray) -> np.ndarray:
    """Starting-basis columns readable off the (sign-normalized) matrix.

    A column that is exactly a unit vector ``e_i`` can serve as row
    ``i``'s initial basic variable, so that row needs no artificial.
    Inequality-form conversions always append a slack identity block, and
    sign normalization turns ``-I`` blocks (e.g. the relaxation LP's
    ``-t`` columns) into unit columns on their negated rows — so typical
    NomLoc problems start fully crashed and skip Phase I outright.

    Returns the chosen column per row (the lowest-index candidate, a
    deterministic rule the batched solver replays), or ``-1`` where no
    unit column exists and an artificial is required.
    """
    m, _ = a.shape
    basis_col = np.full(m, -1, dtype=np.int64)
    counts = np.count_nonzero(a, axis=0)
    for j in np.flatnonzero(counts == 1):
        i = int(np.argmax(a[:, j] != 0.0))
        if a[i, j] == 1.0 and basis_col[i] < 0:
            basis_col[i] = j
    return basis_col


def _phase1_tableau(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, list[int]]:
    """Build the Phase-I tableau and its crash/artificial starting basis.

    The same construction is replayed in stacked form by the batched
    solver in :mod:`repro.optimize.batched`, so both paths start from
    bit-identical state.
    """
    m, n = a.shape
    # Normalize to b >= 0 so the starting basis is feasible.
    a = a.copy()
    b = b.copy()
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # Phase I: minimize the sum of the artificial variables, one per row
    # the crash scan could not cover.  Rows covered by a unit column start
    # from that column instead; when every row is covered the Phase-I
    # objective is identically zero and the phase ends without a pivot.
    basis_col = _crash_basis(a)
    art_rows = np.flatnonzero(basis_col < 0)
    n_art = art_rows.size
    tableau = np.zeros((m + 1, n + n_art + 1))
    tableau[:m, :n] = a
    tableau[art_rows, n + np.arange(n_art)] = 1.0
    tableau[:m, -1] = b
    # Phase-I objective row: reduced costs in the starting basis — only
    # the artificial (uncovered) rows contribute.
    tableau[m, :n] = -a[art_rows].sum(axis=0)
    tableau[m, -1] = -b[art_rows].sum()

    basis = [int(v) for v in basis_col]
    for k, row in enumerate(art_rows):
        basis[row] = n + k
    return tableau, basis


def _drive_out_artificials(
    tableau: np.ndarray, basis: list[int], n: int
) -> None:
    """Pivot leftover basic artificial variables out after Phase I.

    Membership tests run once per (row, column) pair, so keep a set view
    of the basis in step with the list instead of scanning it per
    candidate column.
    """
    in_basis = set(basis)
    for row, var in enumerate(basis):
        if var < n:
            continue
        pivot_col = next(
            (
                j
                for j in range(n)
                if abs(tableau[row, j]) > _TOL and j not in in_basis
            ),
            None,
        )
        if pivot_col is None:
            # Redundant constraint row; the artificial stays basic at 0,
            # which is harmless as long as its column is never re-entered.
            continue
        _pivot(tableau, row, pivot_col)
        in_basis.discard(basis[row])
        in_basis.add(pivot_col)
        basis[row] = pivot_col


def _install_phase2_objective(
    tableau: np.ndarray, basis: list[int], c: np.ndarray, n: int
) -> None:
    """Install the real objective expressed in the current basis."""
    m = tableau.shape[0] - 1
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for row, var in enumerate(basis):
        if var < n and abs(c[var]) > 0:
            tableau[m, :] -= c[var] * tableau[row, :]


def _extract_solution(
    tableau: np.ndarray,
    basis: list[int],
    c: np.ndarray,
    n: int,
    m: int,
    iterations: int,
) -> LPResult:
    """Read the optimal point off the final tableau."""
    x = np.zeros(n + m)
    for row, var in enumerate(basis):
        x[var] = tableau[row, -1]
    solution = x[:n]
    return LPResult(
        LPStatus.OPTIMAL, solution, float(c @ solution), iterations
    )


def _run_pivots(
    tableau: np.ndarray,
    basis: list[int],
    num_cols: int,
    budget: int,
    allowed_cols: int | None = None,
) -> tuple[LPStatus, int]:
    """Run simplex pivots in place until optimal/unbounded/budget."""
    m = tableau.shape[0] - 1
    limit = allowed_cols if allowed_cols is not None else num_cols
    iterations = 0
    while True:
        if iterations >= budget:
            return LPStatus.ITERATION_LIMIT, iterations
        # Bland's rule: first improving column.
        improving = np.flatnonzero(tableau[m, :limit] < -_TOL)
        if improving.size == 0:
            return LPStatus.OPTIMAL, iterations
        entering = int(improving[0])
        col = tableau[:m, entering]
        ratios = np.full(m, np.inf)
        positive = col > _TOL
        ratios[positive] = tableau[:m, -1][positive] / col[positive]
        if not np.isfinite(ratios).any():
            return LPStatus.UNBOUNDED, iterations
        best = ratios.min()
        # Bland's rule on ties: leave the row whose basic variable has the
        # smallest index (argmin returns the first minimum, matching the
        # candidate scan order).
        candidates = np.flatnonzero(ratios <= best + _TOL)
        leaving = int(candidates[np.argmin([basis[i] for i in candidates])])
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        iterations += 1


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gaussian pivot on ``tableau[row, col]`` in place.

    Vectorized over rows; each updated element sees the exact operation
    sequence (one multiply, one subtract) of the natural per-row loop,
    so solutions are bit-identical to the scalar formulation — only the
    Python-level loop overhead is gone.
    """
    pivot_val = tableau[row, col]
    tableau[row, :] /= pivot_val
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    update = (factors != 0) & np.isfinite(factors)
    if update.any():
        tableau[update, :] -= factors[update, None] * tableau[row, :]
