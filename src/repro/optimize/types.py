"""Result and status types shared by the LP solvers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LPStatus", "LPResult"]


class LPStatus(enum.Enum):
    """Terminal status of a linear-programming solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def ok(self) -> bool:
        """True when a usable optimal point was produced."""
        return self is LPStatus.OPTIMAL


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP solve.

    Attributes
    ----------
    status:
        Terminal :class:`LPStatus`.
    x:
        Optimal point (empty array unless ``status.ok``).
    objective:
        Objective value at ``x`` (``nan`` unless ``status.ok``).
    iterations:
        Pivot / Newton iterations performed.
    message:
        Human-readable detail, mainly for failures.
    """

    status: LPStatus
    x: np.ndarray = field(default_factory=lambda: np.zeros(0))
    objective: float = float("nan")
    iterations: int = 0
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status.ok
