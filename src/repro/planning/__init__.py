"""Deployment planning: partition quality, site selection, patrol routes."""

from .cells import PartitionQuality, partition_quality
from .site_selection import SitePlan, candidate_sites, select_sites
from .tour import Tour, plan_tour

__all__ = [
    "PartitionQuality",
    "partition_quality",
    "SitePlan",
    "candidate_sites",
    "select_sites",
    "Tour",
    "plan_tour",
]
