"""Geometric quality of a space partition.

The SP method's accuracy is bounded by the size of the arrangement cells
the anchor bisectors carve the venue into: with perfect proximity
judgements, the estimate lands at the centroid of the object's cell, so
the expected error is the mean distance from a point to its cell
centroid.  This module computes that *purely geometric* quality measure by
venue sampling — no RF simulation — which is what makes it usable inside a
site-selection search loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import Point, Polygon

__all__ = ["PartitionQuality", "partition_quality"]


@dataclass(frozen=True)
class PartitionQuality:
    """Geometric error bounds of one anchor arrangement.

    Attributes
    ----------
    mean_error_m:
        Mean distance from a venue point to its cell's centroid — the
        expected SP error under perfect judgements.
    worst_cell_error_m:
        The largest per-cell mean error; a proxy for blind spots.
    error_variance:
        Variance of the per-point errors — the geometric analogue of the
        paper's SLV.
    num_cells:
        Distinct closest-ordering cells realized in the venue.
    """

    mean_error_m: float
    worst_cell_error_m: float
    error_variance: float
    num_cells: int


def partition_quality(
    anchor_positions: Sequence[Point],
    area: Polygon,
    grid_spacing_m: float = 0.5,
) -> PartitionQuality:
    """Evaluate the partition induced by ``anchor_positions`` over ``area``.

    Venue points are grouped by their full distance-rank ordering of the
    anchors (the cells of the bisector arrangement); each point's error is
    its distance to the centroid of its own group.
    """
    if len(anchor_positions) < 2:
        raise ValueError("need at least two anchors to partition space")
    if grid_spacing_m <= 0:
        raise ValueError("grid spacing must be positive")
    points = area.grid_points(grid_spacing_m, margin=0.05)
    if not points:
        raise ValueError("area too small for the sampling grid")

    xy = np.array([(p.x, p.y) for p in points])
    anchors = np.array([(a.x, a.y) for a in anchor_positions])
    # (num_points, num_anchors) distance matrix, then rank orderings.
    d = np.linalg.norm(xy[:, None, :] - anchors[None, :, :], axis=2)
    orderings = np.argsort(d, axis=1, kind="stable")

    groups: dict[tuple[int, ...], list[int]] = {}
    for idx, order in enumerate(orderings):
        groups.setdefault(tuple(order), []).append(idx)

    errors = np.empty(len(points))
    worst = 0.0
    for indices in groups.values():
        members = xy[indices]
        centroid = members.mean(axis=0)
        cell_errors = np.linalg.norm(members - centroid, axis=1)
        errors[indices] = cell_errors
        worst = max(worst, float(cell_errors.mean()))
    return PartitionQuality(
        mean_error_m=float(errors.mean()),
        worst_cell_error_m=worst,
        error_variance=float(errors.var()),
        num_cells=len(groups),
    )
