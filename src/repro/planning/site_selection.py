"""Greedy nomadic-site selection.

Where should the nomadic AP measure from?  The paper leaves this implicit
("the further the nomadic AP moves, the more CSI measurements"), and its
related work optimizes *static* anchor layouts (maxL-minE, two-birds
deployment).  This module answers the nomadic version: given the fixed
APs, greedily pick the measurement sites that most improve the geometric
partition quality of :mod:`repro.planning.cells`.

Greedy selection on this objective is the classic submodular-style
coverage heuristic: each step adds the candidate whose bisectors split
the currently largest cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from ..environment import Scenario
from ..geometry import Point
from .cells import PartitionQuality, partition_quality

__all__ = ["SitePlan", "candidate_sites", "select_sites"]


@dataclass(frozen=True)
class SitePlan:
    """Outcome of a site-selection run.

    Attributes
    ----------
    sites:
        Chosen measurement sites, in selection order (greedy marginal
        value order, most valuable first).
    quality:
        Partition quality with all chosen sites included.
    baseline_quality:
        Partition quality with the static anchors only.
    """

    sites: tuple[Point, ...]
    quality: PartitionQuality
    baseline_quality: PartitionQuality

    def improvement(self) -> float:
        """Relative reduction of geometric mean error."""
        if self.baseline_quality.mean_error_m <= 0:
            return 0.0
        return 1.0 - self.quality.mean_error_m / self.baseline_quality.mean_error_m


def candidate_sites(
    scenario: Scenario,
    spacing_m: float = 2.0,
    margin: float = 0.5,
) -> list[Point]:
    """Feasible candidate measurement sites: an obstacle-free venue grid."""
    if spacing_m <= 0:
        raise ValueError("spacing must be positive")
    points = scenario.plan.boundary.grid_points(spacing_m, margin=margin)
    return [
        p
        for p in points
        if not any(
            o.polygon.contains(p, boundary=False)
            for o in scenario.plan.obstacles
        )
    ]


def _score(quality: PartitionQuality, worst_weight: float) -> float:
    """Scalar objective: mean error plus a blind-spot penalty.

    Pure mean-error minimization over-refines the largest arm of a venue
    and leaves the rest under-covered (we measured an 11 m Lobby outlier
    with the mean-only objective); the worst-cell term forces coverage.
    """
    return quality.mean_error_m + worst_weight * quality.worst_cell_error_m


def select_sites(
    scenario: Scenario,
    num_sites: int,
    candidates: Sequence[Point] | None = None,
    grid_spacing_m: float = 1.0,
    worst_weight: float = 1.0,
) -> SitePlan:
    """Greedily choose ``num_sites`` nomadic measurement sites.

    Parameters
    ----------
    scenario:
        Supplies the static anchor positions and the venue.
    candidates:
        Candidate site pool; defaults to :func:`candidate_sites`.
    grid_spacing_m:
        Sampling density of the quality evaluation (coarser = faster).
    worst_weight:
        Weight of the worst-cell (blind-spot) term of the objective;
        0 optimizes mean error only.
    """
    if num_sites < 1:
        raise ValueError("num_sites must be at least 1")
    if worst_weight < 0:
        raise ValueError("worst_weight must be non-negative")
    pool = list(candidates) if candidates is not None else candidate_sites(scenario)
    if len(pool) < num_sites:
        raise ValueError(
            f"candidate pool ({len(pool)}) smaller than num_sites ({num_sites})"
        )
    statics = [ap.position for ap in scenario.static_aps]
    if len(statics) < 2:
        raise ValueError("need at least two static APs as the base anchors")
    area = scenario.plan.boundary

    baseline = partition_quality(statics, area, grid_spacing_m)
    chosen: list[Point] = []
    remaining = list(pool)
    current = baseline
    for _ in range(num_sites):
        best_site = None
        best_quality = None
        for site in remaining:
            quality = partition_quality(
                statics + chosen + [site], area, grid_spacing_m
            )
            if best_quality is None or _score(quality, worst_weight) < _score(
                best_quality, worst_weight
            ):
                best_quality = quality
                best_site = site
        assert best_site is not None and best_quality is not None
        chosen.append(best_site)
        remaining = [s for s in remaining if s is not best_site]
        current = best_quality
    return SitePlan(tuple(chosen), current, baseline)
