"""Patrol-route planning over selected measurement sites.

Once the sites are chosen, the person carrying the nomadic AP needs a
short route visiting all of them — the mobile-anchor path-planning
problem of the paper's related work ([10], [11]).  Small instances are
solved with nearest-neighbour construction plus 2-opt improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..geometry import Point

__all__ = ["Tour", "plan_tour"]


@dataclass(frozen=True)
class Tour:
    """An ordered visiting sequence over a site set.

    Attributes
    ----------
    order:
        Indices into the site list, starting at the start site.
    sites:
        The sites being toured.
    closed:
        True when the tour returns to its start (patrol loop); False for
        a one-way sweep.
    """

    order: tuple[int, ...]
    sites: tuple[Point, ...]
    closed: bool

    def __post_init__(self) -> None:
        if sorted(self.order) != list(range(len(self.sites))):
            raise ValueError("order must be a permutation of the site indices")

    def length_m(self) -> float:
        """Total walking distance of the tour."""
        legs = [
            self.sites[a].distance_to(self.sites[b])
            for a, b in zip(self.order, self.order[1:])
        ]
        if self.closed and len(self.order) > 1:
            legs.append(
                self.sites[self.order[-1]].distance_to(self.sites[self.order[0]])
            )
        return sum(legs)

    def ordered_sites(self) -> list[Point]:
        """The sites in visiting order."""
        return [self.sites[i] for i in self.order]


def plan_tour(
    sites: Sequence[Point],
    start: int = 0,
    closed: bool = True,
    two_opt_rounds: int = 20,
) -> Tour:
    """Short tour over ``sites`` starting at index ``start``.

    Nearest-neighbour construction followed by 2-opt until no improving
    swap is found (or ``two_opt_rounds`` passes).
    """
    n = len(sites)
    if n < 1:
        raise ValueError("need at least one site")
    if not 0 <= start < n:
        raise IndexError("start index out of range")
    if n == 1:
        return Tour((0,), tuple(sites), closed)

    # Nearest-neighbour construction.
    unvisited = set(range(n))
    order = [start]
    unvisited.remove(start)
    while unvisited:
        last = sites[order[-1]]
        nxt = min(unvisited, key=lambda i: last.distance_to(sites[i]))
        order.append(nxt)
        unvisited.remove(nxt)

    # 2-opt improvement (keeping the start fixed).
    def tour_length(o: list[int]) -> float:
        return Tour(tuple(o), tuple(sites), closed).length_m()

    best = order
    best_len = tour_length(best)
    for _ in range(two_opt_rounds):
        improved = False
        for i in range(1, n - 1):
            for j in range(i + 1, n):
                candidate = best[:i] + best[i : j + 1][::-1] + best[j + 1 :]
                cand_len = tour_length(candidate)
                if cand_len < best_len - 1e-12:
                    best, best_len = candidate, cand_len
                    improved = True
        if not improved:
            break
    return Tour(tuple(best), tuple(sites), closed)
