"""Serving layer: batched, cached, concurrent localization queries.

The production-facing face of the reproduction (see DESIGN.md, "Serving
architecture"): a :class:`LocalizationService` that answers anchor-set
queries from a long-lived process, reusing the topology-dependent
constraint prefix across queries, running independent queries on a
worker pool, shedding load through a bounded admission queue, and
degrading gracefully to the weighted-centroid baseline when the LP
fails or a deadline expires.
"""

from .cache import BisectorCache, CacheStats, LocalizerCache, topology_key
from .metrics import LatencyReservoir, ServiceMetrics, json_safe, percentile
from .pool import WorkerPool
from .procpool import ProcessWorkerPool
from .queueing import AdmissionQueue, QueueFullError
from .service import (
    LocalizationRequest,
    LocalizationResponse,
    LocalizationService,
    ServiceClosedError,
    ServingConfig,
    weighted_centroid,
)

__all__ = [
    "AdmissionQueue",
    "BisectorCache",
    "CacheStats",
    "json_safe",
    "LatencyReservoir",
    "LocalizationRequest",
    "LocalizationResponse",
    "LocalizationService",
    "LocalizerCache",
    "percentile",
    "ProcessWorkerPool",
    "QueueFullError",
    "ServiceClosedError",
    "ServiceMetrics",
    "ServingConfig",
    "topology_key",
    "weighted_centroid",
    "WorkerPool",
]
