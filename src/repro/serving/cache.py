"""Topology-keyed constraint caches for the localization service.

Two cache levels, mirroring the two halves of the constraint stack:

* :class:`LocalizerCache` — the expensive, query-independent prefix.  A
  warmed :class:`~repro.core.NomLocLocalizer` bundles the convex
  decomposition, the clipping bound, and every piece's boundary
  (virtual-AP mirror) rows; all of it depends only on the area polygon
  and the localizer config, so one entry serves every query against that
  topology.
* :class:`BisectorCache` — the geometric part of the PDP-dependent rows.
  A pairwise row is a perpendicular bisector *oriented* by the PDP
  comparison; the bisector itself depends only on the two anchor
  positions.  Static APs and nomadic sites recur across queries, so the
  normalized halfspaces are memoized by (near, far) position pair while
  the orientation/confidence is still judged fresh per query.

Both caches are LRU-bounded and thread-safe, and expose hit/miss
counters for the service metrics snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core import LocalizerConfig, NomLocLocalizer
from ..geometry import HalfSpace, Polygon

__all__ = ["CacheStats", "LocalizerCache", "BisectorCache", "topology_key"]


def topology_key(area: Polygon, config: LocalizerConfig) -> tuple:
    """Hashable identity of a (venue, localizer-config) topology.

    Two areas with identical vertex tuples share all topology-derived
    state; the config rides along because the boundary weight and
    confidence function change the cached rows.
    """
    return (
        tuple((v.x, v.y) for v in area.vertices),
        config,
    )


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: lookups, hits, evictions, current size."""

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class _LRUCore:
    """Shared LRU plumbing of both cache classes."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("cache must hold at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _lookup(self, key):
        """Return the cached value or None, updating recency + counters."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return value

    def _store(self, key, value):
        """Insert ``value``, evicting the least-recently-used overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` of this cache."""
        with self._lock:
            return CacheStats(
                self._hits, self._misses, self._evictions, len(self._entries)
            )

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class LocalizerCache(_LRUCore):
    """LRU cache of warmed localizers, keyed by :func:`topology_key`.

    ``get`` either returns the cached instance (cache *hit*: convex
    decomposition and all boundary rows already built) or constructs a
    localizer, warms every piece's boundary rows, and caches it.
    """

    def __init__(self, max_entries: int = 8) -> None:
        super().__init__(max_entries)

    def get(
        self, area: Polygon, config: LocalizerConfig | None = None
    ) -> tuple[NomLocLocalizer, bool]:
        """``(localizer, was_hit)`` for a topology, building on miss."""
        config = config or LocalizerConfig()
        key = topology_key(area, config)
        localizer = self._lookup(key)
        if localizer is not None:
            return localizer, True
        localizer = NomLocLocalizer(area, config).warm()
        self._store(key, localizer)
        return localizer, False


class BisectorCache(_LRUCore):
    """LRU memo of normalized bisector halfspaces by anchor-position pair.

    Exposes the two-method mapping protocol
    (:meth:`get` / ``__setitem__``) that
    :func:`repro.core.constraints.pairwise_constraints` consumes via its
    ``bisector_cache`` parameter.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        super().__init__(max_entries)

    def get(self, key) -> HalfSpace | None:
        """The cached halfspace for ``key``, or None on miss."""
        return self._lookup(key)

    def __setitem__(self, key, halfspace: HalfSpace) -> None:
        """Memoize a freshly built halfspace."""
        self._store(key, halfspace)
