"""Service-side observability for the localization service.

A deliberately dependency-free metrics core: thread-safe counters, a
bounded latency reservoir with percentile queries, and a plain-dict
``snapshot()`` any exporter (logs, JSON endpoint, test assertion) can
consume.  Nothing here knows about the localizer — the service feeds it
events.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from collections import deque
from typing import Any, Mapping

__all__ = ["LatencyReservoir", "ServiceMetrics", "json_safe", "percentile"]


def json_safe(value: Any) -> Any:
    """Coerce a metrics snapshot into a strictly JSON-serializable form.

    The contract exporters rely on: dicts come back with **sorted,
    stringified keys** (stable wire order regardless of insertion
    history), tuples/sets become lists, enums collapse to their values,
    and non-finite floats — which ``json.dumps`` rejects or emits as
    non-standard ``NaN`` — become ``None``.  Unknown objects fall back to
    ``str``, so a snapshot never fails to serialize.
    """
    if isinstance(value, Mapping):
        return {
            str(key): json_safe(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [json_safe(item) for item in items]
    if isinstance(value, enum.Enum):
        return json_safe(value.value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (int, str)):
        return value
    return str(value)


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method, implemented locally so
    snapshots stay cheap and lock-free of numpy allocations.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile rank must be in [0, 100]")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty reservoir is undefined")
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class LatencyReservoir:
    """Bounded reservoir of recent per-query latencies (seconds).

    Keeps the most recent ``capacity`` observations — a sliding window,
    not a random sample, which is the right bias for a serving dashboard
    ("how slow are we *now*").
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self._window: deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0

    def __len__(self) -> int:
        return len(self._window)

    def observe(self, latency_s: float) -> None:
        """Record one query latency."""
        self._window.append(float(latency_s))
        self._count += 1
        self._total += float(latency_s)

    @property
    def count(self) -> int:
        """Total observations ever recorded (not just the window)."""
        return self._count

    def mean(self) -> float:
        """Mean latency over *all* observations."""
        return self._total / self._count if self._count else 0.0

    def quantiles(self, ranks=(50.0, 95.0, 99.0)) -> dict[str, float]:
        """``{"p50": ..., ...}`` over the current window (empty → zeros)."""
        if not self._window:
            return {f"p{rank:g}": 0.0 for rank in ranks}
        snapshot = list(self._window)
        return {f"p{rank:g}": percentile(snapshot, rank) for rank in ranks}


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for one service instance.

    Event vocabulary (all called by :class:`~repro.serving.service.\
LocalizationService`):

    * :meth:`record_admitted` / :meth:`record_rejected` — admission;
    * :meth:`record_queue_wait` — admission-to-worker-pickup delay;
    * :meth:`record_completed` — query finished (possibly degraded);
    * :meth:`record_cache` — topology-cache hit/miss per query.
    """

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._latencies = LatencyReservoir(latency_window)
        self._queue_waits = LatencyReservoir(latency_window)
        self._started = time.perf_counter()
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.degraded = 0
        self.timeouts = 0
        self.lp_failures = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.degraded_links_total = 0
        self.rejected_links_total = 0

    def record_admitted(self) -> None:
        """One request passed admission control."""
        with self._lock:
            self.admitted += 1

    def record_rejected(self) -> None:
        """One request bounced off the full queue (backpressure)."""
        with self._lock:
            self.rejected += 1

    def record_queue_wait(self, wait_s: float) -> None:
        """Time one request spent between admission and worker pickup.

        Only the pooled paths (``submit``/``batch``/``serve``) report
        this; a synchronous ``locate`` never waits.  Splitting queue wait
        from compute is what distinguishes "the solver got slower" from
        "the pool is saturated" — the two remedies are different.
        """
        with self._lock:
            self._queue_waits.observe(wait_s)

    def record_gating(self, degraded: int, rejected: int) -> None:
        """One gated query's link tallies from the guard layer.

        ``degraded`` links were kept with scaled weights; ``rejected``
        links were dropped before the LP (see :mod:`repro.guard`).
        Only queries carrying a gate result report here — ungated
        traffic leaves both counters untouched.
        """
        with self._lock:
            self.degraded_links_total += int(degraded)
            self.rejected_links_total += int(rejected)

    def record_cache(self, hit: bool) -> None:
        """One topology-cache lookup outcome."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_completed(
        self,
        latency_s: float,
        degraded: bool = False,
        timed_out: bool = False,
        lp_failed: bool = False,
    ) -> None:
        """One query finished (normally or via the degraded path)."""
        with self._lock:
            self.completed += 1
            self._latencies.observe(latency_s)
            if degraded:
                self.degraded += 1
            if timed_out:
                self.timeouts += 1
            if lp_failed:
                self.lp_failures += 1

    def snapshot(self, queue_depth: int = 0, queue_rejected: int = 0) -> dict:
        """Point-in-time view of the service as a plain dict.

        ``queue_depth`` and ``queue_rejected`` are passed in by the
        service because the queue, not the metrics object, owns that
        state; ``queue_rejected`` additionally counts blocking-admission
        timeouts the service-level ``rejected`` counter never sees.
        """
        with self._lock:
            elapsed = time.perf_counter() - self._started
            lookups = self.cache_hits + self.cache_misses
            snap = {
                "uptime_s": elapsed,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "degraded": self.degraded,
                "timeouts": self.timeouts,
                "lp_failures": self.lp_failures,
                "queue_depth": queue_depth,
                "queue_rejected_total": queue_rejected,
                "throughput_qps": self.completed / elapsed if elapsed > 0 else 0.0,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_hit_rate": self.cache_hits / lookups if lookups else 0.0,
                "degraded_links_total": self.degraded_links_total,
                "rejected_links_total": self.rejected_links_total,
                "latency_mean_s": self._latencies.mean(),
            }
            snap.update(
                {
                    f"latency_{k}_s": v
                    for k, v in self._latencies.quantiles().items()
                }
            )
            snap["queue_wait_mean_s"] = self._queue_waits.mean()
            snap.update(
                {
                    f"queue_wait_{k}_s": v
                    for k, v in self._queue_waits.quantiles(
                        (50.0, 95.0)
                    ).items()
                }
            )
            return snap

    def to_json(self, queue_depth: int = 0, queue_rejected: int = 0) -> dict:
        """:meth:`snapshot` as a JSON-serializable dict with sorted keys.

        The exporter-facing form (the gateway's ``/metrics`` endpoint,
        log shippers, test assertions): ``json.dumps`` never raises on
        it, and key order is stable across processes and runs.
        """
        return json_safe(
            self.snapshot(
                queue_depth=queue_depth, queue_rejected=queue_rejected
            )
        )
