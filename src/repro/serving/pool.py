"""Worker pool for concurrent localization solves.

A thin, order-preserving wrapper over ``ThreadPoolExecutor`` with an
inline sequential mode (``max_workers=0``) so every serving code path has
exactly one shape: ``submit`` → ``Future``.  Sequential mode executes at
submit time and returns an already-resolved future, which keeps results
bit-identical and makes the pooled/sequential equivalence trivially
testable.

Threads (not processes) are the right grain here: the per-piece LP
solves are numpy-heavy, queries are independent, and anchors/constraint
rows are immutable dataclasses that would be expensive to pickle.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["WorkerPool"]

T = TypeVar("T")

#: Warning text for ``WorkerPool(max_workers=None)``.  The serving bench
#: (BENCH_serving_throughput.json) shows cpu_count() *threads* make p50
#: latency worse, not better: the per-query LP solves hold the GIL, so
#: threads only add contention.  ``None`` keeps resolving to cpu_count()
#: for backwards compatibility, but loudly.
_CPU_COUNT_WARNING = (
    "WorkerPool(max_workers=None) resolves to os.cpu_count() threads, "
    "which the serving benchmarks show is counterproductive for the "
    "GIL-bound LP solves (threads add contention, not parallelism). "
    "Prefer ServingConfig(worker_mode='process') for real parallelism, "
    "lp_batch for stacked solves, or an explicit small thread count."
)


def _resolved(fn: Callable[..., T], *args, **kwargs) -> "Future[T]":
    """Run ``fn`` now and wrap the outcome in a completed future."""
    future: Future = Future()
    try:
        future.set_result(fn(*args, **kwargs))
    except BaseException as exc:  # noqa: BLE001 — future carries it
        future.set_exception(exc)
    return future


class WorkerPool:
    """Bounded thread pool with a sequential fallback.

    Parameters
    ----------
    max_workers:
        ``0`` runs everything inline on the caller's thread (the
        sequential fallback — bit-identical reference behaviour); any
        positive integer sizes the pool explicitly.  ``None`` picks
        ``os.cpu_count()`` **and warns**: cpu_count() GIL-bound threads
        demonstrably serve slower than sequential (see
        ``BENCH_serving_throughput.json``), so an explicit choice — the
        process pool, ``lp_batch``, or a deliberate thread count — is
        almost always what the caller actually wants.
    """

    def __init__(self, max_workers: int | None = 0) -> None:
        if max_workers is None:
            warnings.warn(_CPU_COUNT_WARNING, RuntimeWarning, stacklevel=2)
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.max_workers = max_workers
        self._executor = (
            ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-serve"
            )
            if max_workers > 0
            else None
        )

    @property
    def concurrent(self) -> bool:
        """True when submissions actually run on worker threads."""
        return self._executor is not None

    def submit(self, fn: Callable[..., T], *args, **kwargs) -> "Future[T]":
        """Schedule ``fn(*args, **kwargs)``; inline when sequential."""
        if self._executor is None:
            return _resolved(fn, *args, **kwargs)
        return self._executor.submit(fn, *args, **kwargs)

    def map_ordered(
        self, fn: Callable[[T], object], items: Sequence[T] | Iterable[T]
    ) -> list:
        """Apply ``fn`` to every item, returning results in item order.

        The per-item ordering guarantee is what lets the localizer's
        piece solves run through a pool without perturbing the
        area-weighted merge (which is order-sensitive in ties).
        """
        futures = [self.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; no-op when sequential)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: shut the pool down."""
        self.shutdown()
