"""Process-based serving workers: real parallelism past the GIL.

The thread :class:`~repro.serving.pool.WorkerPool` cannot speed up the
serving hot path — the per-query LP solves hold the GIL, so threads add
contention, not parallelism (``BENCH_serving_throughput.json`` shows p50
*worsening* under cpu_count() threads).  This module runs the solves in
worker **processes** instead, with the warmed read-only state shared
instead of rebuilt:

* each worker holds a full sequential :class:`LocalizationService`
  template (localizer, boundary rows, bisector cache) in a module
  global;
* under the ``fork`` start method (Linux default) the parent builds and
  warms that template *before* spawning, so every worker inherits the
  caches copy-on-write — zero per-worker warm-up, zero serialization of
  the topology state;
* under ``spawn``/``forkserver`` an initializer rebuilds the template
  from the pickled ``(area, localizer_config, serving_config)`` triple —
  slower start-up, identical behaviour.

Bit-exactness contract: a worker answers a request with the exact
sequential reference pipeline (``max_workers=0``, no piece pool), so
responses are bit-identical to the caller running
:meth:`LocalizationService.locate_request` itself; only queue/latency
metadata differs.  Chunked submissions run the worker's *batched* LP
path, which is itself bit-identical to sequential (see
:mod:`repro.optimize.batched`).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core import LocalizerConfig
    from ..geometry import Polygon
    from .service import (
        LocalizationRequest,
        LocalizationResponse,
        LocalizationService,
        ServingConfig,
    )

__all__ = ["ProcessWorkerPool"]

#: The per-process template service.  In the parent it is set (and
#: warmed) before the executor forks, so fork-started workers inherit the
#: caches copy-on-write; spawn-started workers build their own copy in
#: :func:`_init_worker`.
_WORKER_SERVICE: "LocalizationService | None" = None


def _build_template(
    area: "Polygon",
    localizer_config: "LocalizerConfig | None",
    config: "ServingConfig",
) -> "LocalizationService":
    """A warmed sequential service for one worker process."""
    from .service import LocalizationService

    service = LocalizationService(area, localizer_config, config)
    # Prime the topology cache for the default venue so the first query
    # in every worker skips the convex decomposition + boundary rows.
    service._localizer_for(area)
    return service


def _init_worker(
    area: "Polygon",
    localizer_config: "LocalizerConfig | None",
    config: "ServingConfig",
) -> None:
    """Executor initializer: ensure the worker has a template service.

    Fork-started workers already inherited ``_WORKER_SERVICE`` from the
    parent and skip the rebuild; spawn-started workers construct it here.
    """
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = _build_template(area, localizer_config, config)


def _handle_in_worker(request: "LocalizationRequest") -> "LocalizationResponse":
    """Worker entry point: one request through the sequential pipeline."""
    assert _WORKER_SERVICE is not None, "worker initializer did not run"
    return _WORKER_SERVICE._handle(request, allow_piece_pool=False)


def _handle_chunk_in_worker(
    requests: Sequence["LocalizationRequest"],
) -> list["LocalizationResponse"]:
    """Worker entry point: one micro-batch through the stacked-LP path."""
    assert _WORKER_SERVICE is not None, "worker initializer did not run"
    return _WORKER_SERVICE._handle_batch(list(requests))


class ProcessWorkerPool:
    """Order-preserving pool of process workers for localization solves.

    Parameters
    ----------
    area, localizer_config, serving_config:
        The template the workers serve with.  ``serving_config`` is
        normalized to the sequential reference (``max_workers=0``,
        thread mode) inside each worker so a worker never nests pools.
    max_workers:
        Process count; ``None`` picks ``os.cpu_count()`` — the right
        default here, unlike threads, because processes do not share a
        GIL.
    """

    def __init__(
        self,
        area: "Polygon",
        localizer_config: "LocalizerConfig | None",
        serving_config: "ServingConfig",
        max_workers: int | None = None,
    ) -> None:
        global _WORKER_SERVICE
        self.max_workers = max_workers or os.cpu_count() or 1
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        template_config = replace(
            serving_config, max_workers=0, worker_mode="thread", lp_batch=0
        )
        ctx = multiprocessing.get_context()
        if ctx.get_start_method() == "fork":
            # Build + warm before forking so workers inherit the caches
            # copy-on-write.  Reuse an existing identical template (e.g.
            # a pool restarted with the same venue) rather than rebuild.
            _WORKER_SERVICE = _build_template(
                area, localizer_config, template_config
            )
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(area, localizer_config, template_config),
        )

    @property
    def concurrent(self) -> bool:
        """Always true: process workers never run inline."""
        return True

    def submit_request(
        self, request: "LocalizationRequest"
    ) -> "Future[LocalizationResponse]":
        """Schedule one request on a worker process."""
        return self._executor.submit(_handle_in_worker, request)

    def submit_chunk(
        self, requests: Sequence["LocalizationRequest"]
    ) -> "Future[list[LocalizationResponse]]":
        """Schedule a micro-batch; the worker runs the stacked-LP path."""
        return self._executor.submit(_handle_chunk_in_worker, list(requests))

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ProcessWorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: shut the pool down."""
        self.shutdown()
