"""Bounded admission control for the localization service.

The service accepts a request only while fewer than ``capacity`` queries
are in flight (queued or executing).  A full queue *rejects* rather than
buffers unboundedly — callers see :class:`QueueFullError` immediately and
can shed load upstream, which is the behaviour a heavily loaded
localization backend needs (a late position fix is worthless).
"""

from __future__ import annotations

import threading

__all__ = ["QueueFullError", "AdmissionQueue"]


class QueueFullError(RuntimeError):
    """Raised when a request is submitted to a service at capacity."""


class AdmissionQueue:
    """Counting gate over the service's in-flight request slots.

    Not a data queue — requests themselves travel through the worker
    pool; this object only meters how many may be in flight at once and
    exposes the current depth for metrics.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._depth = 0
        self._rejected_total = 0
        self._cond = threading.Condition()

    @property
    def depth(self) -> int:
        """Number of requests currently holding a slot."""
        with self._cond:
            return self._depth

    @property
    def rejected_total(self) -> int:
        """Submissions bounced off the full queue since construction.

        Counts both immediate :meth:`try_acquire` rejections and
        :meth:`acquire` timeouts — the shed-load signal a cluster router
        (or :class:`~repro.serving.metrics.ServiceMetrics` snapshot)
        reads to see backpressure, not just the instantaneous depth.
        """
        with self._cond:
            return self._rejected_total

    def try_acquire(self) -> None:
        """Take a slot or raise :class:`QueueFullError` immediately."""
        with self._cond:
            if self._depth >= self.capacity:
                self._rejected_total += 1
                raise QueueFullError(
                    f"request queue full ({self.capacity} in flight)"
                )
            self._depth += 1

    def acquire(self, timeout: float | None = None) -> None:
        """Take a slot, blocking until one frees up.

        Raises :class:`QueueFullError` when ``timeout`` (seconds) elapses
        first; ``None`` waits indefinitely.
        """
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._depth < self.capacity, timeout
            ):
                self._rejected_total += 1
                raise QueueFullError(
                    f"request queue full ({self.capacity} in flight) "
                    f"after {timeout}s"
                )
            self._depth += 1

    def release(self) -> None:
        """Return a slot (called by the service when a query finishes)."""
        with self._cond:
            if self._depth <= 0:
                raise RuntimeError("release without matching acquire")
            self._depth -= 1
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every slot is returned; True unless ``timeout`` hit.

        The drain primitive: a service that has stopped admissions waits
        here for its in-flight queries before shutting the pool down.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._depth == 0, timeout)
