"""`LocalizationService`: the batched, cached, concurrent serving façade.

Wraps :class:`~repro.core.NomLocLocalizer` the way a production NomLoc
backend would be deployed — a long-lived process answering a stream of
anchor-set queries — instead of the one-shot CLI path that rebuilds the
whole constraint system per call:

* the topology-dependent constraint prefix (convex decomposition,
  boundary/virtual-AP rows) comes from an LRU
  :class:`~repro.serving.cache.LocalizerCache`, so only the
  PDP-dependent pairwise rows are rebuilt per query;
* independent queries run concurrently on a
  :class:`~repro.serving.pool.WorkerPool` (sequential fallback:
  ``max_workers=0`` — results are bit-identical either way);
* a bounded :class:`~repro.serving.queueing.AdmissionQueue` sheds load
  instead of buffering it, a cooperative per-query deadline bounds tail
  latency, and LP failures or timeouts degrade gracefully to the
  PDP-weighted-centroid baseline with the degraded path flagged in the
  response;
* :class:`~repro.serving.metrics.ServiceMetrics` tracks latency
  percentiles, throughput, cache hit rates, queue depth and fallbacks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..core import Anchor, LocalizerConfig, LocationEstimate, NomLocLocalizer
from ..geometry import Point, Polygon
from ..obs import aggregate, get_tracer, span
from .cache import BisectorCache, LocalizerCache
from .metrics import ServiceMetrics, json_safe
from .pool import WorkerPool
from .queueing import AdmissionQueue, QueueFullError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layer cycle
    from ..guard.policy import GateResult

__all__ = [
    "ServiceClosedError",
    "ServingConfig",
    "LocalizationRequest",
    "LocalizationResponse",
    "LocalizationService",
    "weighted_centroid",
]


class _DeadlineExceeded(Exception):
    """Internal: a query's cooperative deadline expired mid-solve."""


class ServiceClosedError(RuntimeError):
    """Raised on submissions to a service that is draining or closed."""


def weighted_centroid(anchors: Sequence[Anchor]) -> Point:
    """PDP-weighted centroid of an anchor set (degradation estimator).

    The same estimator as the
    :class:`~repro.baselines.WeightedCentroidLocalizer` baseline
    (exponent 1): coarse, calibration-free, O(anchors).  Shared by the
    service's degraded path and the cluster's all-replicas-down fallback;
    callers project the result into their venue.
    """
    total = sum(a.pdp for a in anchors)
    if total <= 0:  # PDPs are validated positive; belt and braces
        total = float(len(anchors))
        return Point(
            sum(a.position.x for a in anchors) / total,
            sum(a.position.y for a in anchors) / total,
        )
    return Point(
        sum(a.pdp * a.position.x for a in anchors) / total,
        sum(a.pdp * a.position.y for a in anchors) / total,
    )


@dataclass(frozen=True)
class ServingConfig:
    """Operational knobs of a :class:`LocalizationService`.

    Attributes
    ----------
    max_workers:
        Query-level concurrency; ``0`` is the sequential reference path.
    worker_mode:
        ``"thread"`` (default) runs query workers on a
        :class:`~repro.serving.pool.WorkerPool`; ``"process"`` runs them
        on a :class:`~repro.serving.procpool.ProcessWorkerPool` — real
        parallelism for the GIL-bound LP solves, with the warmed
        topology/bisector caches fork-inherited by every worker.
        Results stay bit-identical to sequential either way.
    lp_batch:
        Micro-batch size for :meth:`batch`: groups of up to this many
        queries are solved through the stacked-LP path
        (:meth:`~repro.core.NomLocLocalizer.locate_batch`), advancing N
        queries per NumPy pass instead of one per Python pivot loop.
        ``0``/``1`` disables batching.  Composes with ``worker_mode``:
        each worker (thread or process) solves whole chunks.
    queue_capacity:
        In-flight request bound; non-blocking submissions beyond it are
        rejected with :class:`~repro.serving.queueing.QueueFullError`.
    timeout_s:
        Default per-query deadline (seconds), checked cooperatively
        between piece solves; ``None`` disables it.  On expiry the query
        degrades to the weighted-centroid fallback.
    degrade_on_failure:
        Answer LP failures/timeouts with the flagged fallback estimate
        instead of propagating the exception.
    cache_topologies / max_cached_topologies:
        Reuse warmed localizers (decomposition + boundary rows) per
        (area, config) topology, LRU-bounded.
    cache_bisectors / max_cached_bisectors:
        Memoize normalized bisector halfspaces by anchor-position pair.
    parallel_pieces:
        Also solve a query's convex pieces concurrently when the query
        is handled on the caller's thread (``locate``); batch/stream
        paths keep pieces sequential inside each worker to avoid pool
        self-starvation.
    latency_window:
        Size of the sliding latency reservoir behind the percentiles.
    """

    max_workers: int = 0
    worker_mode: str = "thread"
    lp_batch: int = 0
    queue_capacity: int = 64
    timeout_s: float | None = None
    degrade_on_failure: bool = True
    cache_topologies: bool = True
    max_cached_topologies: int = 8
    cache_bisectors: bool = True
    max_cached_bisectors: int = 4096
    parallel_pieces: bool = False
    latency_window: int = 2048

    def __post_init__(self) -> None:
        # Every knob is validated here, at construction, so a bad config
        # fails loudly instead of deep inside some later query.
        if self.max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        if self.worker_mode not in ("thread", "process"):
            raise ValueError("worker_mode must be 'thread' or 'process'")
        if self.worker_mode == "process" and self.max_workers < 1:
            raise ValueError("process worker_mode needs max_workers >= 1")
        if self.lp_batch < 0:
            raise ValueError("lp_batch must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")
        if self.max_cached_topologies < 1:
            raise ValueError("max_cached_topologies must be positive")
        if self.max_cached_bisectors < 1:
            raise ValueError("max_cached_bisectors must be positive")
        if self.latency_window < 1:
            raise ValueError("latency_window must be positive")


@dataclass(frozen=True)
class LocalizationRequest:
    """One serving query: an anchor set, optionally its own venue.

    Attributes
    ----------
    anchors:
        The measured anchor set (positions + PDPs), as produced by
        :meth:`repro.core.NomLocSystem.gather_anchors` or a recorded
        dataset.
    query_id:
        Caller-chosen correlation id echoed in the response.
    area:
        Venue override for multi-tenant serving; ``None`` uses the
        service default.
    timeout_s:
        Per-request deadline override (``None`` inherits the service's).
    gate:
        Optional measurement-gating outcome
        (:class:`repro.guard.GateResult`) from the guard layer.  When
        present, its quality weights scale the relaxation LP's rows,
        its per-link rulings feed the ``degraded_links_total`` /
        ``rejected_links_total`` service counters, and the served
        estimate carries its ``confidence`` and reasons.  ``None`` (the
        default) serves exactly the historical ungated pipeline.
    """

    anchors: tuple[Anchor, ...]
    query_id: str = ""
    area: Polygon | None = None
    timeout_s: float | None = None
    gate: "GateResult | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "anchors", tuple(self.anchors))
        if not self.anchors:
            raise ValueError("a localization request needs at least one anchor")


@dataclass(frozen=True)
class LocalizationResponse:
    """Outcome of one serving query.

    ``position`` is always present; ``estimate`` carries the full SP
    diagnostics and is ``None`` exactly when the query ``degraded`` to
    the weighted-centroid fallback (``reason`` says why: ``"timeout"``
    or ``"lp-failure"``).
    """

    query_id: str
    position: Point
    estimate: LocationEstimate | None
    degraded: bool = False
    reason: str = ""
    cache_hit: bool = False
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the full SP pipeline answered (not the fallback)."""
        return not self.degraded

    @property
    def confidence(self) -> float:
        """Measurement-layer confidence of the served answer.

        The estimate's guard confidence (1.0 on the ungated path), or
        0.0 for degraded fallback answers — a weighted-centroid guess
        deserves no measurement-layer trust.  This is the value
        downstream consumers (the session layer's confidence-to-noise
        mapping, wire payloads) read; before it existed, the gate's
        confidence died here (ROADMAP item 2's "dropped on the floor").
        """
        return self.estimate.confidence if self.estimate is not None else 0.0

    def error_to(self, truth: Point) -> float:
        """Euclidean error of the served position against ground truth."""
        return self.position.distance_to(truth)


class LocalizationService:
    """Long-lived serving façade over the NomLoc SP pipeline.

    Parameters
    ----------
    area:
        Default venue polygon for requests that don't carry their own.
    localizer_config:
        SP knobs shared by every served query.
    config:
        Operational :class:`ServingConfig`.

    Bit-exactness contract: for any request, the served ``position`` and
    ``estimate`` equal what a fresh
    ``NomLocLocalizer(area, localizer_config).locate(anchors)`` returns —
    caching and pooling only reorder/ reuse deterministic work, they
    never change it.  The degraded fallback is the only exception and is
    always flagged.
    """

    def __init__(
        self,
        area: Polygon,
        localizer_config: LocalizerConfig | None = None,
        config: ServingConfig | None = None,
    ) -> None:
        self.area = area
        self.localizer_config = localizer_config or LocalizerConfig()
        self.config = config or ServingConfig()
        self.metrics = ServiceMetrics(self.config.latency_window)
        self.queue = AdmissionQueue(self.config.queue_capacity)
        if self.config.worker_mode == "process":
            from .procpool import ProcessWorkerPool

            self.proc_pool: "ProcessWorkerPool | None" = ProcessWorkerPool(
                area,
                self.localizer_config,
                self.config,
                self.config.max_workers,
            )
            # Piece-level work stays inline: the query-level process pool
            # is the concurrency mechanism.
            self.pool = WorkerPool(0)
        else:
            self.proc_pool = None
            self.pool = WorkerPool(self.config.max_workers)
        self.topology_cache = (
            LocalizerCache(self.config.max_cached_topologies)
            if self.config.cache_topologies
            else None
        )
        self.bisector_cache = (
            BisectorCache(self.config.max_cached_bisectors)
            if self.config.cache_bisectors
            else None
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`drain`/:meth:`close` stopped admissions."""
        return self._closed

    def drain(self, timeout_s: float | None = None) -> dict:
        """Graceful shutdown: stop admissions, finish in-flight, flush.

        The clean replica-shutdown path: new submissions raise
        :class:`ServiceClosedError` immediately, every already-admitted
        query runs to completion, and the final metrics snapshot is
        returned before the worker pool is torn down.  Idempotent — a
        second call just re-snapshots.

        Raises
        ------
        TimeoutError
            When in-flight queries are still running after ``timeout_s``
            seconds (``None`` waits indefinitely); admissions stay
            stopped and the pool is left running so the caller can retry.
        """
        self._closed = True
        if not self.queue.wait_idle(timeout_s):
            raise TimeoutError(
                f"{self.queue.depth} queries still in flight "
                f"after {timeout_s}s drain"
            )
        snapshot = self.metrics_snapshot()
        self.pool.shutdown()
        if self.proc_pool is not None:
            self.proc_pool.shutdown()
        return snapshot

    def close(self) -> None:
        """Drain and shut down the worker pool (idempotent)."""
        self.drain()

    def __enter__(self) -> "LocalizationService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the service."""
        self.close()

    # ------------------------------------------------------------------
    # Query paths
    # ------------------------------------------------------------------
    def locate(
        self,
        anchors: Sequence[Anchor],
        query_id: str = "",
        area: Polygon | None = None,
        timeout_s: float | None = None,
        gate: "GateResult | None" = None,
    ) -> LocalizationResponse:
        """Serve one query synchronously on the caller's thread.

        This path may additionally parallelize the per-piece solves when
        :attr:`ServingConfig.parallel_pieces` is set.  ``gate``
        optionally carries the guard layer's verdicts (see
        :class:`LocalizationRequest`).
        """
        request = LocalizationRequest(
            tuple(anchors),
            query_id=query_id,
            area=area,
            timeout_s=timeout_s,
            gate=gate,
        )
        return self._handle(request, allow_piece_pool=True)

    def locate_request(
        self, request: LocalizationRequest
    ) -> LocalizationResponse:
        """Serve one already-built request synchronously.

        The request-preserving sibling of :meth:`locate` — callers that
        construct a :class:`LocalizationRequest` (the cluster's replicas,
        gated pipelines) route through here so optional fields like
        ``gate`` survive the hop.
        """
        return self._handle(request, allow_piece_pool=True)

    def submit(self, request: LocalizationRequest | Sequence[Anchor]):
        """Enqueue one query without blocking; returns its future.

        Raises
        ------
        QueueFullError
            When the service already has ``queue_capacity`` requests in
            flight — the caller should shed or retry later
            (backpressure).
        """
        self._check_open()
        request = self._coerce(request)
        try:
            self.queue.try_acquire()
        except QueueFullError:
            self.metrics.record_rejected()
            raise
        self.metrics.record_admitted()
        return self._dispatch(request, time.perf_counter())

    def batch(
        self, requests: Iterable[LocalizationRequest | Sequence[Anchor]]
    ) -> list[LocalizationResponse]:
        """Serve a batch, blocking for admission; responses in input order.

        Unlike :meth:`submit`, a full queue here *waits* for a slot
        instead of rejecting — a batch caller wants all answers.  With
        :attr:`ServingConfig.lp_batch` set, consecutive requests are
        grouped into micro-batches that each worker solves through the
        stacked-LP path — positions stay bit-identical to per-request
        serving.
        """
        chunk_size = self.config.lp_batch
        if chunk_size > 1:
            return self._batch_chunked(requests, chunk_size)
        futures = []
        for request in requests:
            self._check_open()
            request = self._coerce(request)
            self.queue.acquire()
            self.metrics.record_admitted()
            futures.append(self._dispatch(request, time.perf_counter()))
        return [f.result() for f in futures]

    def _batch_chunked(
        self,
        requests: Iterable[LocalizationRequest | Sequence[Anchor]],
        chunk_size: int,
    ) -> list[LocalizationResponse]:
        """Micro-batched :meth:`batch`: chunks of requests per worker."""
        futures = []
        chunk: list[LocalizationRequest] = []

        def flush() -> None:
            if chunk:
                futures.append(
                    self._dispatch_chunk(list(chunk), time.perf_counter())
                )
                chunk.clear()

        for request in requests:
            self._check_open()
            request = self._coerce(request)
            self.queue.acquire()
            self.metrics.record_admitted()
            chunk.append(request)
            if len(chunk) >= chunk_size:
                flush()
        flush()
        return [response for f in futures for response in f.result()]

    def serve(
        self,
        requests: Iterable[LocalizationRequest | Sequence[Anchor]],
        window: int | None = None,
    ) -> Iterator[LocalizationResponse]:
        """Stream responses for a request stream, preserving order.

        Keeps at most ``window`` queries in flight (default:
        ``2 * max_workers``, min 1), yielding each response as soon as
        its turn completes — the shape of a server's ingest loop without
        the sockets.
        """
        if window is None:
            workers = (
                self.proc_pool.max_workers
                if self.proc_pool is not None
                else self.pool.max_workers
            )
            window = max(1, 2 * workers)
        pending: list = []
        for request in requests:
            self._check_open()
            request = self._coerce(request)
            self.queue.acquire()
            self.metrics.record_admitted()
            pending.append(self._dispatch(request, time.perf_counter()))
            while len(pending) >= window:
                yield pending.pop(0).result()
        while pending:
            yield pending.pop(0).result()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Plain-dict service state: latency, throughput, caches, queue.

        When tracing is enabled (:func:`repro.obs.enable` /
        :func:`repro.obs.capture`), the snapshot additionally carries a
        ``"spans"`` key with the per-stage latency aggregates of every
        span finished so far — the serving metrics and the pipeline
        stage breakdown read as one observable state.
        """
        snap = self.metrics.snapshot(
            queue_depth=self.queue.depth,
            queue_rejected=self.queue.rejected_total,
        )
        tracer = get_tracer()
        if tracer is not None:
            snap["spans"] = aggregate(tracer.finished())
        if self.topology_cache is not None:
            stats = self.topology_cache.stats()
            snap["topology_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "hit_rate": stats.hit_rate,
            }
        if self.bisector_cache is not None:
            stats = self.bisector_cache.stats()
            snap["bisector_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "size": stats.size,
                "hit_rate": stats.hit_rate,
            }
        return snap

    def metrics_json(self) -> dict:
        """:meth:`metrics_snapshot` coerced to JSON-serializable form.

        Sorted keys, enum values collapsed, non-finite floats nulled —
        see :func:`repro.serving.metrics.json_safe`.  This is what
        network exporters (the gateway ``/metrics`` endpoint) serve
        directly, without any per-caller conversion shims.
        """
        return json_safe(self.metrics_snapshot())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        """Refuse admissions once the service is draining/closed."""
        if self._closed:
            raise ServiceClosedError("service is draining; admissions stopped")

    def _coerce(
        self, request: LocalizationRequest | Sequence[Anchor]
    ) -> LocalizationRequest:
        """Accept bare anchor sequences anywhere a request is expected."""
        if isinstance(request, LocalizationRequest):
            return request
        return LocalizationRequest(tuple(request))

    def _localizer_for(self, area: Polygon) -> tuple[NomLocLocalizer, bool]:
        """``(localizer, cache_hit)`` for one venue topology."""
        if self.topology_cache is not None:
            return self.topology_cache.get(area, self.localizer_config)
        return NomLocLocalizer(area, self.localizer_config).warm(), False

    def _dispatch(self, request: LocalizationRequest, admitted_at: float):
        """Route one admitted request to the configured worker kind."""
        if self.proc_pool is not None:
            return self._wrap_process_future(
                self.proc_pool.submit_request(request),
                [request],
                admitted_at,
                unwrap_single=True,
            )
        return self.pool.submit(
            self._handle_and_release, request, admitted_at
        )

    def _dispatch_chunk(
        self, chunk: list[LocalizationRequest], admitted_at: float
    ):
        """Route one admitted micro-batch to the configured worker kind."""
        if self.proc_pool is not None:
            return self._wrap_process_future(
                self.proc_pool.submit_chunk(chunk), chunk, admitted_at
            )
        return self.pool.submit(
            self._handle_chunk_and_release, chunk, admitted_at
        )

    def _wrap_process_future(
        self,
        raw,
        requests: list[LocalizationRequest],
        admitted_at: float,
        unwrap_single: bool = False,
    ):
        """Account for process-worker results on the parent side.

        Worker processes record metrics into *their own* (discarded)
        service instance, so the parent re-records each response's
        observable outcome — queue wait, cache hit, completion, gating —
        into its metrics, then frees the admission slots.  The returned
        future resolves to the response (``unwrap_single``) or the
        response list.
        """
        from concurrent.futures import Future

        wrapped: Future = Future()

        def _done(f) -> None:
            try:
                responses = f.result()
            except BaseException as exc:  # noqa: BLE001 — future carries it
                for _ in requests:
                    self.queue.release()
                wrapped.set_exception(exc)
                return
            if unwrap_single:
                responses = [responses]
            round_trip_s = max(0.0, time.perf_counter() - admitted_at)
            try:
                for request, response in zip(requests, responses):
                    # Queue wait = round trip minus the worker's compute
                    # time; transport (pickling) counts as wait, which is
                    # honest — it is serving overhead, not solving.
                    self.metrics.record_queue_wait(
                        max(0.0, round_trip_s - response.latency_s)
                    )
                    self.metrics.record_cache(response.cache_hit)
                    if request.gate is not None:
                        self.metrics.record_gating(
                            len(request.gate.degraded),
                            len(request.gate.rejected),
                        )
                    self.metrics.record_completed(
                        response.latency_s,
                        degraded=response.degraded,
                        timed_out=response.reason == "timeout",
                        lp_failed=response.reason == "lp-failure",
                    )
            finally:
                for _ in requests:
                    self.queue.release()
            wrapped.set_result(responses[0] if unwrap_single else responses)

        raw.add_done_callback(_done)
        return wrapped

    def _handle_chunk_and_release(
        self,
        chunk: list[LocalizationRequest],
        admitted_at: float,
    ) -> list[LocalizationResponse]:
        """Worker entry point for a micro-batch: handle, free the slots."""
        queue_wait_s = max(0.0, time.perf_counter() - admitted_at)
        for _ in chunk:
            self.metrics.record_queue_wait(queue_wait_s)
        try:
            return self._handle_batch(chunk)
        finally:
            for _ in chunk:
                self.queue.release()

    def _handle_and_release(
        self,
        request: LocalizationRequest,
        admitted_at: float | None = None,
    ) -> LocalizationResponse:
        """Worker entry point: handle, then free the admission slot.

        ``admitted_at`` is the admission timestamp the submitting thread
        captured; the gap to now is the request's queue wait — the load
        component of its latency, reported separately from compute.
        """
        queue_wait_s = (
            time.perf_counter() - admitted_at if admitted_at is not None else 0.0
        )
        self.metrics.record_queue_wait(queue_wait_s)
        try:
            return self._handle(
                request, allow_piece_pool=False, queue_wait_s=queue_wait_s
            )
        finally:
            self.queue.release()

    def _handle(
        self,
        request: LocalizationRequest,
        allow_piece_pool: bool,
        queue_wait_s: float = 0.0,
    ) -> LocalizationResponse:
        """Run one query through cache + solver, degrading on failure."""
        with span(
            "serve.query",
            query_id=request.query_id,
            anchors=len(request.anchors),
        ) as sp:
            started = time.perf_counter()
            area = request.area if request.area is not None else self.area
            localizer, cache_hit = self._localizer_for(area)
            self.metrics.record_cache(cache_hit)
            timeout = (
                request.timeout_s
                if request.timeout_s is not None
                else self.config.timeout_s
            )
            deadline = started + timeout if timeout is not None else None
            gate = request.gate
            if gate is not None:
                self.metrics.record_gating(
                    len(gate.degraded), len(gate.rejected)
                )
            timed_out = lp_failed = False
            estimate: LocationEstimate | None = None
            reason = ""
            try:
                estimate = self._solve(
                    localizer,
                    request.anchors,
                    deadline,
                    allow_piece_pool,
                    quality_weights=(
                        gate.quality_weights if gate is not None else None
                    ),
                )
            except _DeadlineExceeded:
                if not self.config.degrade_on_failure:
                    raise TimeoutError(
                        f"query {request.query_id!r} exceeded {timeout}s"
                    ) from None
                timed_out = True
                reason = "timeout"
            except (RuntimeError, ArithmeticError):
                # The relaxation LP "should not" fail (it is always
                # feasible) but solver pathologies happen under load; a
                # flagged coarse answer beats a 500.
                if not self.config.degrade_on_failure:
                    raise
                lp_failed = True
                reason = "lp-failure"
            if estimate is not None:
                if gate is not None:
                    estimate = replace(
                        estimate,
                        confidence=gate.confidence,
                        degradation_reasons=gate.reasons,
                    )
                position = estimate.position
                degraded = False
            else:
                position = self._fallback_position(localizer, request.anchors)
                degraded = True
            latency = time.perf_counter() - started
            self.metrics.record_completed(
                latency,
                degraded=degraded,
                timed_out=timed_out,
                lp_failed=lp_failed,
            )
            # The queue-wait vs compute split: ``queue_wait_s`` is load
            # (time spent admitted but unpicked), ``compute_s`` is work.
            sp.set(
                queue_wait_s=queue_wait_s,
                compute_s=latency,
                cache_hit=cache_hit,
                degraded=degraded,
            )
            if gate is not None:
                sp.set(
                    link_confidence=gate.confidence,
                    degraded_links=len(gate.degraded),
                    rejected_links=len(gate.rejected),
                )
            return LocalizationResponse(
                query_id=request.query_id,
                position=position,
                estimate=estimate,
                degraded=degraded,
                reason=reason,
                cache_hit=cache_hit,
                latency_s=latency,
            )

    def _handle_batch(
        self, requests: list[LocalizationRequest]
    ) -> list[LocalizationResponse]:
        """Serve a micro-batch through the stacked-LP path.

        Requests carrying a deadline run the scalar cooperative-deadline
        path; the rest are grouped by venue topology and solved with one
        :meth:`~repro.core.NomLocLocalizer.locate_batch` pass per group.
        Any group whose stacked solve fails falls back to per-request
        scalar handling, so one poisoned query degrades only itself —
        exactly the scalar path's failure isolation.  Served positions
        are bit-identical to per-request serving either way.
        """
        responses: list[LocalizationResponse | None] = [None] * len(requests)
        groups: dict[int, list[int]] = {}
        localizers: dict[int, tuple[NomLocLocalizer, list[bool]]] = {}
        for i, request in enumerate(requests):
            timeout = (
                request.timeout_s
                if request.timeout_s is not None
                else self.config.timeout_s
            )
            if timeout is not None:
                # Deadlines are enforced cooperatively *between* piece
                # solves; a stacked pass has no such boundary, so these
                # take the scalar path.
                responses[i] = self._handle(request, allow_piece_pool=False)
                continue
            area = request.area if request.area is not None else self.area
            localizer, cache_hit = self._localizer_for(area)
            key = id(localizer)
            if key not in localizers:
                localizers[key] = (localizer, [])
            localizers[key][1].append(cache_hit)
            groups.setdefault(key, []).append(i)
        for key, members in groups.items():
            localizer, cache_hits = localizers[key]
            group = [requests[i] for i in members]
            try:
                served = self._solve_group(localizer, group, cache_hits)
            except (RuntimeError, ArithmeticError):
                # Per-request fallback: re-serving scalar re-runs the
                # cache lookup and degrades (or raises) per query.
                served = [
                    self._handle(request, allow_piece_pool=False)
                    for request in group
                ]
            for i, response in zip(members, served):
                responses[i] = response
        return responses  # type: ignore[return-value]  # every slot filled

    def _solve_group(
        self,
        localizer: NomLocLocalizer,
        requests: list[LocalizationRequest],
        cache_hits: list[bool],
    ) -> list[LocalizationResponse]:
        """One topology group's stacked solve + per-request bookkeeping."""
        with span("serve.batch", queries=len(requests)) as sp:
            started = time.perf_counter()
            estimates = localizer.locate_batch(
                [request.anchors for request in requests],
                quality_weights=[
                    request.gate.quality_weights
                    if request.gate is not None
                    else None
                    for request in requests
                ],
                bisector_cache=self.bisector_cache,
            )
            latency = time.perf_counter() - started
            sp.set(compute_s=latency)
            responses = []
            for request, estimate, cache_hit in zip(
                requests, estimates, cache_hits
            ):
                gate = request.gate
                if gate is not None:
                    self.metrics.record_gating(
                        len(gate.degraded), len(gate.rejected)
                    )
                    estimate = replace(
                        estimate,
                        confidence=gate.confidence,
                        degradation_reasons=gate.reasons,
                    )
                self.metrics.record_cache(cache_hit)
                # Every request in the chunk completes when the chunk
                # does, so the chunk wall time is each one's latency.
                self.metrics.record_completed(latency, degraded=False)
                responses.append(
                    LocalizationResponse(
                        query_id=request.query_id,
                        position=estimate.position,
                        estimate=estimate,
                        cache_hit=cache_hit,
                        latency_s=latency,
                    )
                )
            return responses

    def _solve(
        self,
        localizer: NomLocLocalizer,
        anchors: Sequence[Anchor],
        deadline: float | None,
        allow_piece_pool: bool,
        quality_weights=None,
    ) -> LocationEstimate:
        """The full SP pipeline with a cooperative between-piece deadline."""
        shared = localizer.build_shared_constraints(
            anchors,
            bisector_cache=self.bisector_cache,
            quality_weights=quality_weights,
        )

        def solve_one(index: int):
            if deadline is not None and time.perf_counter() > deadline:
                raise _DeadlineExceeded
            return localizer.solve_piece(index, shared)

        indices = range(len(localizer.pieces))
        if (
            allow_piece_pool
            and self.config.parallel_pieces
            and self.pool.concurrent
        ):
            solutions = self.pool.map_ordered(solve_one, indices)
        else:
            solutions = [solve_one(idx) for idx in indices]
        if deadline is not None and time.perf_counter() > deadline:
            raise _DeadlineExceeded
        return localizer.estimate_from_solutions(solutions)

    def _fallback_position(
        self, localizer: NomLocLocalizer, anchors: Sequence[Anchor]
    ) -> Point:
        """Graceful degradation: :func:`weighted_centroid` of the
        anchors, projected into the venue — coarse, but calibration-free
        and O(anchors)."""
        return localizer.project_into_area(weighted_centroid(anchors))
