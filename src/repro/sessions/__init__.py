"""Streaming tracking sessions: zones, geofences, occupancy analytics.

The live-product layer over the per-query localization stack (ROADMAP
item 2).  Serving estimates stream in per object; this package turns
them into *tracks* and *events*:

* :class:`SessionManager` owns per-object sessions — a motion filter
  (:class:`~repro.tracking.KalmanTracker` or
  :class:`~repro.tracking.ParticleFilterTracker` behind the
  :class:`~repro.tracking.TrackFilter` protocol) fed by fixes whose
  guard confidence is mapped into per-update measurement noise (a
  low-confidence fix is de-weighted, never dropped);
* a :class:`ZoneMap` assigns each track a primary zone, per-object
  :mod:`FSMs <repro.sessions.fsm>` debounce entry/exit transitions,
  :class:`GeofenceRule` policies raise alerts, and
  :class:`~repro.sessions.analytics.ZoneAnalytics` rolls up
  occupancy/dwell metrics;
* every emitted event lands in an :class:`EventLog` whose canonical
  digest is the subsystem's determinism witness — a seeded scenario
  replays byte-identically, across repeat runs and across
  thread/process serving workers.

Wired end to end: service/cluster responses feed
:meth:`SessionManager.ingest`, the gateway pushes zone/geofence events
over its per-object WebSocket streams, ``repro track`` drives it from
the CLI, and ``benchmarks/bench_tracking.py`` holds the fleet-scale
floor.
"""

from .analytics import ZoneAnalytics, ZoneStats
from .durable import (
    JournalEntry,
    RecoveryError,
    RecoveryReport,
    SessionStore,
    SessionStoreError,
    recover,
)
from .events import CHAIN_SEED, EVENT_KINDS, EventLog, GeofenceRule, SessionEvent
from .fsm import FSMConfig, ObjectZoneTracker, ZoneState
from .manager import SessionConfig, SessionManager
from .session import SessionUpdate, TrackingSession, confidence_to_sigma
from .zones import Zone, ZoneMap

__all__ = [
    "CHAIN_SEED",
    "EVENT_KINDS",
    "EventLog",
    "FSMConfig",
    "GeofenceRule",
    "JournalEntry",
    "ObjectZoneTracker",
    "RecoveryError",
    "RecoveryReport",
    "SessionConfig",
    "SessionEvent",
    "SessionManager",
    "SessionStore",
    "SessionStoreError",
    "SessionUpdate",
    "TrackingSession",
    "Zone",
    "ZoneAnalytics",
    "ZoneMap",
    "ZoneState",
    "ZoneStats",
    "confidence_to_sigma",
    "recover",
]
