"""Occupancy and dwell-time analytics over confirmed zone transitions.

The analytics layer consumes the *same* confirmed enter/exit stream the
event log records — never raw fixes — so every number here inherits the
FSM's debounce semantics: occupancy is "objects confirmedly inside",
visits are confirmed entries, dwell is confirmed-entry to
confirmed-exit.  That also makes the analytics deterministic whenever
the event stream is.

One :class:`ZoneAnalytics` instance aggregates a whole fleet;
:meth:`ZoneAnalytics.snapshot` is the plain-dict form the session
manager folds into its metrics snapshot (the same shape-and-
``json_safe`` contract the serving/cluster/gateway metrics follow).
"""

from __future__ import annotations

__all__ = ["ZoneStats", "ZoneAnalytics"]


class ZoneStats:
    """Mutable rollup of one zone's occupancy history."""

    __slots__ = (
        "occupancy",
        "peak_occupancy",
        "visits",
        "completed_visits",
        "total_dwell_s",
        "max_dwell_s",
    )

    def __init__(self) -> None:
        self.occupancy = 0
        self.peak_occupancy = 0
        self.visits = 0
        self.completed_visits = 0
        self.total_dwell_s = 0.0
        self.max_dwell_s = 0.0

    def mean_dwell_s(self) -> float:
        """Mean dwell over completed visits (0.0 before any exit)."""
        if self.completed_visits == 0:
            return 0.0
        return self.total_dwell_s / self.completed_visits

    def as_dict(self) -> dict:
        """Snapshot form of this zone's stats."""
        return {
            "occupancy": self.occupancy,
            "peak_occupancy": self.peak_occupancy,
            "visits": self.visits,
            "completed_visits": self.completed_visits,
            "total_dwell_s": self.total_dwell_s,
            "mean_dwell_s": self.mean_dwell_s(),
            "max_dwell_s": self.max_dwell_s,
        }

    def restore(self, state: dict) -> None:
        """Overwrite from an :meth:`as_dict` record (recovery path)."""
        self.occupancy = int(state["occupancy"])
        self.peak_occupancy = int(state["peak_occupancy"])
        self.visits = int(state["visits"])
        self.completed_visits = int(state["completed_visits"])
        self.total_dwell_s = float(state["total_dwell_s"])
        self.max_dwell_s = float(state["max_dwell_s"])


class ZoneAnalytics:
    """Fleet-wide per-zone occupancy/dwell aggregation.

    Parameters
    ----------
    zone_names:
        Every zone to pre-register (zones with no traffic still appear
        in snapshots, with zeros — dashboards want the full grid).
    """

    def __init__(self, zone_names) -> None:
        self._stats: dict[str, ZoneStats] = {
            name: ZoneStats() for name in zone_names
        }

    def zone(self, name: str) -> ZoneStats:
        """One zone's live stats (register-on-first-use for ad-hoc
        zones)."""
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = ZoneStats()
        return stats

    # ------------------------------------------------------------------
    def record_enter(self, zone: str) -> int:
        """Account one confirmed entry; returns the new occupancy."""
        stats = self.zone(zone)
        stats.occupancy += 1
        stats.visits += 1
        stats.peak_occupancy = max(stats.peak_occupancy, stats.occupancy)
        return stats.occupancy

    def record_exit(self, zone: str, dwell_s: float) -> int:
        """Account one confirmed exit; returns the new occupancy."""
        stats = self.zone(zone)
        stats.occupancy = max(0, stats.occupancy - 1)
        stats.completed_visits += 1
        stats.total_dwell_s += dwell_s
        stats.max_dwell_s = max(stats.max_dwell_s, dwell_s)
        return stats.occupancy

    # ------------------------------------------------------------------
    def occupancy(self, zone: str) -> int:
        """Current confirmed occupancy of one zone."""
        stats = self._stats.get(zone)
        return stats.occupancy if stats is not None else 0

    def total_occupancy(self) -> int:
        """Objects confirmedly inside any zone right now."""
        return sum(s.occupancy for s in self._stats.values())

    def snapshot(self) -> dict:
        """``{zone: stats-dict}`` over every registered zone."""
        return {name: s.as_dict() for name, s in sorted(self._stats.items())}

    # ------------------------------------------------------------------
    # State capture (crash-consistent snapshots)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe full state, preserving registration order (ad-hoc
        zones registered after construction must restore in the same
        position)."""
        return {name: s.as_dict() for name, s in self._stats.items()}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        stats: dict[str, ZoneStats] = {}
        for name, recorded in state.items():
            zone = ZoneStats()
            zone.restore(recorded)
            stats[name] = zone
        self._stats = stats
