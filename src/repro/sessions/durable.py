"""Crash-consistent persistence for the tracking stack.

The session layer is deterministic by construction — feed a
:class:`~repro.sessions.manager.SessionManager` the same fix stream and
its event log digests byte-identically.  This module turns that
determinism into a recovery story: a :class:`SessionStore` (the same
WAL SQLite machinery as the gateway's measurement ledger, via
:class:`repro.durable.WalDatabase`) journals **inputs**, not outputs —
every applied fix and eviction sweep, stamped with a monotonic sequence
number — and takes a periodic full snapshot of the manager (filter
covariances and particle clouds *including RNG state*, FSM phases,
geofence re-arm sets, analytics counters, the complete event history).

Recovery (:func:`recover`) is then: load the latest snapshot, replay
the journal tail through the *existing* apply path
(:meth:`SessionManager.observe` / :meth:`SessionManager.evict_idle`),
and verify.  Verification is built into the journal itself: each row
carries the event log's post-apply digest-chain head
(:meth:`~repro.sessions.events.EventLog.chain`), so after every
replayed entry the recovered log must sit at exactly the recorded chain
value — agreement certifies the recovered event stream chains onto the
pre-crash prefix byte for byte, and any divergence raises
:class:`RecoveryError` at the first bad entry instead of silently
corrupting downstream analytics.

Write amplification: journaling every fix with a per-row fsync would
swamp the tracking hot path, so the store **group-commits** — rows
buffer in memory and land in one fsynced ``BEGIN IMMEDIATE``
transaction per ``group_commit`` rows (or on :meth:`SessionStore.flush`
/ snapshot / close).  The durability unit is therefore the flushed
batch: a SIGKILL loses at most the unflushed tail, which a resumed
deterministic feed simply re-applies (``repro track --durable
--resume`` does exactly this; the drill lives in
``benchmarks/bench_recovery.py``).
"""

from __future__ import annotations

import json
import math
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..durable import WalDatabase
from ..environment import FloorPlan
from ..geometry import Point
from .events import GeofenceRule
from .manager import SessionConfig, SessionManager
from .zones import ZoneMap

__all__ = [
    "JournalEntry",
    "RecoveryError",
    "RecoveryReport",
    "SessionStore",
    "SessionStoreError",
    "recover",
    "SCHEMA_VERSION",
]

#: Bumped on any incompatible schema change.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq       INTEGER PRIMARY KEY,
    kind      TEXT NOT NULL,
    object_id TEXT NOT NULL DEFAULT '',
    t_s       REAL NOT NULL,
    payload   TEXT NOT NULL,
    chain     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    journal_seq INTEGER PRIMARY KEY,
    created_s   REAL NOT NULL,
    state       TEXT NOT NULL
)
"""


def _encode_payload(payload: dict) -> str:
    """Compact sorted-keys JSON of one journal payload.

    The hot path is a flat ``{str: float}`` dict journaled on every fix;
    ``repr`` of a finite float *is* its shortest round-tripping JSON
    form, so formatting directly skips ``json.dumps`` machinery (~3x on
    the tracking hot loop).  Anything else — non-float values, keys that
    would need escaping — falls back to ``json.dumps`` with identical
    output.
    """
    parts = []
    for key in sorted(payload):
        value = payload[key]
        if (
            type(value) is not float
            or not math.isfinite(value)
            or not key.isalnum()
        ):
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))
        parts.append(f'"{key}":{value!r}')
    return "{" + ",".join(parts) + "}"


class SessionStoreError(RuntimeError):
    """The store file is unusable (wrong schema version, closed, ...)."""


class RecoveryError(RuntimeError):
    """Replay diverged from the journaled pre-crash run."""


@dataclass(frozen=True)
class JournalEntry:
    """One journaled input.

    Attributes
    ----------
    seq:
        Monotonic journal position (1-based, gap-free once flushed).
    kind:
        ``"fix"`` (payload ``{x, y, confidence}``) or ``"evict"``
        (an eviction sweep; payload empty).
    object_id:
        The tracked object (empty for sweeps).
    t_s:
        The input's logical timestamp (fix time or sweep time).
    payload:
        Kind-specific input data.
    chain:
        Event-log digest-chain head *after* this input was applied —
        the per-entry replay witness.
    """

    seq: int
    kind: str
    object_id: str
    t_s: float
    payload: dict
    chain: str


class SessionStore(WalDatabase):
    """Durable journal + snapshots of one tracking fleet.

    Parameters
    ----------
    path:
        Database file path (parent directories are created).
    synchronous:
        SQLite ``PRAGMA synchronous``; ``"FULL"`` (default) makes a
        flushed batch mean "on disk".
    group_commit:
        Journal rows buffered per fsynced transaction.  ``1`` commits
        every row individually (maximum durability, maximum fsync
        cost); the default amortizes the fsync across a batch, which is
        what keeps durable tracking within the benchmarked overhead
        budget.
    keep_snapshots:
        Older snapshots beyond this count are pruned at save time (the
        journal prefix they cover stays — any kept snapshot plus the
        tail after it recovers the same state).
    """

    def __init__(
        self,
        path: str | Path,
        synchronous: str = "FULL",
        group_commit: int = 32,
        keep_snapshots: int = 4,
    ) -> None:
        if group_commit < 1:
            raise ValueError("group_commit must be positive")
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be positive")
        super().__init__(
            path,
            schema=_SCHEMA,
            schema_version=SCHEMA_VERSION,
            synchronous=synchronous,
            error_cls=SessionStoreError,
        )
        self.group_commit = group_commit
        self.keep_snapshots = keep_snapshots
        self._pending: list[tuple[int, str, str, float, str, str]] = []
        row = self.query("SELECT COALESCE(MAX(seq), 0) FROM journal")
        self._next_seq = int(row[0][0]) + 1

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def append_journal(
        self, kind: str, object_id: str, t_s: float, payload: dict, chain: str
    ) -> int:
        """Buffer one journal row; returns its assigned sequence number.

        The row is durable once the current group-commit batch flushes
        (automatically every ``group_commit`` rows, or explicitly via
        :meth:`flush` / :meth:`save_snapshot` / :meth:`close`).
        """
        self.check_open()
        seq = self._next_seq
        self._next_seq += 1
        self._pending.append(
            (seq, kind, object_id, float(t_s), _encode_payload(payload), chain)
        )
        if len(self._pending) >= self.group_commit:
            self.flush()
        return seq

    def flush(self) -> None:
        """Commit every buffered row in one fsynced transaction.

        ``INSERT OR IGNORE`` keyed on ``seq`` makes a re-flush of
        already-committed rows (e.g. a retried batch after an
        interrupted flush) idempotent.
        """
        if not self._pending:
            return
        rows = self._pending

        def txn(conn: sqlite3.Connection) -> None:
            conn.executemany(
                "INSERT OR IGNORE INTO journal"
                "(seq, kind, object_id, t_s, payload, chain)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )

        self.write(txn)
        self._pending = []

    def journal_len(self) -> int:
        """Flushed journal entries (buffered rows are not yet durable)."""
        return int(self.query("SELECT COUNT(*) FROM journal")[0][0])

    def last_seq(self) -> int:
        """Highest flushed sequence number (0 when empty)."""
        return int(
            self.query("SELECT COALESCE(MAX(seq), 0) FROM journal")[0][0]
        )

    def journal_tail(self, after_seq: int = 0) -> list[JournalEntry]:
        """Flushed entries with ``seq > after_seq``, in order."""
        rows = self.query(
            "SELECT seq, kind, object_id, t_s, payload, chain FROM journal"
            " WHERE seq > ? ORDER BY seq",
            (after_seq,),
        )
        return [
            JournalEntry(
                seq=int(seq),
                kind=kind,
                object_id=object_id,
                t_s=float(t_s),
                payload=json.loads(payload),
                chain=chain,
            )
            for seq, kind, object_id, t_s, payload, chain in rows
        ]

    def fix_count(self) -> int:
        """Flushed ``"fix"`` entries — where a deterministic feed resumes."""
        return int(
            self.query("SELECT COUNT(*) FROM journal WHERE kind = 'fix'")[0][0]
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self, journal_seq: int, state: dict) -> None:
        """Durably store a full manager snapshot covering ``journal_seq``.

        The journal buffer is flushed first, inside the same store —
        a snapshot must never claim coverage of rows that are not on
        disk.  Old snapshots beyond ``keep_snapshots`` are pruned in the
        same transaction.
        """
        self.flush()
        blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
        now = time.time()
        keep = self.keep_snapshots

        def txn(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO snapshots"
                "(journal_seq, created_s, state) VALUES (?, ?, ?)",
                (journal_seq, now, blob),
            )
            conn.execute(
                "DELETE FROM snapshots WHERE journal_seq NOT IN"
                " (SELECT journal_seq FROM snapshots"
                "  ORDER BY journal_seq DESC LIMIT ?)",
                (keep,),
            )

        self.write(txn)

    def latest_snapshot(self) -> tuple[int, dict] | None:
        """``(journal_seq, state)`` of the newest snapshot, or None."""
        rows = self.query(
            "SELECT journal_seq, state FROM snapshots"
            " ORDER BY journal_seq DESC LIMIT 1"
        )
        if not rows:
            return None
        return int(rows[0][0]), json.loads(rows[0][1])

    def snapshot_count(self) -> int:
        """Snapshots currently retained."""
        return int(self.query("SELECT COUNT(*) FROM snapshots")[0][0])

    def counts(self) -> dict:
        """Store health summary (journal/fix/snapshot rows)."""
        return {
            "journal": self.journal_len(),
            "fixes": self.fix_count(),
            "snapshots": self.snapshot_count(),
            "buffered": len(self._pending),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush buffered rows, checkpoint the WAL, close (idempotent)."""
        if not self.closed:
            self.flush()
        super().close()


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` did, for logs/drills.

    Attributes
    ----------
    snapshot_seq:
        Journal position the loaded snapshot covered (0: no snapshot,
        full-journal replay).
    replayed:
        Journal entries replayed after the snapshot.
    events:
        Events in the recovered log.
    chain:
        Recovered event-log chain head — equal to the last journaled
        chain value by construction (verified entry by entry).
    """

    snapshot_seq: int
    replayed: int
    events: int
    chain: str


def recover(
    store: SessionStore,
    zones: ZoneMap,
    config: SessionConfig | None = None,
    rules: Sequence[GeofenceRule] = (),
    plan: FloorPlan | None = None,
    checkpoint_every: int = 512,
) -> tuple[SessionManager, RecoveryReport]:
    """Rebuild a manager from its store: snapshot + journal-tail replay.

    The manager must be given the **same construction arguments** as
    the pre-crash one (zones, config, rules, plan) — the journal
    records inputs, and determinism does the rest.  Replay drives the
    normal :meth:`~repro.sessions.manager.SessionManager.observe` /
    :meth:`~repro.sessions.manager.SessionManager.evict_idle` path with
    journaling suppressed; after each entry the event log's chain head
    must equal the journaled one or :class:`RecoveryError` is raised
    (the recovered stream would not chain onto the pre-crash prefix).

    Returns the recovered manager (wired to ``store`` — it continues
    journaling from the pre-crash sequence) and a
    :class:`RecoveryReport`.
    """
    manager = SessionManager(
        zones,
        config,
        rules,
        plan,
        store=store,
        checkpoint_every=checkpoint_every,
    )
    snapshot = store.latest_snapshot()
    snapshot_seq = 0
    if snapshot is not None:
        snapshot_seq, state = snapshot
        manager.restore_state(state)
    replayed = 0
    manager._replaying = True
    try:
        for entry in store.journal_tail(snapshot_seq):
            if entry.kind == "fix":
                payload = entry.payload
                manager.observe(
                    entry.object_id,
                    entry.t_s,
                    Point(payload["x"], payload["y"]),
                    confidence=float(payload.get("confidence", 1.0)),
                )
            elif entry.kind == "evict":
                manager.evict_idle(entry.t_s)
            else:
                raise RecoveryError(
                    f"journal entry {entry.seq} has unknown kind "
                    f"{entry.kind!r}"
                )
            if manager.log.chain() != entry.chain:
                raise RecoveryError(
                    f"replay diverged at journal entry {entry.seq}: "
                    f"recovered chain {manager.log.chain()[:16]}... != "
                    f"journaled {entry.chain[:16]}..."
                )
            replayed += 1
    finally:
        manager._replaying = False
    return manager, RecoveryReport(
        snapshot_seq=snapshot_seq,
        replayed=replayed,
        events=len(manager.log),
        chain=manager.log.chain(),
    )
